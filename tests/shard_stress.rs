//! Interleaving stress suite for the sharded executor.
//!
//! `sharded_equivalence.rs` already proves serial and sharded runs
//! agree — but on an idle machine the shard workers tend to proceed in
//! near-lockstep, so entire classes of cross-shard races can stay
//! invisible. This suite turns on the perturbation hook in
//! `decent_sim::stress`: with a nonzero seed every worker injects
//! deterministic-per-seed yields and micro-sleeps between event
//! dispatches, forcing window phases to overlap in orders a quiet run
//! would never produce. The assertion stays the strongest one we have:
//! the canonical report JSON and the engine-level trace fingerprint
//! must be *byte-identical* to the unperturbed serial run, for every
//! perturbation seed and shard count. Any hidden ordering dependence —
//! the dynamic shadow of lint rules D007/D010 — shows up as a diff.
//!
//! The hook is a process-global knob, so everything lives in one test
//! function; the guard resets the seed even on assertion failure.

use decent::core::{experiments, scenario::ExecPolicy};
use decent::sim::prelude::*;
use decent::sim::stress::set_interleave_seed;
use decent::sim::trace::EventRecord;
use rand::Rng;

/// Resets the process-global perturbation seed when dropped, so a
/// failing assertion cannot leak perturbation into other code.
struct HookGuard;

impl Drop for HookGuard {
    fn drop(&mut self) {
        set_interleave_seed(0);
    }
}

/// A chatty rumor-mongering node (same shape as the equivalence
/// suite's): RNG-dependent fanout means any divergence in event order
/// cascades into the trace fingerprint within a few hops.
struct Gossip {
    n: usize,
    seen: Vec<u64>,
    timer_fires: u64,
}

impl Node for Gossip {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.set_timer(SimDuration::from_secs(1.0), 1);
    }

    fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Context<'_, u64>) {
        if self.seen.contains(&msg) {
            return;
        }
        self.seen.push(msg);
        let n = self.n;
        for _ in 0..3 {
            let dst = ctx.rng().gen_range(0..n);
            ctx.send(dst, msg);
        }
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut Context<'_, u64>) {
        self.timer_fires += 1;
        if self.timer_fires < 15 {
            ctx.set_timer(SimDuration::from_secs(1.0), 1);
            if let Some(&r) = self.seen.last() {
                let n = self.n;
                let dst = ctx.rng().gen_range(0..n);
                ctx.send(dst, r);
            }
        }
    }
}

/// Trace-plus-state fingerprint of a gossip run at the given shard
/// count under whatever perturbation seed is currently active.
fn gossip_fingerprint(seed: u64, n: usize, shards: usize) -> (Vec<EventRecord>, Vec<Vec<u64>>) {
    let mut sim: Simulation<Gossip> =
        Simulation::new(seed, UniformLatency::from_millis(10.0, 60.0));
    sim.set_shards(shards);
    sim.enable_trace(1 << 14);
    for _ in 0..n {
        sim.add_node(Gossip {
            n,
            seen: Vec::new(),
            timer_fires: 0,
        });
    }
    for r in 0..4u64 {
        sim.inject(
            (r as usize * 5) % n,
            700 + r,
            SimDuration::from_secs(0.1 + r as f64),
        );
    }
    sim.run_until(SimTime::from_secs(20.0));
    let trace = sim
        .trace()
        .expect("trace enabled")
        .records()
        .copied()
        .collect();
    let state = (0..n).map(|i| sim.node(i).seen.clone()).collect();
    (trace, state)
}

/// Report JSON for one quick experiment at the given shard policy.
fn report_json(id: &str, shards: usize) -> String {
    let policy = if shards == 1 {
        ExecPolicy::serial()
    } else {
        ExecPolicy::sharded(shards)
    };
    experiments::run_report_exec(&[id], true, None, 1, policy).to_json_text()
}

// One test function on purpose: the perturbation seed is a
// process-global knob, and the default harness runs `#[test]` fns in
// parallel threads of one process.
#[test]
fn perturbed_interleavings_reproduce_the_serial_bytes() {
    let _guard = HookGuard;

    // Baselines are captured with the hook off: the unperturbed serial
    // run is the contract every perturbed sharded run must hit.
    set_interleave_seed(0);
    let gossip_serial = gossip_fingerprint(0xDEC0DE, 16, 1);
    let e1_serial = report_json("E1", 1);
    let e19_serial = report_json("E19", 1);

    for perturb_seed in [1u64, 42, 0x9E37_79B9_7F4A_7C15] {
        set_interleave_seed(perturb_seed);
        for shards in [2usize, 4, 8] {
            let (trace, state) = gossip_fingerprint(0xDEC0DE, 16, shards);
            assert_eq!(
                gossip_serial.0, trace,
                "gossip trace diverged at shards={shards} perturb_seed={perturb_seed:#x}"
            );
            assert_eq!(
                gossip_serial.1, state,
                "gossip node state diverged at shards={shards} perturb_seed={perturb_seed:#x}"
            );
        }
        // Report-level: two quick experiment families (overlay + fault
        // injection) at one sharded width keep the runtime reasonable
        // while still driving the full scenario pipeline.
        assert_eq!(
            e1_serial,
            report_json("E1", 4),
            "E1 report bytes diverged under perturb_seed={perturb_seed:#x}"
        );
        assert_eq!(
            e19_serial,
            report_json("E19", 4),
            "E19 report bytes diverged under perturb_seed={perturb_seed:#x}"
        );
    }
}
