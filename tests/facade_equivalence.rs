//! The facade port must be invisible to the engine.
//!
//! Kademlia now routes every handler through `decent_net::Transport`
//! (with the engine `Context` as the sim-backend transport). These
//! properties pin that the port changed nothing observable: randomized
//! topologies fingerprinted on both schedulers × shards {1, 4} must be
//! identical down to every lookup result, and the fixed golden
//! configuration must still land on the exact pre-port trace tuple
//! (`tests/golden_traces.rs` pins the serial pair; here the same
//! numbers are required from the sharded executor too).

use proptest::prelude::*;

use decent_overlay::id::Key;
use decent_overlay::kademlia::{build_network, KadConfig, KadMsg, KadNode};
use decent_sim::prelude::*;

/// Full behavioral fingerprint: engine counters plus every completed
/// lookup's observable outcome (latency, RPC accounting, result set).
type Fingerprint = (u64, u64, u64, Vec<(u64, usize, usize, bool, Vec<usize>)>);

fn run_kad<S: SchedulerFor<KadNode> + Send>(
    shards: usize,
    seed: u64,
    n: usize,
    unresponsive: f64,
    lookups: u64,
) -> Fingerprint {
    let mut sim: Simulation<KadNode, S> =
        Simulation::with_scheduler(seed, UniformLatency::from_millis(20.0, 80.0));
    sim.set_shards(shards);
    let ids = build_network(
        &mut sim,
        n,
        &KadConfig::default(),
        unresponsive,
        8,
        seed ^ 0x9E37,
    );
    sim.run_until(SimTime::from_secs(1.0));
    for i in 0..lookups {
        let origin = ids[(i as usize * 13) % ids.len()];
        sim.invoke(origin, |node, ctx| {
            node.start_lookup(Key::from_u64(i), false, ctx)
        });
    }
    sim.run_until(SimTime::from_secs(120.0));
    let mut results = Vec::new();
    for &id in &ids {
        for r in &sim.node(id).results {
            results.push((
                r.latency.as_nanos(),
                r.rpcs,
                r.timeouts,
                r.found_value,
                r.closest.iter().map(|c| c.node).collect(),
            ));
        }
    }
    (
        sim.events_processed(),
        sim.stats().sent,
        sim.stats().delivered,
        results,
    )
}

type Wheel = TimingWheel<EngineEvent<KadMsg>>;
type Heap = BinaryHeapScheduler<EngineEvent<KadMsg>>;

proptest! {
    // Each case runs the same workload four ways; a handful of cases
    // covers a wide topology range without blowing up CI time.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn facade_kad_identical_across_schedulers_and_shards(
        seed in any::<u64>(),
        n in 60usize..140,
        unresponsive in 0.0f64..0.4,
        lookups in 10u64..30,
    ) {
        let base = run_kad::<Wheel>(1, seed, n, unresponsive, lookups);
        prop_assert_eq!(&base, &run_kad::<Wheel>(4, seed, n, unresponsive, lookups),
            "wheel: shards 4 diverged from serial");
        prop_assert_eq!(&base, &run_kad::<Heap>(1, seed, n, unresponsive, lookups),
            "heap serial diverged from wheel serial");
        prop_assert_eq!(&base, &run_kad::<Heap>(4, seed, n, unresponsive, lookups),
            "heap: shards 4 diverged from wheel serial");
    }
}

/// The pre-port golden configuration (same parameters as
/// `kad_engine_golden_on_both_schedulers` in tests/golden_traces.rs),
/// now also required from the sharded executor: the facade-ported core
/// must reproduce the exact pre-port counters everywhere.
#[test]
fn facade_kad_matches_pre_port_golden_sharded() {
    fn golden_run<S: SchedulerFor<KadNode> + Send>(shards: usize) -> (u64, u64, u64) {
        let mut sim: Simulation<KadNode, S> =
            Simulation::with_scheduler(42, UniformLatency::from_millis(20.0, 80.0));
        sim.set_shards(shards);
        let ids = build_network(&mut sim, 200, &KadConfig::default(), 0.1, 8, 7);
        sim.run_until(SimTime::from_secs(1.0));
        for i in 0..50u64 {
            let origin = ids[(i as usize * 13) % ids.len()];
            sim.invoke(origin, |node, ctx| {
                node.start_lookup(Key::from_u64(i), false, ctx)
            });
        }
        sim.run_until(SimTime::from_secs(120.0));
        (
            sim.events_processed(),
            sim.stats().sent,
            sim.stats().delivered,
        )
    }
    // Captured before the facade port; must never drift.
    let golden = (3784, 2347, 2347);
    assert_eq!(golden_run::<Wheel>(1), golden, "wheel serial drifted");
    assert_eq!(golden_run::<Wheel>(4), golden, "wheel shards-4 drifted");
    assert_eq!(golden_run::<Heap>(1), golden, "heap serial drifted");
    assert_eq!(golden_run::<Heap>(4), golden, "heap shards-4 drifted");
}
