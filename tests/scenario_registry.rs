//! Registry-level guarantees of the `Scenario` trait surface: the
//! listing can't drift from the reports, and the quick configurations
//! stay inside the CI time budget the workflow relies on.

use std::time::{Duration, Instant};

use decent::core::scenario;

/// `repro --list` derives its lines from `Scenario::description`; the
/// report headers carry `ExperimentReport::title`. Both must be the
/// same string — the trait contract says they share one `TITLE` const
/// per module, and this pins it for the cheap trio without paying for
/// a full suite run (the budget test below covers the rest).
#[test]
fn listing_descriptions_match_report_titles() {
    for id in ["E10", "E16", "E18"] {
        let s = scenario::build(id, true).expect("registered id");
        let report = s.run();
        assert_eq!(report.id, s.id());
        assert_eq!(
            report.title,
            s.description(),
            "{id}: --list line and report header diverged"
        );
    }
}

/// Every quick config must run inside the CI budget. The whole
/// registry finishes in well under a minute unoptimized today; the
/// generous ceilings catch a quick config accidentally promoted to
/// paper scale (those run minutes to hours) without flaking on a slow
/// runner. Piggybacks the full pass to check title/description
/// equality for every experiment, not just the cheap trio.
#[test]
fn quick_configs_run_under_ci_budget() {
    const PER_EXPERIMENT: Duration = Duration::from_secs(120);
    const TOTAL: Duration = Duration::from_secs(300);
    // decent-lint: allow(D002) reason="CI wall-clock budget check; timings are asserted against, never serialized"
    let start = Instant::now();
    for s in scenario::all(true) {
        // decent-lint: allow(D002) reason="CI wall-clock budget check; timings are asserted against, never serialized"
        let t = Instant::now();
        let report = s.run();
        let elapsed = t.elapsed();
        assert!(
            elapsed < PER_EXPERIMENT,
            "{} quick config took {elapsed:?} (budget {PER_EXPERIMENT:?})",
            s.id()
        );
        assert_eq!(report.title, s.description(), "{}", s.id());
        assert!(
            !report.findings.is_empty(),
            "{} must check at least one claim",
            s.id()
        );
    }
    let total = start.elapsed();
    assert!(
        total < TOTAL,
        "quick registry pass took {total:?} (budget {TOTAL:?})"
    );
}
