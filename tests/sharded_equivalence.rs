//! Property-based equivalence suite for the sharded executor.
//!
//! The engine's headline guarantee after the sharding work: for any
//! workload, any fault plan, any seed, any scheduler, and any shard
//! count, the sharded run is *indistinguishable* from the serial run —
//! same events in the same order, same traces, same counters, same
//! report bytes. These properties drive randomized topologies and
//! fault plans through serial and sharded executions and require the
//! full fingerprints to match exactly. A single diverging event would
//! change the trace tuple stream and fail the property.
//!
//! Two layers:
//!
//! - engine-level: a gossip workload under randomized partitions,
//!   degradation, duplication, and crash bursts, fingerprinted by
//!   (events, net stats, trace records, metrics, node state) on both
//!   schedulers at shards ∈ {1, 2, 4, 8};
//! - report-level: full experiment scenarios (`run_seeded_exec`) where
//!   the canonical RunReport JSON must be byte-identical between
//!   serial and sharded runs.

use proptest::prelude::*;
use rand::Rng;

use decent::bft::pbft::{build_cluster, PbftConfig, PbftReplica};
use decent::chain::node::{build_network, ChainNode, ChainNodeConfig, NetworkConfig};
use decent::chain::pow::PowParams;
use decent::core::{experiments, scenario::ExecPolicy};
use decent::sim::prelude::*;
use decent::sim::trace::EventRecord;

/// A rumor-mongering node: forwards each first-seen rumor to a few
/// pseudo-randomly chosen peers, with a periodic anti-entropy timer.
/// Deliberately chatty and RNG-dependent so that any divergence in
/// event order or RNG stream discipline cascades into the fingerprint.
struct Gossip {
    n: usize,
    fanout: usize,
    seen: Vec<u64>,
    timer_fires: u64,
}

impl Node for Gossip {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.set_timer(SimDuration::from_secs(1.0), 1);
    }

    fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Context<'_, u64>) {
        if self.seen.contains(&msg) {
            return;
        }
        self.seen.push(msg);
        let n = self.n;
        for _ in 0..self.fanout {
            let dst = ctx.rng().gen_range(0..n);
            ctx.send(dst, msg);
        }
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut Context<'_, u64>) {
        self.timer_fires += 1;
        if self.timer_fires < 20 {
            // Re-arm plus one low-rate rumor refresh to a random peer.
            ctx.set_timer(SimDuration::from_secs(1.0), 1);
            if let Some(&r) = self.seen.last() {
                let n = self.n;
                let dst = ctx.rng().gen_range(0..n);
                ctx.send(dst, r);
            }
        }
    }
}

/// Everything observable about a finished run. Trace records pin the
/// exact `(time, seq, node, tag)` stream, so two equal fingerprints
/// mean the executions were event-for-event identical.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    events: u64,
    cancelled: u64,
    sent: u64,
    delivered: u64,
    dropped_offline: u64,
    bytes_sent: u64,
    now: SimTime,
    trace: Vec<EventRecord>,
    metrics: MetricsSnapshot,
    state: Vec<(Vec<u64>, u64)>,
}

/// Randomized fault-plan shape: each window is optional and the
/// generator picks times, the partition side, and intensities.
#[derive(Debug, Clone)]
struct PlanSpec {
    partition: Option<(f64, f64, usize)>,
    degrade: Option<(f64, f64, f64, f64)>,
    duplicate: Option<(f64, f64, f64)>,
    crash: Option<(f64, f64, usize)>,
}

fn plan_spec() -> impl Strategy<Value = PlanSpec> {
    let part = proptest::option::of((2.0f64..10.0, 4.0f64..15.0, 1usize..8));
    let degr = proptest::option::of((5.0f64..20.0, 2.0f64..10.0, 1.5f64..4.0, 0.0f64..0.2));
    let dupl = proptest::option::of((1.0f64..15.0, 2.0f64..10.0, 0.05f64..0.5));
    let crash = proptest::option::of((8.0f64..20.0, 2.0f64..8.0, 1usize..6));
    (part, degr, dupl, crash).prop_map(|(partition, degrade, duplicate, crash)| PlanSpec {
        partition: partition.map(|(at, d, k)| (at, at + d, k)),
        degrade: degrade.map(|(at, d, m, p)| (at, at + d, m, p)),
        duplicate: duplicate.map(|(at, d, p)| (at, at + d, p)),
        crash: crash.map(|(at, d, k)| (at, at + d, k)),
    })
}

impl PlanSpec {
    fn build(&self, n: usize) -> FaultPlan {
        let mut plan = FaultPlan::new();
        if let Some((at, heal, k)) = self.partition {
            let side: Vec<NodeId> = (0..n).skip(n.saturating_sub(k.min(n))).collect();
            plan = plan.partition(SimTime::from_secs(at), SimTime::from_secs(heal), side);
        }
        if let Some((at, until, mult, loss)) = self.degrade {
            plan = plan.degrade(
                SimTime::from_secs(at),
                SimTime::from_secs(until),
                LinkSet::All,
                mult,
                loss,
            );
        }
        if let Some((at, until, p)) = self.duplicate {
            plan = plan.duplicate(SimTime::from_secs(at), SimTime::from_secs(until), p);
        }
        if let Some((at, until, k)) = self.crash {
            let nodes: Vec<NodeId> = (0..k.min(n)).collect();
            plan = plan.crash_burst(SimTime::from_secs(at), SimTime::from_secs(until), nodes);
        }
        plan
    }
}

/// Runs the gossip workload under the given plan and returns the full
/// fingerprint.
fn run_gossip<S: SchedulerFor<Gossip> + Send>(
    seed: u64,
    n: usize,
    fanout: usize,
    spec: &PlanSpec,
    shards: usize,
) -> Fingerprint {
    let plan = spec.build(n);
    let mut sim: Simulation<Gossip, S> = Simulation::with_scheduler(
        seed,
        Faulty::new(UniformLatency::from_millis(10.0, 60.0), plan.clone()),
    );
    sim.set_shards(shards);
    sim.enable_trace(1 << 16);
    for _ in 0..n {
        sim.add_node(Gossip {
            n,
            fanout,
            seen: Vec::new(),
            timer_fires: 0,
        });
    }
    plan.schedule_crashes(&mut sim);
    // Seed a handful of rumors from distinct origins.
    for r in 0..4u64 {
        sim.inject(
            (r as usize * 7) % n,
            1000 + r,
            SimDuration::from_secs(0.1 + r as f64),
        );
    }
    sim.run_until(SimTime::from_secs(30.0));
    let trace: Vec<EventRecord> = sim
        .trace()
        .expect("trace enabled")
        .records()
        .copied()
        .collect();
    let metrics = sim.metrics_snapshot();
    let state = (0..n)
        .map(|i| {
            let g = sim.node(i);
            (g.seen.clone(), g.timer_fires)
        })
        .collect();
    Fingerprint {
        events: sim.events_processed(),
        cancelled: sim.events_cancelled(),
        sent: sim.stats().sent,
        delivered: sim.stats().delivered,
        dropped_offline: sim.stats().dropped_offline,
        bytes_sent: sim.stats().bytes_sent,
        now: sim.now(),
        trace,
        metrics,
        state,
    }
}

proptest! {
    // Each case runs the workload 2 (schedulers) x 4 (shard counts)
    // times, so keep the case count well below the default 256.
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The core equivalence property: for random topologies, fault
    // plans, and seeds, every shard count reproduces the serial
    // fingerprint exactly, on both schedulers — and both schedulers
    // agree with each other.
    #[test]
    fn sharded_runs_are_event_for_event_identical_to_serial(
        seed in any::<u64>(),
        n in 2usize..24,
        fanout in 1usize..4,
        spec in plan_spec(),
    ) {
        let serial = run_gossip::<TimingWheel<EngineEvent<u64>>>(seed, n, fanout, &spec, 1);
        let serial_heap =
            run_gossip::<BinaryHeapScheduler<EngineEvent<u64>>>(seed, n, fanout, &spec, 1);
        prop_assert_eq!(&serial, &serial_heap, "schedulers diverged on the serial path");
        for shards in [2usize, 4, 8] {
            let wheel = run_gossip::<TimingWheel<EngineEvent<u64>>>(seed, n, fanout, &spec, shards);
            prop_assert_eq!(
                &serial, &wheel,
                "wheel run diverged from serial at shards={}", shards
            );
            let heap =
                run_gossip::<BinaryHeapScheduler<EngineEvent<u64>>>(seed, n, fanout, &spec, shards);
            prop_assert_eq!(
                &serial, &heap,
                "heap run diverged from serial at shards={}", shards
            );
        }
    }
}

/// Fingerprint of a PoW chain run: engine counters, the full trace,
/// and every node's view of the block tree. `Interned<Block>` payloads
/// (post-`Rc` migration) cross worker threads here, so a single
/// misrouted or reordered block delivery diverges tips or heights.
#[derive(Debug, PartialEq)]
struct ChainFingerprint {
    events: u64,
    trace: Vec<EventRecord>,
    metrics: MetricsSnapshot,
    state: Vec<(u64, usize, u64, u64, u64)>,
}

fn run_chain<S: SchedulerFor<ChainNode> + Send>(seed: u64, shards: usize) -> ChainFingerprint {
    let mut sim: Simulation<ChainNode, S> =
        Simulation::with_scheduler(seed, UniformLatency::from_millis(40.0, 120.0));
    sim.set_shards(shards);
    sim.enable_trace(1 << 16);
    let ncfg = NetworkConfig {
        nodes: 12,
        miner_fraction: 0.5,
        node: ChainNodeConfig {
            params: PowParams {
                target_interval: SimDuration::from_secs(20.0),
                ..PowParams::bitcoin()
            },
            ..ChainNodeConfig::default()
        },
        ..NetworkConfig::default()
    };
    let ids = build_network(&mut sim, &ncfg, seed ^ 0xC4A1);
    sim.run_until(SimTime::from_secs(600.0));
    let state = ids
        .iter()
        .map(|&id| {
            let n = sim.node(id);
            (
                n.view.height(),
                n.view.len(),
                n.view.tip().id.0,
                n.blocks_mined,
                n.bytes_received,
            )
        })
        .collect();
    ChainFingerprint {
        events: sim.events_processed(),
        trace: sim
            .trace()
            .expect("trace enabled")
            .records()
            .copied()
            .collect(),
        metrics: sim.metrics_snapshot(),
        state,
    }
}

/// Fingerprint of a PBFT run: engine counters, trace, and each
/// replica's executed-request log and view-change count. The batches
/// are `Interned<[Request]>` payloads shared across shard workers.
#[derive(Debug, PartialEq)]
struct PbftFingerprint {
    events: u64,
    trace: Vec<EventRecord>,
    metrics: MetricsSnapshot,
    state: Vec<(Vec<(SimTime, SimTime)>, u64)>,
}

fn run_pbft<S: SchedulerFor<PbftReplica> + Send>(seed: u64, shards: usize) -> PbftFingerprint {
    let mut sim: Simulation<PbftReplica, S> =
        Simulation::with_scheduler(seed, LanNet::datacenter());
    sim.set_shards(shards);
    sim.enable_trace(1 << 16);
    let cfg = PbftConfig {
        n: 7,
        ..PbftConfig::default()
    };
    let ids = build_cluster(&mut sim, &cfg, &[]);
    sim.run_until(SimTime::from_secs(0.5));
    for round in 0..3u64 {
        sim.run_until(SimTime::from_secs(0.5 + round as f64));
        let now = sim.now();
        for &id in &ids {
            sim.node_mut(id).submit_many(
                (round * 1000 + id as u64 * 100)..(round * 1000 + id as u64 * 100 + 40),
                now,
            );
        }
    }
    sim.run_until(SimTime::from_secs(10.0));
    let state = ids
        .iter()
        .map(|&id| {
            let r = sim.node(id);
            (r.executed.clone(), r.view_changes)
        })
        .collect();
    PbftFingerprint {
        events: sim.events_processed(),
        trace: sim
            .trace()
            .expect("trace enabled")
            .records()
            .copied()
            .collect(),
        metrics: sim.metrics_snapshot(),
        state,
    }
}

proptest! {
    // Chain and PBFT runs are heavier than the gossip workload (block
    // validation timers, batch pipelines), so fewer cases — each still
    // runs 2 serial + 2x2 sharded executions and compares full traces.
    #![proptest_config(ProptestConfig::with_cases(4))]

    // The chain family under sharding: PoW mining races, inv/getblock
    // relay, and reorgs reproduce the serial fingerprint exactly at
    // every shard count, on both schedulers.
    #[test]
    fn chain_runs_are_event_for_event_identical_to_serial(seed in any::<u64>()) {
        let serial = run_chain::<TimingWheel<EngineEvent<_>>>(seed, 1);
        let serial_heap = run_chain::<BinaryHeapScheduler<EngineEvent<_>>>(seed, 1);
        prop_assert_eq!(&serial, &serial_heap, "schedulers diverged on the serial chain path");
        for shards in [2usize, 4] {
            let wheel = run_chain::<TimingWheel<EngineEvent<_>>>(seed, shards);
            prop_assert_eq!(&serial, &wheel, "chain wheel diverged at shards={}", shards);
            let heap = run_chain::<BinaryHeapScheduler<EngineEvent<_>>>(seed, shards);
            prop_assert_eq!(&serial, &heap, "chain heap diverged at shards={}", shards);
        }
    }

    // The BFT family under sharding: three-phase commit with interned
    // batches reproduces the serial fingerprint exactly.
    #[test]
    fn pbft_runs_are_event_for_event_identical_to_serial(seed in any::<u64>()) {
        let serial = run_pbft::<TimingWheel<EngineEvent<_>>>(seed, 1);
        let serial_heap = run_pbft::<BinaryHeapScheduler<EngineEvent<_>>>(seed, 1);
        prop_assert_eq!(&serial, &serial_heap, "schedulers diverged on the serial PBFT path");
        for shards in [2usize, 4] {
            let wheel = run_pbft::<TimingWheel<EngineEvent<_>>>(seed, shards);
            prop_assert_eq!(&serial, &wheel, "PBFT wheel diverged at shards={}", shards);
            let heap = run_pbft::<BinaryHeapScheduler<EngineEvent<_>>>(seed, shards);
            prop_assert_eq!(&serial, &heap, "PBFT heap diverged at shards={}", shards);
        }
    }
}

proptest! {
    // Full experiments are expensive: a few cases suffice because each
    // one already covers thousands of events end-to-end.
    #![proptest_config(ProptestConfig::with_cases(5))]

    // Report-level equivalence: the canonical RunReport JSON from a
    // sharded experiment run is byte-identical to the serial run. The
    // pool spans every family that drives a discrete-event simulation:
    // overlay (E1/E5), fault injection (E19), chain PoW (E14), and
    // BFT/permissioned (E12) — all scenarios honour `--shards` now.
    #[test]
    fn report_json_is_byte_identical_under_sharding(
        which in 0usize..5,
        shards in (1usize..4).prop_map(|i| 1usize << i),
        seed in proptest::option::of(any::<u64>()),
    ) {
        const IDS: [&str; 5] = ["E1", "E5", "E19", "E14", "E12"];
        let id = IDS[which];
        let serial = experiments::run_report_exec(&[id], true, seed, 1, ExecPolicy::serial());
        let sharded =
            experiments::run_report_exec(&[id], true, seed, 1, ExecPolicy::sharded(shards));
        prop_assert_eq!(
            serial.to_json_text(),
            sharded.to_json_text(),
            "{} canonical RunReport JSON changed under shards={}", id, shards
        );
        prop_assert_eq!(
            serial.runs[0].report.to_markdown(),
            sharded.runs[0].report.to_markdown(),
            "{} rendered report changed under shards={}", id, shards
        );
    }
}
