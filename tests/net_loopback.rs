//! Loopback backend-equivalence test for the transport facade.
//!
//! The same Kademlia core (crates/overlay/src/kademlia.rs) runs under
//! the deterministic sim backend and the TCP backend against the same
//! seeded topology (`kadnet`'s deterministic demo roster, every node
//! seeded with the full roster). Because the initiator's shortlist
//! then starts at the true global k-closest set and no discovery can
//! displace it, the lookup's *values* — the closest-contact set and
//! the found flag — are timing-independent: wall-clock TCP and
//! virtual-time sim must agree exactly. Latencies and RPC interleaving
//! legitimately differ and are not compared.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use decent_overlay::id::Key;
use decent_overlay::kadnet;
use decent_sim::prelude::SimDuration;

#[test]
fn tcp_and_sim_backends_agree_on_lookup_values() {
    let (seed, n) = (4242u64, 12usize);
    let cfg = kadnet::demo_config();
    let target = Key::from_u64(0xFEED_F00D);

    // Sim backend: virtual time, deterministic engine.
    let sim = kadnet::sim_lookup(seed, n, &cfg, target);

    // TCP backend: real listeners on ephemeral loopback ports, served
    // from a background thread while this thread probes.
    let bind: Vec<SocketAddr> = (0..n)
        .map(|_| SocketAddr::from(([127, 0, 0, 1], 0)))
        .collect();
    let mut mesh = kadnet::serve_mesh(seed, n, &cfg, &bind).expect("mesh binds on loopback");
    let addrs = mesh.addrs.clone();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_server = stop.clone();
    let server = thread::spawn(move || {
        while !stop_server.load(Ordering::SeqCst) {
            mesh.runtime.poll(SimDuration::from_millis(20.0));
        }
        mesh
    });

    let probe = kadnet::probe_lookup(
        seed,
        &cfg,
        &addrs,
        SocketAddr::from(([127, 0, 0, 1], 0)),
        target,
        SimDuration::from_secs(30.0),
    )
    .expect("probe runtime starts")
    .expect("real-socket lookup completes before the deadline");

    stop.store(true, Ordering::SeqCst);
    let mesh = server.join().expect("server thread exits cleanly");
    drop(mesh);

    assert!(!probe.closest.is_empty(), "lookup discovered no contacts");
    assert_eq!(probe.timeouts, 0, "loopback RPCs must not time out");
    assert_eq!(
        probe.closest, sim.closest,
        "TCP and sim backends disagree on the k-closest set"
    );
    assert_eq!(probe.found_value, sim.found_value);
}

#[test]
fn mesh_serves_consecutive_probes() {
    // A served mesh is a long-lived process: two independent probe
    // runtimes (fresh sockets each) must both converge.
    let (seed, n) = (7u64, 8usize);
    let cfg = kadnet::demo_config();
    let bind: Vec<SocketAddr> = (0..n)
        .map(|_| SocketAddr::from(([127, 0, 0, 1], 0)))
        .collect();
    let mut mesh = kadnet::serve_mesh(seed, n, &cfg, &bind).expect("mesh binds on loopback");
    let addrs = mesh.addrs.clone();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_server = stop.clone();
    let server = thread::spawn(move || {
        while !stop_server.load(Ordering::SeqCst) {
            mesh.runtime.poll(SimDuration::from_millis(20.0));
        }
    });

    let mut sets = Vec::new();
    for round in 0..2u64 {
        let r = kadnet::probe_lookup(
            seed,
            &cfg,
            &addrs,
            SocketAddr::from(([127, 0, 0, 1], 0)),
            Key::from_u64(0xABCD ^ round),
            SimDuration::from_secs(30.0),
        )
        .expect("probe runtime starts")
        .expect("lookup completes");
        sets.push(r.closest);
    }
    stop.store(true, Ordering::SeqCst);
    server.join().expect("server thread exits cleanly");

    // Different targets, but both sets come from the same 8-node
    // roster and must be full-size (k = 8, mesh = 8 responsive nodes).
    assert_eq!(sets[0].len(), n.min(kadnet::demo_config().k));
    assert_eq!(sets[1].len(), n.min(kadnet::demo_config().k));
}
