//! Cross-crate integration: scenarios that span the substrate crates,
//! plus consistency of the claim catalog with the experiment registry.

use decent::core::{claims, experiments, scenario};
use decent::sim::prelude::*;

/// Every claim maps to a registered scenario and vice versa.
#[test]
fn claims_and_experiments_are_in_bijection() {
    let mut claimed: Vec<&str> = claims::CLAIMS.iter().map(|c| c.experiment).collect();
    claimed.sort_unstable();
    let mut registered = scenario::ids();
    registered.sort_unstable();
    assert_eq!(claimed, registered);
}

/// `run_by_id` rejects unknown ids and accepts every registered one
/// (checked cheaply via the experiment that needs no simulation).
#[test]
fn experiment_registry_dispatches() {
    assert!(experiments::run_by_id("E99", true).is_none());
    let r = experiments::run_by_id("E10", true).expect("registered");
    assert_eq!(r.id, "E10");
    assert!(!r.tables.is_empty());
    assert!(!r.findings.is_empty());
}

/// The paper's core quantitative narrative, end to end at CI scale:
/// the permissionless stack loses to the permissioned/cloud stack on
/// every axis the paper cares about.
#[test]
fn the_papers_argument_holds_end_to_end() {
    use decent::bft::pbft::{saturation_run, PbftConfig};
    use decent::chain::node::{build_network, report, ChainNodeConfig, NetworkConfig};
    use decent::chain::pow::PowParams;

    // Permissionless: 40 nodes, planet-scale latency, saturated load.
    let mut rng = rng_from_seed(71);
    let net = RegionNet::sampled(40, &Region::BITCOIN_2019_DISTRIBUTION, &mut rng);
    let mut sim = Simulation::new(72, net);
    let cfg = NetworkConfig {
        nodes: 40,
        miner_fraction: 0.25,
        node: ChainNodeConfig {
            params: PowParams::bitcoin(),
            tx_rate: 100.0,
            ..ChainNodeConfig::default()
        },
        ..NetworkConfig::default()
    };
    let ids = build_network(&mut sim, &cfg, 73);
    sim.run_until(SimTime::from_hours(6.0));
    let pow = report(&sim, ids[39]);

    // Permissioned: a 16-replica PBFT committee on a LAN. Throughput is
    // measured saturated; latency at light load (a saturated pre-loaded
    // queue measures backlog wait, not protocol latency).
    let pbft = PbftConfig {
        n: 16,
        ..PbftConfig::default()
    };
    let (bft_tps, _) = saturation_run(&pbft, 50_000, SimDuration::from_secs(2.0), 74);
    let (_, bft_lat) = saturation_run(&pbft, 1_000, SimDuration::from_secs(2.0), 75);

    assert!(pow.tps < 8.0, "PoW stays in single digits: {}", pow.tps);
    assert!(
        bft_tps > 100.0 * pow.tps,
        "BFT ({bft_tps}) must be orders of magnitude above PoW ({})",
        pow.tps
    );
    assert!(
        bft_lat.p50 < 1.0,
        "BFT commits in well under a second: {}",
        bft_lat.p50
    );
}

/// The gossip substrate used conceptually by both worlds behaves the
/// same over the overlay graph and the chain relay network: denser
/// connectivity means faster, more complete dissemination.
#[test]
fn dissemination_improves_with_connectivity() {
    use decent::overlay::gossip::{build_network, delivery_ratio, GossipConfig};

    let run = |fanout: usize| {
        let mut sim = Simulation::new(81, UniformLatency::from_millis(20.0, 100.0));
        let graph = Graph::random_outbound(300, 8, &mut rng_from_seed(82));
        let cfg = GossipConfig {
            fanout,
            ..GossipConfig::default()
        };
        let ids = build_network(&mut sim, &graph, cfg);
        sim.run_until(SimTime::from_secs(0.1));
        sim.invoke(ids[0], |n, ctx| n.publish(1, ctx));
        sim.run_until(SimTime::from_secs(20.0));
        delivery_ratio(&sim, &ids, 1)
    };
    let sparse = run(1);
    let dense = run(6);
    assert!(dense > 0.95);
    assert!(dense > sparse);
}

/// Superpeer and flooding overlays answer the same workload; the
/// superpeer tier resolves queries with far less relay traffic.
#[test]
fn superpeers_beat_flooding_on_traffic() {
    use decent::overlay::flood::{build_network as build_flood, FloodConfig};
    use decent::overlay::superpeer::build_network as build_sp;

    // Flooding: 300 peers, one query.
    let mut sim = Simulation::new(91, UniformLatency::from_millis(20.0, 80.0));
    let ids = build_flood(&mut sim, 300, &FloodConfig::default(), 92);
    sim.run_until(SimTime::from_secs(0.1));
    sim.invoke(ids[0], |n, ctx| n.query(1, 0, 7, ctx));
    sim.run_until(SimTime::from_secs(20.0));
    let flood_msgs = sim.stats().sent;

    // Superpeers: 10 supers + 290 leaves, same catalog shape.
    let mut sim2 = Simulation::new(93, UniformLatency::from_millis(20.0, 80.0));
    let (_supers, leaves) = build_sp(
        &mut sim2,
        10,
        290,
        |i, _rng| {
            if i % 3 == 0 {
                vec![(i % 50) as u32]
            } else {
                vec![]
            }
        },
        94,
    );
    sim2.run_until(SimTime::from_secs(1.0));
    let baseline = sim2.stats().sent; // registrations
    sim2.invoke(leaves[1], |n, ctx| n.query(1, 3, ctx));
    sim2.run_until(SimTime::from_secs(20.0));
    let sp_msgs = sim2.stats().sent - baseline;

    assert!(
        sp_msgs * 5 < flood_msgs,
        "superpeer query traffic ({sp_msgs}) should be a fraction of flooding ({flood_msgs})"
    );
}

/// One-hop overlays trade lookup latency for membership traffic — both
/// directions of the trade must be visible in the same run.
#[test]
fn onehop_trades_bandwidth_for_latency() {
    use decent::overlay::id::Key;
    use decent::overlay::kademlia::Contact;
    use decent::overlay::onehop::{build_network, OneHopConfig};

    let mut sim = Simulation::new(95, UniformLatency::from_millis(30.0, 90.0));
    let ids = build_network(&mut sim, 200, OneHopConfig::default(), 96);
    sim.run_until(SimTime::from_secs(0.1));
    // Lookups are one round trip.
    sim.invoke(ids[0], |n, ctx| {
        n.start_lookup(Key::from_u64(5), ctx);
    });
    sim.run_until(SimTime::from_secs(5.0));
    let r = sim.node(ids[0]).results[0];
    assert!(r.success);
    assert!(r.latency < SimDuration::from_millis(200.0));
    // Membership events cost gossip traffic.
    let before = sim.stats().sent;
    let subject = Contact {
        node: ids[1],
        key: sim.node(ids[1]).key(),
    };
    sim.invoke(ids[2], |n, _| n.observe(subject, false));
    sim.run_until(sim.now() + SimDuration::from_mins(3.0));
    let traffic = sim.stats().sent - before;
    assert!(
        traffic > 100,
        "a single membership event must fan out through gossip: {traffic}"
    );
}
