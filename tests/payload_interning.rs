//! Equivalence suite for interned message payloads (DESIGN.md §4g).
//!
//! [`Interned`] exists so that every extra engine-side clone of a bulk
//! message — fault-injected duplicates, broadcast fan-out, the sharded
//! commit phase — is a refcount bump instead of a deep copy. That is
//! only sound if interning is *observationally invisible*: a workload
//! whose messages carry `Interned<[u32]>` payloads must produce the
//! exact run (trace records, metrics, counters, node state) of the same
//! workload carrying deep-cloned `Vec<u32>` payloads.
//!
//! The properties here drive one blob-gossip workload through both
//! payload representations under randomized duplication-heavy fault
//! plans, on both schedulers, serial and sharded, and require the full
//! fingerprints to match. A second set pins the arena-backed lookup
//! state in [`decent::overlay::kademlia`] across crash/restart churn:
//! slot reuse must never resurrect or alias an abandoned lookup.

use proptest::prelude::*;
use rand::Rng;

use decent::overlay::id::Key;
use decent::overlay::kademlia::{build_network, KadConfig, KadNode};
use decent::sim::prelude::*;
use decent::sim::trace::EventRecord;

/// Payload representation under test: deep-cloned vs interned bulk
/// data, constructed from the same values and reporting the same
/// digest and wire size, so runs differ *only* in clone mechanics.
trait Payload: Clone + std::fmt::Debug + Send + 'static {
    fn make(vals: Vec<u32>) -> Self;
    fn digest(&self) -> u64;
    fn wire_bytes(&self) -> u64;
}

impl Payload for Vec<u32> {
    fn make(vals: Vec<u32>) -> Self {
        vals
    }
    fn digest(&self) -> u64 {
        self.iter()
            .fold(0u64, |a, &v| a.wrapping_mul(31).wrapping_add(u64::from(v)))
    }
    fn wire_bytes(&self) -> u64 {
        16 + 4 * self.len() as u64
    }
}

impl Payload for Interned<[u32]> {
    fn make(vals: Vec<u32>) -> Self {
        Interned::from_vec(vals)
    }
    fn digest(&self) -> u64 {
        self.iter()
            .fold(0u64, |a, &v| a.wrapping_mul(31).wrapping_add(u64::from(v)))
    }
    fn wire_bytes(&self) -> u64 {
        16 + 4 * self.len() as u64
    }
}

/// Blob gossip: each first-seen rumor id is re-broadcast, with its
/// payload, to `fanout` pseudo-random peers. The payload digest folds
/// into node state, so a payload corrupted (or reordered) anywhere in
/// the clone/interning machinery changes the fingerprint.
struct Blob<P> {
    n: usize,
    fanout: usize,
    seen: Vec<u64>,
    digest: u64,
    marker: std::marker::PhantomData<P>,
}

impl<P: Payload> Node for Blob<P> {
    type Msg = (u64, P);

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        ctx.set_timer(SimDuration::from_secs(1.0), 1);
    }

    fn on_message(&mut self, _from: NodeId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        let (rumor, payload) = msg;
        self.digest = self.digest.wrapping_add(payload.digest());
        if self.seen.contains(&rumor) {
            return;
        }
        self.seen.push(rumor);
        let n = self.n;
        for _ in 0..self.fanout {
            let dst = ctx.rng().gen_range(0..n);
            let bytes = payload.wire_bytes();
            ctx.send_sized(dst, (rumor, payload.clone()), bytes);
        }
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut Context<'_, Self::Msg>) {
        // Low-rate anti-entropy: refresh the last rumor with a fresh
        // payload derived from the node RNG (same stream either way).
        if ctx.now() < SimTime::from_secs(15.0) {
            ctx.set_timer(SimDuration::from_secs(1.0), 1);
            if let Some(&r) = self.seen.last() {
                let n = self.n;
                let len = ctx.rng().gen_range(1..24);
                let vals: Vec<u32> = (0..len).map(|_| ctx.rng().gen()).collect();
                let payload = P::make(vals);
                let dst = ctx.rng().gen_range(0..n);
                let bytes = payload.wire_bytes();
                ctx.send_sized(dst, (r, payload), bytes);
            }
        }
    }
}

/// Everything observable about a finished run, minus the payload type.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    events: u64,
    cancelled: u64,
    sent: u64,
    delivered: u64,
    bytes_sent: u64,
    now: SimTime,
    trace: Vec<EventRecord>,
    metrics: MetricsSnapshot,
    state: Vec<(Vec<u64>, u64)>,
}

fn run_blob<P: Payload, S: SchedulerFor<Blob<P>> + Send>(
    seed: u64,
    n: usize,
    fanout: usize,
    dup_window: Option<(f64, f64, f64)>,
    shards: usize,
) -> Fingerprint {
    let mut plan = FaultPlan::new();
    if let Some((at, until, p)) = dup_window {
        plan = plan.duplicate(SimTime::from_secs(at), SimTime::from_secs(until), p);
    }
    let mut sim: Simulation<Blob<P>, S> = Simulation::with_scheduler(
        seed,
        Faulty::new(UniformLatency::from_millis(10.0, 60.0), plan),
    );
    sim.set_shards(shards);
    sim.enable_trace(1 << 16);
    for _ in 0..n {
        sim.add_node(Blob {
            n,
            fanout,
            seen: Vec::new(),
            digest: 0,
            marker: std::marker::PhantomData,
        });
    }
    // Seed rumors with deterministic payloads from distinct origins.
    for r in 0..4u64 {
        let vals: Vec<u32> = (0..8).map(|i| (r * 100 + i) as u32).collect();
        sim.inject(
            (r as usize * 7) % n,
            (1000 + r, P::make(vals)),
            SimDuration::from_secs(0.1 + r as f64),
        );
    }
    sim.run_until(SimTime::from_secs(25.0));
    let trace: Vec<EventRecord> = sim
        .trace()
        .expect("trace enabled")
        .records()
        .copied()
        .collect();
    let metrics = sim.metrics_snapshot();
    let state = (0..n)
        .map(|i| {
            let b = sim.node(i);
            (b.seen.clone(), b.digest)
        })
        .collect();
    Fingerprint {
        events: sim.events_processed(),
        cancelled: sim.events_cancelled(),
        sent: sim.stats().sent,
        delivered: sim.stats().delivered,
        bytes_sent: sim.stats().bytes_sent,
        now: sim.now(),
        trace,
        metrics,
        state,
    }
}

proptest! {
    // Each case runs the workload 2 (payloads) x 2 (schedulers) x 2
    // (shard counts) times; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    // The headline property: interned payload delivery is
    // observationally identical to deep-clone delivery — same trace
    // records, metrics, counters, and node state — under randomized
    // duplication windows (the engine's clone-heavy path), on both
    // schedulers, serial and sharded.
    #[test]
    fn interned_payloads_are_observationally_identical_to_clones(
        seed in any::<u64>(),
        n in 2usize..16,
        fanout in 1usize..4,
        dup in proptest::option::of((0.5f64..8.0, 4.0f64..16.0, 0.1f64..0.6)),
    ) {
        let dup = dup.map(|(at, d, p)| (at, at + d, p));
        for shards in [1usize, 4] {
            let cloned = run_blob::<Vec<u32>, TimingWheel<_>>(seed, n, fanout, dup, shards);
            let interned =
                run_blob::<Interned<[u32]>, TimingWheel<_>>(seed, n, fanout, dup, shards);
            prop_assert_eq!(
                &cloned, &interned,
                "interned run diverged from clone run (wheel, shards={})", shards
            );
            let interned_heap =
                run_blob::<Interned<[u32]>, BinaryHeapScheduler<_>>(seed, n, fanout, dup, shards);
            prop_assert_eq!(
                &cloned, &interned_heap,
                "interned run diverged from clone run (heap, shards={})", shards
            );
        }
    }
}

/// Fan-out without faults: one interned payload broadcast to every
/// node. Deterministic spot check that the shared-allocation fast path
/// (`Arc` clone + pointer-equality compare) behaves like value
/// semantics.
#[test]
fn broadcast_fanout_preserves_payload_content() {
    let payload: Interned<[u32]> = Interned::from_slice(&[7, 11, 13]);
    let copies: Vec<Interned<[u32]>> = (0..64).map(|_| payload.clone()).collect();
    for c in &copies {
        assert_eq!(c, &payload);
        assert_eq!(&c[..], &[7, 11, 13]);
    }
    let rebuilt: Interned<[u32]> = Interned::from_vec(vec![7, 11, 13]);
    assert_eq!(rebuilt, payload, "content equality across allocations");
}

/// Arena-reuse integration: Kademlia keeps its in-flight lookups in a
/// generational [`SlotArena`]. Crash/restart churn (`on_stop` clears
/// the arena; restart reuses its slots) must neither resurrect
/// abandoned lookups nor alias new ones: every completed lookup id is
/// unique and monotonically increasing per origin node.
#[test]
fn kademlia_lookup_slots_survive_crash_restart_reuse() {
    let mut sim: Simulation<KadNode> = Simulation::new(21, UniformLatency::from_millis(20.0, 80.0));
    let cfg = KadConfig {
        k: 8,
        alpha: 3,
        ..KadConfig::default()
    };
    let ids = build_network(&mut sim, 120, &cfg, 0.0, 8, 17);
    sim.run_until(SimTime::from_secs(1.0));

    let mut issued: Vec<u64> = Vec::new();

    // Wave 1: several overlapping lookups from one origin.
    for t in 0..5u64 {
        sim.invoke(ids[0], |n, ctx| {
            issued.push(n.start_lookup(Key::from_u64(0xA000 + t), false, ctx));
        });
    }
    sim.run_until(SimTime::from_secs(20.0));
    let after_wave1 = sim.node(ids[0]).results.len();
    assert!(after_wave1 >= 1, "wave-1 lookups must complete");

    // Crash the origin mid-lookup: start fresh lookups, then stop the
    // node before they can finish. `on_stop` clears the lookup arena.
    let mut abandoned: Vec<u64> = Vec::new();
    for t in 0..3u64 {
        sim.invoke(ids[0], |n, ctx| {
            abandoned.push(n.start_lookup(Key::from_u64(0xB000 + t), false, ctx));
        });
    }
    let now = sim.now();
    sim.schedule_stop(ids[0], now + SimDuration::from_millis(1.0));
    sim.schedule_start(ids[0], now + SimDuration::from_secs(5.0));
    sim.run_until(now + SimDuration::from_secs(10.0));
    let after_crash = sim.node(ids[0]).results.len();

    // Wave 2 after restart: arena slots from the cleared wave are
    // reused; new lookups must complete normally with fresh ids.
    for t in 0..5u64 {
        sim.invoke(ids[0], |n, ctx| {
            issued.push(n.start_lookup(Key::from_u64(0xC000 + t), false, ctx));
        });
    }
    sim.run_until(sim.now() + SimDuration::from_secs(30.0));
    let results = &sim.node(ids[0]).results;
    assert!(
        results.len() > after_crash,
        "post-restart lookups must complete ({} vs {after_crash})",
        results.len()
    );
    // Issued ids are globally unique (the per-node id counter never
    // rewinds, even though arena slots are reused).
    let mut unique = issued.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), issued.len(), "start_lookup reused an id");
    // No duplicate, resurrected, or fabricated lookup ids in results.
    let mut seen_ids = Vec::new();
    for r in results {
        assert!(
            !seen_ids.contains(&r.id),
            "lookup id {} reported twice — arena slot aliasing",
            r.id
        );
        assert!(
            issued.contains(&r.id),
            "lookup id {} completed but was never issued",
            r.id
        );
        seen_ids.push(r.id);
    }
    // Abandoned mid-crash lookups never produce results: their slots
    // were cleared by the crash, and reuse must not revive them.
    for id in &abandoned {
        assert!(
            !seen_ids.contains(id),
            "crash-abandoned lookup {id} completed after restart"
        );
    }
    assert_eq!(
        after_crash, after_wave1,
        "crash-abandoned lookups must not complete"
    );
}
