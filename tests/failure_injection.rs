//! Failure injection across the stack: churn storms on the DHT,
//! eclipse attacks, byzantine and crashing consensus members, and
//! network loss.

use decent::bft::pbft::{build_cluster as build_pbft, Behavior, PbftConfig};
use decent::bft::raft::{build_cluster as build_raft, current_leader, RaftConfig, Role};
use decent::overlay::id::Key;
use decent::overlay::kademlia::{build_network as build_kad, KadConfig};
use decent::sim::prelude::*;

/// A mass-departure "churn storm" must degrade but not wedge the DHT.
#[test]
fn dht_survives_a_churn_storm() {
    let mut sim = Simulation::new(61, UniformLatency::from_millis(20.0, 80.0));
    let ids = build_kad(&mut sim, 400, &KadConfig::default(), 0.0, 8, 62);
    sim.run_until(SimTime::from_secs(1.0));
    // 60% of the network leaves within one minute.
    for (i, &id) in ids.iter().enumerate() {
        if i % 5 < 3 {
            sim.schedule_stop(id, SimTime::from_secs(1.0 + (i % 60) as f64));
        }
    }
    sim.run_until(SimTime::from_mins(2.0));
    let survivors: Vec<NodeId> = ids.iter().copied().filter(|&i| sim.is_online(i)).collect();
    assert!(survivors.len() >= 140);
    for (i, &origin) in survivors.iter().take(30).enumerate() {
        let t = Key::from_u64(i as u64);
        sim.invoke(origin, |n, ctx| {
            n.start_lookup(t, false, ctx);
        });
    }
    sim.run_until(sim.now() + SimDuration::from_mins(5.0));
    let mut done = 0;
    let mut with_results = 0;
    for &id in &survivors {
        for r in &sim.node(id).results {
            done += 1;
            if !r.closest.is_empty() {
                with_results += 1;
            }
        }
    }
    assert_eq!(done, 30, "every lookup must terminate");
    assert!(
        with_results >= 25,
        "most lookups should still find live nodes: {with_results}/30"
    );
}

/// Message loss slows Kademlia down (timeouts) but does not break it.
#[test]
fn dht_tolerates_message_loss() {
    let run = |loss: f64| {
        let net = Lossy::new(UniformLatency::from_millis(20.0, 80.0), loss);
        let mut sim = Simulation::new(63, net);
        let ids = build_kad(&mut sim, 250, &KadConfig::default(), 0.0, 8, 64);
        sim.run_until(SimTime::from_secs(1.0));
        for i in 0..20u64 {
            let origin = ids[(i as usize * 11) % ids.len()];
            sim.invoke(origin, |n, ctx| {
                n.start_lookup(Key::from_u64(i), false, ctx);
            });
        }
        sim.run_until(SimTime::from_mins(5.0));
        let mut lat = Histogram::new();
        let mut timeouts = 0usize;
        for &id in &ids {
            for r in &sim.node(id).results {
                lat.record(r.latency.as_secs());
                timeouts += r.timeouts;
            }
        }
        (lat.count(), lat.mean(), timeouts)
    };
    let (done_clean, mean_clean, t_clean) = run(0.0);
    let (done_lossy, mean_lossy, t_lossy) = run(0.15);
    assert_eq!(done_clean, 20);
    assert_eq!(done_lossy, 20, "lossy lookups must still terminate");
    assert!(t_lossy > t_clean, "loss must cause timeouts");
    assert!(mean_lossy > mean_clean, "loss must cost latency");
}

/// Two consecutive byzantine primaries are voted out one after another.
#[test]
fn pbft_survives_two_silent_primaries_in_a_row() {
    let cfg = PbftConfig {
        n: 7,
        view_timeout: SimDuration::from_millis(400.0),
        ..PbftConfig::default()
    };
    let mut sim = Simulation::new(65, LanNet::datacenter());
    let ids = build_pbft(
        &mut sim,
        &cfg,
        &[Behavior::SilentPrimary, Behavior::SilentPrimary],
    );
    for &id in &ids {
        sim.node_mut(id).submit_many(0..1000, SimTime::ZERO);
    }
    sim.run_until(SimTime::from_secs(15.0));
    let honest = sim.node(ids[2]);
    assert!(
        honest.view() >= 2,
        "two view changes expected, got {}",
        honest.view()
    );
    assert_eq!(honest.executed.len(), 1000);
}

/// PBFT stalls (safely) beyond its fault budget: with f+1 crashed
/// replicas nothing commits, but nothing diverges either.
#[test]
fn pbft_halts_beyond_its_fault_budget() {
    let cfg = PbftConfig::default(); // n = 4, f = 1
    let mut sim = Simulation::new(66, LanNet::datacenter());
    let ids = build_pbft(&mut sim, &cfg, &[]);
    // Crash two backups: only 2 of 4 remain, below the 2f+1 = 3 quorum.
    sim.schedule_stop(ids[2], SimTime::from_secs(0.001));
    sim.schedule_stop(ids[3], SimTime::from_secs(0.001));
    for &id in &ids {
        sim.node_mut(id).submit_many(0..100, SimTime::ZERO);
    }
    sim.run_until(SimTime::from_secs(10.0));
    assert_eq!(
        sim.node(ids[0]).executed.len(),
        0,
        "no commit without a quorum"
    );
    assert_eq!(sim.node(ids[1]).executed.len(), 0);
}

/// A scripted 5/2 partition stalls exactly the minority side of a PBFT
/// cluster, and the quorum side never notices.
#[test]
fn scripted_partition_stalls_only_the_pbft_minority() {
    let cfg = PbftConfig {
        n: 7,
        ..PbftConfig::default()
    };
    let plan = FaultPlan::new().partition(
        SimTime::from_secs(2.0),
        SimTime::from_secs(30.0),
        vec![5, 6],
    );
    let mut sim = Simulation::new(68, Faulty::new(LanNet::datacenter(), plan));
    let ids = build_pbft(&mut sim, &cfg, &[]);
    sim.run_until(SimTime::from_secs(3.0));
    let now = sim.now();
    for &id in &ids {
        sim.node_mut(id).submit_many(0..500, now);
    }
    sim.run_until(SimTime::from_secs(20.0));
    // Majority (holds the 2f+1 = 5 quorum) executes everything; the cut
    // minority executes nothing and burns view-change attempts instead.
    assert_eq!(sim.node(ids[0]).executed.len(), 500);
    assert_eq!(sim.node(ids[4]).executed.len(), 500);
    assert_eq!(sim.node(ids[5]).executed.len(), 0, "minority must stall");
    assert_eq!(sim.node(ids[6]).executed.len(), 0, "minority must stall");
    assert!(sim.node(ids[6]).view_changes > 0, "futile view changes");
    // The engine accounted for every message that hit the cut.
    assert!(sim.metrics_snapshot().counter("msgs_dropped_partition") > 0);
}

/// Kademlia lookups on the majority side keep terminating while the
/// network is bisected, and the healed network answers for both sides.
#[test]
fn dht_lookups_terminate_across_a_bisection() {
    let plan = FaultPlan::new().bisect(
        SimTime::from_secs(5.0),
        SimTime::from_secs(60.0),
        &(0..300).collect::<Vec<_>>(),
    );
    let mut sim = Simulation::new(
        69,
        Faulty::new(UniformLatency::from_millis(20.0, 80.0), plan),
    );
    let ids = build_kad(&mut sim, 300, &KadConfig::default(), 0.0, 8, 70);
    sim.run_until(SimTime::from_secs(10.0));
    // Mid-partition: origins on the first half (the side `bisect` cuts
    // at the midpoint) can only see their own half.
    for i in 0..20u64 {
        let origin = ids[(i as usize * 7) % 150];
        sim.invoke(origin, |n, ctx| {
            n.start_lookup(Key::from_u64(i), false, ctx);
        });
    }
    sim.run_until(SimTime::from_secs(70.0));
    let mid: usize = ids[..150]
        .iter()
        .map(|&id| sim.node(id).results.len())
        .sum();
    assert_eq!(mid, 20, "every mid-partition lookup must terminate");
    // Post-heal: lookups work from either side again.
    for i in 0..20u64 {
        let origin = ids[(i as usize * 7) % 300];
        sim.invoke(origin, |n, ctx| {
            n.start_lookup(Key::from_u64(1000 + i), false, ctx);
        });
    }
    sim.run_until(SimTime::from_secs(120.0));
    let total: usize = ids.iter().map(|&id| sim.node(id).results.len()).sum();
    assert_eq!(total, 40, "post-heal lookups must terminate too");
}

/// `FaultPlan::schedule_crashes` takes the scripted node set down as
/// first-class engine events and brings it back at the window's end.
#[test]
fn crash_burst_downs_and_recovers_the_scripted_set() {
    let burst: Vec<NodeId> = (10..40).collect();
    let plan = FaultPlan::new().crash_burst(
        SimTime::from_secs(5.0),
        SimTime::from_secs(15.0),
        burst.clone(),
    );
    let mut sim = Simulation::new(71, UniformLatency::from_millis(20.0, 80.0));
    let ids = build_kad(&mut sim, 80, &KadConfig::default(), 0.0, 8, 72);
    plan.schedule_crashes(&mut sim);
    sim.run_until(SimTime::from_secs(10.0));
    assert!(burst.iter().all(|&id| !sim.is_online(ids[id])));
    assert!(sim.is_online(ids[0]) && sim.is_online(ids[79]));
    sim.run_until(SimTime::from_secs(20.0));
    assert!(
        burst.iter().all(|&id| sim.is_online(ids[id])),
        "burst nodes must recover at the window end"
    );
}

/// Raft under a crash-recover churn schedule never loses commits.
#[test]
fn raft_crash_recover_storm_preserves_committed_prefix() {
    let mut sim = Simulation::new(67, LanNet::datacenter());
    let ids = build_raft(&mut sim, &RaftConfig::default());
    sim.run_until(SimTime::from_secs(1.0));
    for &id in &ids {
        sim.node_mut(id)
            .submit_many(0..3000, SimTime::from_secs(1.0));
    }
    // Rolling restarts: each server crashes for 1 s, staggered.
    for (i, &id) in ids.iter().enumerate() {
        let down = 2.0 + i as f64 * 1.5;
        sim.schedule_stop(id, SimTime::from_secs(down));
        sim.schedule_start(id, SimTime::from_secs(down + 1.0));
    }
    sim.run_until(SimTime::from_secs(40.0));
    // All servers converge on an identical committed sequence.
    let leader = current_leader(&sim, &ids).expect("a leader after the storm");
    assert_eq!(sim.node(leader).role(), Role::Leader);
    let reference = sim.node(leader).committed_ids();
    assert_eq!(reference.len(), 3000, "all ops must eventually commit");
    for &id in &ids {
        let theirs = sim.node(id).committed_ids();
        let common = theirs.len().min(reference.len());
        assert_eq!(
            &theirs[..common],
            &reference[..common],
            "committed prefixes must agree"
        );
    }
}
