//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use decent::chain::block::{Block, BlockId, ChainView};
use decent::chain::feemarket::{simulate_congestion, FeeMarketConfig};
use decent::chain::ledger::{Address, Ledger, OutPoint, Transaction, TxOut};
use decent::chain::pos;
use decent::chain::selfish;
use decent::overlay::can::Zone;
use decent::overlay::id::{Key, KEY_BITS};
use decent::overlay::pastry::{digit, shared_prefix, DIGITS};
use decent::sim::metrics::{gini, top_k_share, Histogram};
use decent::sim::payload::Interned;
use decent::sim::rng::rng_from_seed;
use decent::sim::topology::Graph;

fn arb_key() -> impl Strategy<Value = Key> {
    proptest::array::uniform20(any::<u8>()).prop_map(Key::from_bytes)
}

proptest! {
    #[test]
    fn xor_distance_is_a_metric(a in arb_key(), b in arb_key(), c in arb_key()) {
        // Identity of indiscernibles.
        prop_assert_eq!(a.xor_distance(&a), Key::ZERO.xor_distance(&Key::ZERO));
        // Symmetry.
        prop_assert_eq!(a.xor_distance(&b), b.xor_distance(&a));
        // XOR relation: d(a,c) = d(a,b) ^ d(b,c).
        let ab = a.xor_distance(&b);
        let bc = b.xor_distance(&c);
        let ac = a.xor_distance(&c);
        prop_assert_eq!(*ab.as_key().xor_distance(bc.as_key()).as_key(), *ac.as_key());
        // Unidirectionality: distance determines the pair's offset
        // uniquely, so d(a,b) = 0 iff a = b.
        prop_assert_eq!(a.xor_distance(&b) == Key::ZERO.xor_distance(&Key::ZERO), a == b);
    }

    #[test]
    fn bucket_index_matches_prefix_length(a in arb_key(), b in arb_key()) {
        prop_assume!(a != b);
        let d = a.xor_distance(&b);
        let bucket = d.bucket().expect("distinct keys");
        prop_assert_eq!(bucket, KEY_BITS - 1 - d.leading_zeros());
        prop_assert!(bucket < KEY_BITS);
    }

    #[test]
    fn add_pow2_doubles_compose(a in arb_key(), i in 0usize..159) {
        // a + 2^i + 2^i == a + 2^(i+1) (mod 2^160).
        let twice = a.add_pow2(i).add_pow2(i);
        let once = a.add_pow2(i + 1);
        prop_assert_eq!(twice, once);
    }

    #[test]
    fn arcs_partition_the_ring(a in arb_key(), b in arb_key(), x in arb_key()) {
        prop_assume!(a != b && x != a && x != b);
        // Every point other than the endpoints lies on exactly one of
        // the two arcs (a,b] and (b,a].
        let on_ab = x.in_arc(&a, &b);
        let on_ba = x.in_arc(&b, &a);
        prop_assert!(on_ab ^ on_ba, "x must be on exactly one arc");
    }

    #[test]
    fn histogram_percentiles_are_monotone(mut xs in proptest::collection::vec(-1e12f64..1e12, 1..200)) {
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let p10 = h.percentile(0.10);
        let p50 = h.percentile(0.50);
        let p90 = h.percentile(0.90);
        prop_assert!(p10 <= p50 && p50 <= p90);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(h.percentile(0.0), xs[0]);
        prop_assert_eq!(h.percentile(1.0), *xs.last().unwrap());
        prop_assert!(h.min() <= h.mean() && h.mean() <= h.max());
    }

    #[test]
    fn gini_and_topk_are_well_behaved(xs in proptest::collection::vec(0.0f64..1e9, 1..100)) {
        let g = gini(&xs);
        prop_assert!((0.0..=1.0).contains(&g), "gini {g}");
        // top_k share is monotone in k and reaches 1.
        let mut prev = 0.0;
        for k in 1..=xs.len() {
            let s = top_k_share(&xs, k);
            prop_assert!(s >= prev - 1e-12);
            prev = s;
        }
        if xs.iter().sum::<f64>() > 0.0 {
            prop_assert!((top_k_share(&xs, xs.len()) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn random_outbound_graphs_are_connected(n in 10usize..300, k in 2usize..8, seed in any::<u64>()) {
        prop_assume!(k < n);
        let mut rng = rng_from_seed(seed);
        let g = Graph::random_outbound(n, k, &mut rng);
        prop_assert!(g.is_connected());
        // Handshake lemma.
        let degree_sum: usize = (0..n).map(|i| g.degree(i)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn chain_tip_is_always_max_height_first_seen(
        choices in proptest::collection::vec(0usize..4, 1..60)
    ) {
        // Randomly extend one of up to four competing branch heads.
        let genesis = Block::genesis(1.0);
        let mut view = ChainView::new(genesis.clone());
        let mut heads: Vec<Interned<Block>> = vec![genesis; 4];
        let mut max_height = 0u64;
        for (step, &c) in choices.iter().enumerate() {
            let parent = heads[c].clone();
            let block = Interned::new(Block {
                id: BlockId(step as u64 + 1),
                parent: Some(parent.id),
                height: parent.height + 1,
                miner: 0,
                mined_at: decent::sim::time::SimTime::from_secs(step as f64),
                txs: vec![],
                size_bytes: 100,
                difficulty: 1.0,
            });
            let moved = view.accept(block.clone(), decent::sim::time::SimTime::from_secs(step as f64));
            heads[c] = block.clone();
            // The tip moves exactly when the new block is strictly higher.
            prop_assert_eq!(moved, block.height > max_height);
            max_height = max_height.max(block.height);
            prop_assert_eq!(view.height(), max_height);
        }
        // Main chain + stale = all blocks (minus genesis counted once).
        prop_assert_eq!(view.best_chain().len() + view.stale_blocks().len(), view.len());
    }

    #[test]
    fn ledger_conserves_value(splits in proptest::collection::vec(1u64..100, 1..20)) {
        // Mint one coinbase, then repeatedly split the first UTXO.
        const COIN: u64 = 1_000_000;
        let mut ledger = Ledger::new(COIN);
        ledger
            .apply_block(
                &[Transaction {
                    id: 1,
                    inputs: vec![],
                    outputs: vec![TxOut { to: Address(0), amount: COIN }],
                }],
                0,
            )
            .unwrap();
        let mut spendable = OutPoint { tx: 1, index: 0 };
        let mut amount = COIN;
        let mut next = 2u64;
        for (i, &cut) in splits.iter().enumerate() {
            let part = amount * cut.min(99) / 100;
            if part == 0 || part == amount {
                continue;
            }
            let tx = Transaction {
                id: next,
                inputs: vec![spendable],
                outputs: vec![
                    TxOut { to: Address(next), amount: part },
                    TxOut { to: Address(0), amount: amount - part },
                ],
            };
            ledger.apply_block(&[tx], i as u64 + 1).unwrap();
            spendable = OutPoint { tx: next, index: 1 };
            amount -= part;
            next += 1;
            // Invariant: total supply never changes after minting.
            prop_assert_eq!(ledger.total_supply(), COIN);
        }
        // And the original outpoint is long gone.
        let replay = Transaction {
            id: 999_999,
            inputs: vec![OutPoint { tx: 1, index: 0 }],
            outputs: vec![],
        };
        let rejected = ledger.validate(&replay).is_err();
        prop_assert!(rejected);
    }

    #[test]
    fn selfish_shares_are_probabilities(alpha in 0.01f64..0.49, gamma in 0.0f64..1.0) {
        let out = selfish::simulate(alpha, gamma, 20_000, 5);
        let share = out.attacker_share();
        prop_assert!((0.0..=1.0).contains(&share));
        prop_assert!((0.0..=1.0).contains(&out.orphan_rate()));
        // Closed form is monotone in gamma.
        let lo = selfish::closed_form(alpha, 0.0);
        let hi = selfish::closed_form(alpha, 1.0);
        prop_assert!(hi >= lo - 1e-12);
    }

    #[test]
    fn pastry_digits_and_prefixes_are_consistent(a in arb_key(), b in arb_key()) {
        let p = shared_prefix(&a, &b);
        prop_assert!(p <= DIGITS);
        for i in 0..p {
            prop_assert_eq!(digit(&a, i), digit(&b, i));
        }
        if p < DIGITS {
            prop_assert_ne!(digit(&a, p), digit(&b, p));
        }
        prop_assert_eq!(shared_prefix(&a, &b), shared_prefix(&b, &a));
        prop_assert_eq!(shared_prefix(&a, &a), DIGITS);
    }

    #[test]
    fn can_zone_splits_tile_and_neighbor(depth in 1usize..12, path in any::<u64>()) {
        // Walk a random split path; at every step the halves tile the
        // parent and abut each other.
        let mut zone = Zone::UNIT;
        for i in 0..depth {
            let (a, b) = zone.split();
            prop_assert!((a.area() + b.area() - zone.area()).abs() < 1e-12);
            prop_assert!(a.is_neighbor(&b));
            zone = if (path >> i) & 1 == 0 { a } else { b };
        }
        prop_assert!(zone.area() > 0.0);
        // The zone contains its own center.
        let center = [
            (zone.lo[0] + zone.hi[0]) / 2.0,
            (zone.lo[1] + zone.hi[1]) / 2.0,
        ];
        prop_assert!(zone.contains(&center));
        prop_assert_eq!(zone.distance(&center), 0.0);
    }

    #[test]
    fn fee_market_conserves_transactions(mult in 1.0f64..8.0, seed in any::<u64>()) {
        let cfg = FeeMarketConfig {
            viral_multiplier: mult,
            warmup_blocks: 20,
            viral_blocks: 40,
            cooldown_blocks: 20,
            ..FeeMarketConfig::default()
        };
        let r = simulate_congestion(&cfg, seed);
        for phase in [&r.before, &r.during, &r.after] {
            prop_assert_eq!(phase.mined + phase.failed, phase.submitted);
        }
        // Higher multipliers never *reduce* viral-phase failures
        // relative to a 1x run with the same seed.
        let calm = simulate_congestion(
            &FeeMarketConfig {
                viral_multiplier: 1.0,
                warmup_blocks: 20,
                viral_blocks: 40,
                cooldown_blocks: 20,
                ..FeeMarketConfig::default()
            },
            seed,
        );
        prop_assert!(r.during.failure_rate() >= calm.during.failure_rate() - 0.01);
    }

    #[test]
    fn pos_reversal_probability_is_valid(
        alpha in 0.05f64..0.45,
        rational in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let out = pos::simulate_pos_attack(
            &pos::PosAttack {
                attacker_stake: alpha,
                rational_fraction: rational,
                ..pos::PosAttack::default()
            },
            300,
            seed,
        );
        let p = out.reversal_probability();
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(out.reversals <= out.attempts);
    }

    #[test]
    fn zipf_pmf_sums_to_one(n in 1usize..2000, s in 0.0f64..3.0) {
        let z = decent::sim::dist::Zipf::new(n, s);
        let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Monotone non-increasing mass.
        for i in 1..n {
            prop_assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler equivalence: the timing wheel must dequeue exactly the heap's
// sequence under arbitrary interleavings of schedule / cancel / advance.
// ---------------------------------------------------------------------------

mod sched_equivalence {
    use decent::sim::engine::NetStats;
    use decent::sim::prelude::*;

    /// Interpreter shared by both property tests: each `u64` word encodes
    /// one operation, so plain `vec(any::<u64>())` drives rich op
    /// sequences with heavy duplicate-timestamp pressure.
    pub fn word_to_delay(word: u64) -> SimDuration {
        // Low byte selects the scale; the rest selects the offset. Small
        // moduli make exact collisions (same nanosecond) common.
        let payload = word >> 8;
        let nanos = match word & 0x7 {
            0 => 0,                             // immediate: same-time ties
            1 => payload % 4,                   // sub-tick jitter
            2 => payload % 2_000_000,           // < 2 ms
            3 => payload % 80_000_000,          // < 80 ms
            4 => payload % 10_000_000_000,      // < 10 s
            5 => payload % 1_000_000_000_000,   // < ~17 min (wheel horizon)
            _ => payload % 100_000_000_000_000, // ~28 h: overflow territory
        };
        SimDuration::from_nanos(nanos)
    }

    /// A node whose behavior depends on exact delivery order: it chains
    /// the history of everything it saw, so any reordering between
    /// schedulers changes the digest.
    #[derive(Default)]
    pub struct Probe {
        pub digest: u64,
        pub timer_count: u64,
    }

    impl Node for Probe {
        type Msg = u64;

        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Context<'_, u64>) {
            self.digest = self
                .digest
                .wrapping_mul(0x100000001b3)
                .wrapping_add(msg ^ from as u64 ^ ctx.now().as_nanos());
            // Re-arm a timer keyed off the message to deepen the trace.
            if msg & 0x3 == 0 {
                ctx.set_timer(super::sched_equivalence::word_to_delay(msg), msg);
            }
        }

        fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, u64>) {
            self.timer_count += 1;
            self.digest = self
                .digest
                .wrapping_mul(0x100000001b3)
                .wrapping_add(tag.wrapping_add(ctx.now().as_nanos()));
        }
    }

    /// Replays `words` as engine operations against scheduler `S` and
    /// returns the full observable outcome.
    pub fn replay<S: SchedulerFor<Probe>>(seed: u64, words: &[u64]) -> (u64, Vec<u64>, NetStats) {
        replay_net::<S>(seed, words, UniformLatency::from_millis(5.0, 50.0))
    }

    /// [`replay`] against an explicit network model — the lever for
    /// proving two models observationally identical (delivery times,
    /// drop accounting, *and* RNG stream, since any extra draw shifts
    /// every later delay and therefore the digests).
    pub fn replay_net<S: SchedulerFor<Probe>>(
        seed: u64,
        words: &[u64],
        net: impl NetworkModel + 'static,
    ) -> (u64, Vec<u64>, NetStats) {
        let mut sim: Simulation<Probe, S> = Simulation::with_scheduler(seed, net);
        let ids: Vec<NodeId> = (0..8).map(|_| sim.add_node(Probe::default())).collect();
        for &word in words {
            let node = ids[(word >> 3) as usize % ids.len()];
            match word & 0x7 {
                // Inject a message (duplicate timestamps are common).
                0..=2 => sim.inject(node, word, word_to_delay(word >> 3)),
                // Set a timer through a live handler.
                3..=4 => sim.invoke(node, |_n, ctx| {
                    ctx.set_timer(word_to_delay(word >> 3), word)
                }),
                // Cancel pending timers by bouncing the node offline
                // (epoch bump drops them), then bring it back.
                5 => {
                    sim.schedule_stop(node, sim.now() + word_to_delay(word >> 3));
                    sim.schedule_start(
                        node,
                        sim.now() + word_to_delay(word >> 3) + SimDuration::from_secs(1.0),
                    );
                }
                // Advance simulated time.
                _ => {
                    let deadline = sim.now() + word_to_delay(word >> 3);
                    sim.run_until(deadline);
                }
            }
        }
        sim.run_until(sim.now() + SimDuration::from_secs(300.0));
        let digests = ids.iter().map(|&id| sim.node(id).digest).collect();
        (sim.events_processed(), digests, sim.stats().clone())
    }
}

proptest! {
    #[test]
    fn wheel_and_heap_dequeue_identical_sequences(
        times in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        // Pure scheduler level: schedule/pop interleavings, then drain.
        use decent::sim::prelude::*;
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let mut heap: BinaryHeapScheduler<u64> = BinaryHeapScheduler::new();
        let mut now = 0u64;
        for (seq, &word) in times.iter().enumerate() {
            let seq = seq as u64;
            if word & 0xF == 0xF && !wheel.is_empty() {
                prop_assert_eq!(wheel.next_time(), heap.next_time());
                let a = wheel.pop();
                let b = heap.pop();
                prop_assert_eq!(&a, &b);
                now = a.expect("non-empty").0.as_nanos();
            } else {
                let t = SimTime::from_nanos(
                    now + sched_equivalence::word_to_delay(word).as_nanos(),
                );
                wheel.schedule(t, seq, seq);
                heap.schedule(t, seq, seq);
            }
        }
        loop {
            prop_assert_eq!(wheel.next_time(), heap.next_time());
            let a = wheel.pop();
            let b = heap.pop();
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty() && heap.is_empty());
    }

    #[test]
    fn engine_traces_are_scheduler_independent(
        seed in any::<u64>(),
        words in proptest::collection::vec(any::<u64>(), 0..120),
    ) {
        use decent::sim::prelude::*;
        use sched_equivalence::replay;
        let wheel = replay::<TimingWheel<EngineEvent<u64>>>(seed, &words);
        let heap = replay::<BinaryHeapScheduler<EngineEvent<u64>>>(seed, &words);
        prop_assert_eq!(wheel, heap);
    }

    // `Faulty<M>` with an empty `FaultPlan` must be observationally
    // identical to bare `M`: same delivery times, same drop accounting,
    // and — critically — the same RNG stream. A single stray draw in
    // the no-fault fast path would shift every subsequent uniform
    // delay and change the digests, so equality here pins the
    // "zero-overhead when inactive" contract under both schedulers.
    #[test]
    fn empty_fault_plan_is_observationally_inert(
        seed in any::<u64>(),
        words in proptest::collection::vec(any::<u64>(), 0..120),
    ) {
        use decent::sim::prelude::*;
        use sched_equivalence::replay_net;
        let bare = || UniformLatency::from_millis(5.0, 50.0);
        let faulty = || Faulty::new(bare(), FaultPlan::new());
        let w_bare = replay_net::<TimingWheel<EngineEvent<u64>>>(seed, &words, bare());
        let w_faulty = replay_net::<TimingWheel<EngineEvent<u64>>>(seed, &words, faulty());
        prop_assert_eq!(&w_bare, &w_faulty);
        let h_bare = replay_net::<BinaryHeapScheduler<EngineEvent<u64>>>(seed, &words, bare());
        let h_faulty =
            replay_net::<BinaryHeapScheduler<EngineEvent<u64>>>(seed, &words, faulty());
        prop_assert_eq!(&h_bare, &h_faulty);
        prop_assert_eq!(&w_bare, &h_bare);
    }
}

proptest! {
    // Each case runs a full (cheap) experiment twice, so keep the case
    // count far below the default 256.
    #![proptest_config(ProptestConfig::with_cases(6))]

    // A one-point sweep must be the identity harness: build the
    // scenario, "set" the swept parameter to a grid holding only its
    // current value, derive point seed 0 (== the base seed), run. If
    // any of those steps perturbed the config or an RNG stream, the
    // rendered report would differ from a plain `run_seeded` call.
    // Cheap experiments only (the same trio the run-report tests
    // use); the property is about the harness, not the workload.
    #[test]
    fn one_point_sweep_reproduces_a_plain_run(
        which in 0usize..3,
        pick in any::<usize>(),
        seed in proptest::option::of(any::<u64>()),
    ) {
        use decent::core::sensitivity::{run_sweep, SweepSpec};
        use decent::core::{experiments, scenario};
        const CHEAP: [&str; 3] = ["E10", "E16", "E18"];
        let id = CHEAP[which];
        let probe = scenario::build(id, true).expect("registered id");
        let params = probe.params();
        let param = &params[pick % params.len()];
        let v = probe.get_param(param.name).expect("declared param");
        let spec = SweepSpec {
            exp: id.to_string(),
            param: param.name.to_string(),
            lo: v,
            hi: v,
            steps: 1,
        };
        let sweep = run_sweep(&spec, true, seed, 1).expect("valid sweep");
        let direct = experiments::run_seeded(id, true, seed).expect("registered id");
        prop_assert_eq!(sweep.points.len(), 1);
        prop_assert_eq!(sweep.points[0].applied, v);
        prop_assert_eq!(
            sweep.points[0].report.to_string(),
            direct.to_string(),
            "one-point sweep of {}:{} diverged from the plain run",
            id,
            param.name
        );
    }
}
