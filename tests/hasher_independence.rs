//! Hasher independence: `std::collections::HashMap` seeds a fresh
//! `RandomState` per instance, so two runs of the same experiment in
//! one process traverse any hash-ordered collection differently. If a
//! hash iteration order leaked into results, the runs below would
//! diverge — this is the dynamic counterpart of the static D001 rule
//! (`decent-lint`, DESIGN.md §4e).

use decent::core::experiments::run_report;
use decent::sim::json::Json;

/// One Kademlia-backed experiment (E1 exercises `decent-overlay`'s
/// routing tables and lookup maps) and one edge-backed experiment (E13
/// exercises `decent-edge`'s pending-reply and cursor maps), each run
/// twice in-process with identical seeds. Every HashMap instance built
/// during the second run carries a different hasher state than its
/// first-run counterpart, so any order-sensitive iteration would show
/// up as a byte diff in the canonical JSON.
#[test]
fn repeated_runs_are_hasher_independent() {
    for id in ["E1", "E13"] {
        let first = run_report(&[id], true, None, 1).to_json_text();
        let second = run_report(&[id], true, None, 1).to_json_text();
        assert_eq!(
            first, second,
            "{id}: byte diff between in-process repeats — a hash-ordered \
             collection is leaking iteration order into the report"
        );
    }
}

/// The canonical run-report JSON must not carry a wall-clock field —
/// `wall_ms` is harness telemetry, measured behind a `decent-lint:
/// allow(D002)` pragma and deliberately excluded from serialization so
/// reports stay byte-comparable across machines.
#[test]
fn canonical_report_has_no_wall_clock_field() {
    let run = run_report(&["E10"], true, None, 1);
    assert!(
        run.runs[0].wall_ms >= 0.0,
        "harness still measures wall time"
    );
    let text = run.to_json_text();
    assert!(
        !text.contains("wall"),
        "wall-clock leaked into canonical JSON"
    );
    // Defense in depth: no key anywhere in the document mentions time
    // in milliseconds either.
    fn keys(j: &Json, out: &mut Vec<String>) {
        match j {
            Json::Obj(pairs) => {
                for (k, v) in pairs {
                    out.push(k.clone());
                    keys(v, out);
                }
            }
            Json::Arr(items) => {
                for v in items {
                    keys(v, out);
                }
            }
            _ => {}
        }
    }
    let mut all = Vec::new();
    keys(&Json::parse(&text).expect("report parses"), &mut all);
    assert!(
        all.iter()
            .all(|k| !k.contains("wall") && !k.ends_with("_ms")),
        "wall-clock-shaped key in canonical report"
    );
}
