//! Every simulator in the workspace must be bit-for-bit reproducible:
//! the same seed yields the same trace, and different seeds diverge.
//! Reproducibility also spans schedulers — a heap-backed and a
//! wheel-backed run of the same seed must produce identical traces.

use decent::bft::pbft::{saturation_run, PbftConfig};
use decent::chain::economics::{Market, MarketConfig};
use decent::chain::node::{build_network as build_chain, report, NetworkConfig};
use decent::chain::selfish;
use decent::edge::service::{run_workload, EdgeConfig, Strategy};
use decent::overlay::id::Key;
use decent::overlay::kademlia::{build_network as build_kad, KadConfig};
use decent::overlay::swarm::{SwarmConfig, SwarmSim};
use decent::sim::prelude::*;

fn kad_trace_on<S: SchedulerFor<decent::overlay::kademlia::KadNode>>(
    seed: u64,
) -> (u64, Vec<usize>) {
    let mut sim: Simulation<decent::overlay::kademlia::KadNode, S> =
        Simulation::with_scheduler(seed, UniformLatency::from_millis(20.0, 80.0));
    let ids = build_kad(&mut sim, 200, &KadConfig::default(), 0.3, 8, seed ^ 1);
    sim.run_until(SimTime::from_secs(1.0));
    for i in 0..20u64 {
        let origin = ids[(i as usize * 7) % ids.len()];
        sim.invoke(origin, |n, ctx| {
            n.start_lookup(Key::from_u64(i), false, ctx);
        });
    }
    sim.run_until(SimTime::from_secs(120.0));
    let rpcs: Vec<usize> = ids
        .iter()
        .flat_map(|&id| sim.node(id).results.iter().map(|r| r.rpcs))
        .collect();
    (sim.events_processed(), rpcs)
}

fn kad_trace(seed: u64) -> (u64, Vec<usize>) {
    kad_trace_on::<TimingWheel<EngineEvent<decent::overlay::kademlia::KadMsg>>>(seed)
}

#[test]
fn kademlia_is_deterministic() {
    assert_eq!(kad_trace(11), kad_trace(11));
    assert_ne!(kad_trace(11), kad_trace(12));
}

#[test]
fn kademlia_trace_is_scheduler_independent() {
    assert_eq!(
        kad_trace_on::<TimingWheel<EngineEvent<decent::overlay::kademlia::KadMsg>>>(11),
        kad_trace_on::<BinaryHeapScheduler<EngineEvent<decent::overlay::kademlia::KadMsg>>>(11),
    );
}

fn chain_trace_on<S: SchedulerFor<decent::chain::node::ChainNode>>(seed: u64) -> (u64, u64, f64) {
    let mut sim: Simulation<decent::chain::node::ChainNode, S> =
        Simulation::with_scheduler(seed, ConstantLatency::from_millis(80.0));
    let ids = build_chain(&mut sim, &NetworkConfig::default(), seed ^ 1);
    sim.run_until(SimTime::from_hours(4.0));
    let r = report(&sim, ids[0]);
    (sim.events_processed(), r.height, r.tps)
}

fn chain_trace(seed: u64) -> (u64, u64, f64) {
    chain_trace_on::<TimingWheel<EngineEvent<decent::chain::node::ChainMsg>>>(seed)
}

#[test]
fn blockchain_is_deterministic() {
    assert_eq!(chain_trace(21), chain_trace(21));
    assert_ne!(chain_trace(21).0, chain_trace(22).0);
}

#[test]
fn blockchain_trace_is_scheduler_independent() {
    assert_eq!(
        chain_trace_on::<TimingWheel<EngineEvent<decent::chain::node::ChainMsg>>>(21),
        chain_trace_on::<BinaryHeapScheduler<EngineEvent<decent::chain::node::ChainMsg>>>(21),
    );
}

#[test]
fn pbft_is_deterministic() {
    let cfg = PbftConfig::default();
    let a = saturation_run(&cfg, 50_000, SimDuration::from_secs(1.0), 31);
    let b = saturation_run(&cfg, 50_000, SimDuration::from_secs(1.0), 31);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}

#[test]
fn market_and_swarm_and_selfish_are_deterministic() {
    let m1 = Market::new(MarketConfig::default(), 41).run();
    let m2 = Market::new(MarketConfig::default(), 41).run();
    assert_eq!(m1, m2);

    let mk = |seed| SwarmSim::with_population(SwarmConfig::default(), 80, 0.3, 2, seed).run(2000);
    assert_eq!(mk(42), mk(42));

    assert_eq!(
        selfish::simulate(0.35, 0.5, 200_000, 43),
        selfish::simulate(0.35, 0.5, 200_000, 43)
    );
}

#[test]
fn edge_workload_is_deterministic() {
    let cfg = EdgeConfig {
        strategy: Strategy::EdgeCentric,
        devices_per_region: 30,
        ..EdgeConfig::default()
    };
    let (mut a, wan_a, loc_a) = run_workload(&cfg, 2, 51);
    let (mut b, wan_b, loc_b) = run_workload(&cfg, 2, 51);
    assert_eq!(a.summary(), b.summary());
    assert_eq!(wan_a, wan_b);
    assert_eq!(loc_a, loc_b);
}

#[test]
fn experiment_reports_are_deterministic() {
    // A cheap experiment, run twice end to end.
    let a = decent::core::experiments::run_by_id("E10", true).unwrap();
    let b = decent::core::experiments::run_by_id("E10", true).unwrap();
    assert_eq!(a, b);
}
