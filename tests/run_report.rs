//! Run-report integration: the machine-readable JSON report is
//! deterministic (serial == parallel, byte for byte), round-trips
//! through the parser, and the claim-regression diff catches verdict
//! flips the way the CI gate relies on.

use decent::core::experiments::run_report;
use decent::core::report::{diff_verdicts, verdicts_from_json, BASELINE_SCHEMA, RUN_REPORT_SCHEMA};
use decent::sim::json::Json;

/// A cheap but representative slice of the registry: E10 is closed-form
/// (no simulation), E16 and E18 run Monte Carlo / fee-market sims.
const FAST_IDS: [&str; 3] = ["E10", "E16", "E18"];

/// The tentpole determinism property: fanning experiments across a
/// thread pool must not change a single byte of the canonical report.
#[test]
fn serial_and_parallel_reports_are_byte_identical() {
    let serial = run_report(&FAST_IDS, true, None, 1);
    let parallel = run_report(&FAST_IDS, true, None, 4);
    assert_eq!(serial.to_json_text(), parallel.to_json_text());
    // The structured values agree too, not just the serialization.
    assert_eq!(serial.verdicts(), parallel.verdicts());
}

/// A seed override changes the measurement streams but not determinism.
#[test]
fn seed_override_is_deterministic_and_recorded() {
    let a = run_report(&["E16"], true, Some(42), 2);
    let b = run_report(&["E16"], true, Some(42), 1);
    assert_eq!(a.to_json_text(), b.to_json_text());
    let doc = a.to_json();
    let exp = &doc.get("experiments").unwrap().as_arr().unwrap()[0];
    assert_eq!(exp.get("seed").and_then(Json::as_num), Some(42.0));
}

/// Schema shape: every experiment entry carries id, title, seed,
/// claims (with id/measured/value/threshold/holds), tables, metrics —
/// and the whole document round-trips through the parser.
#[test]
fn report_json_has_the_documented_shape_and_round_trips() {
    let run = run_report(&FAST_IDS, true, None, 2);
    let text = run.to_json_text();
    let doc = Json::parse(&text).expect("report parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(RUN_REPORT_SCHEMA)
    );
    assert_eq!(doc.get("mode").and_then(Json::as_str), Some("quick"));
    let exps = doc.get("experiments").unwrap().as_arr().unwrap();
    assert_eq!(exps.len(), FAST_IDS.len());
    for (exp, id) in exps.iter().zip(FAST_IDS) {
        assert_eq!(exp.get("id").and_then(Json::as_str), Some(id));
        assert!(exp.get("title").and_then(Json::as_str).is_some());
        assert_eq!(exp.get("seed"), Some(&Json::Null));
        for claim in exp.get("claims").unwrap().as_arr().unwrap() {
            let cid = claim.get("id").and_then(Json::as_str).expect("claim id");
            assert!(cid.starts_with(&format!("{id}.")), "{cid} not under {id}");
            assert!(claim.get("measured").and_then(Json::as_str).is_some());
            assert!(claim.get("value").and_then(Json::as_num).is_some());
            let threshold = claim.get("threshold").expect("threshold");
            assert!(threshold.get("op").and_then(Json::as_str).is_some());
            assert!(claim.get("holds").and_then(Json::as_bool).is_some());
        }
        assert!(exp.get("tables").unwrap().as_arr().is_some());
        assert!(exp.get("metrics").is_some());
    }
    let summary = doc.get("summary").expect("summary");
    assert_eq!(
        summary.get("experiments").and_then(Json::as_num),
        Some(FAST_IDS.len() as f64)
    );
    let claims = summary.get("claims").and_then(Json::as_num).unwrap();
    assert_eq!(claims as usize, run.total_claims());
    // Wall-clock never leaks into the canonical document.
    assert!(!text.contains("wall"));
}

/// Engine metrics reach the per-experiment report: simulation-backed
/// experiments expose non-zero event counters.
#[test]
fn simulation_experiments_carry_engine_metrics() {
    let run = run_report(&["E5"], true, None, 1);
    let metrics = &run.runs[0].report.metrics;
    assert!(
        metrics.counter("events_fired") > 0,
        "E5 runs Kademlia lookups; its report should carry engine metrics"
    );
    assert!(metrics.counter("messages_sent") > 0);
}

/// The regression gate's failure mode, demonstrated end to end: flip
/// one committed verdict and the diff must name exactly that claim.
#[test]
fn baseline_diff_catches_an_artificially_flipped_verdict() {
    let run = run_report(&FAST_IDS, true, None, 2);
    let baseline_doc = run.baseline_json();
    assert_eq!(
        baseline_doc.get("schema").and_then(Json::as_str),
        Some(BASELINE_SCHEMA)
    );
    // Pristine baseline: gate passes.
    let baseline = verdicts_from_json(&baseline_doc).expect("baseline parses");
    assert!(diff_verdicts(&run.verdicts(), &baseline).is_empty());

    // Flip one verdict in the committed file, as a regression would.
    let mut flipped = baseline.clone();
    flipped[0].holds = !flipped[0].holds;
    let lines = diff_verdicts(&run.verdicts(), &flipped);
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(lines[0].contains("verdict flip"), "{lines:?}");
    assert!(lines[0].contains(&flipped[0].id), "{lines:?}");

    // Remove a claim from the run (simulating a deleted check): the
    // gate reports it as missing rather than silently passing.
    let truncated = &run.verdicts()[1..];
    let lines = diff_verdicts(truncated, &baseline);
    assert!(
        lines.iter().any(|l| l.contains("missing claim")),
        "{lines:?}"
    );

    // A brand-new claim absent from the baseline also fails the gate.
    let mut extended = run.verdicts();
    extended.push(decent::core::report::ClaimVerdict {
        id: "E99.new-check".to_string(),
        holds: true,
    });
    let lines = diff_verdicts(&extended, &baseline);
    assert!(
        lines.iter().any(|l| l.contains("unknown claim")),
        "{lines:?}"
    );
}

/// Baseline text written by one run parses back to the same verdicts
/// (what `--write-baseline` then `--baseline` does across CI runs).
#[test]
fn baseline_round_trips_through_disk_format() {
    let run = run_report(&["E10"], true, None, 1);
    let text = run.baseline_json().to_string_pretty();
    let reparsed = verdicts_from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(reparsed, run.verdicts());
}
