//! The paper's closing vision (Section V), run end to end: an
//! edge-centric federation whose trust lives in permissioned
//! blockchain islands, with cross-island interoperability — and the
//! permissionless alternative losing on every axis it is compared on.

use decent::bft::bridge::{atomic_transfer, atomicity_holds, build_islands, TransferOutcome};
use decent::bft::ledger::{build_network as build_fabric, Channel, FabricConfig};
use decent::edge::service::{run_workload, EdgeConfig, Strategy};
use decent::sim::prelude::*;

/// A vertical island (paper §V-A): the healthcare value chain shares a
/// channel; every stakeholder ends with an identical ledger and no
/// third party saw the data.
#[test]
fn a_health_island_serves_its_value_chain() {
    let cfg = FabricConfig {
        orgs: 5, // hospital, pharmacy, lab, payer, regulator
        peers_per_org: 2,
        endorsement_policy: 3,
        ..FabricConfig::default()
    };
    let channels = vec![
        Channel {
            id: 1,
            orgs: vec![0, 1, 2, 3, 4],
        },
        Channel {
            id: 2,
            orgs: vec![0, 2], // hospital <-> lab results
        },
    ];
    let mut sim = Simulation::new(7, LanNet::datacenter());
    let net = build_fabric(&mut sim, &cfg, &channels);
    sim.run_until(SimTime::from_secs(0.01));
    let gw = net.gateway(1);
    for record in 0..200 {
        sim.invoke(gw, |n, ctx| n.submit(record, 1, ctx));
    }
    let lab_gw = net.gateway(2);
    for result in 0..40 {
        sim.invoke(lab_gw, |n, ctx| n.submit(1 << 32 | result, 2, ctx));
    }
    sim.run_until(SimTime::from_secs(20.0));
    // Every value-chain member holds the shared record ledger...
    let reference: Vec<u64> = sim
        .node(net.channel_peers(1)[0])
        .committed()
        .iter()
        .filter(|c| c.channel == 1)
        .map(|c| c.tx_id)
        .collect();
    assert_eq!(reference.len(), 200);
    for &p in &net.channel_peers(1) {
        let theirs: Vec<u64> = sim
            .node(p)
            .committed()
            .iter()
            .filter(|c| c.channel == 1)
            .map(|c| c.tx_id)
            .collect();
        assert_eq!(theirs, reference, "all stakeholders share one ledger");
    }
    // ...while lab results stay between hospital and lab.
    for org in [1usize, 3, 4] {
        for &p in &net.peers[org] {
            assert!(
                sim.node(p).committed().iter().all(|c| c.channel != 2),
                "org {org} must not see the bilateral channel"
            );
        }
    }
}

/// Edge-centric placement with chain-anchored trust beats the
/// centralized deployment for the same device population, and the two
/// islands interoperate atomically — the full Fig. 1 story.
#[test]
fn the_federation_beats_the_centralized_cloud_and_interoperates() {
    // 1. Latency and control: same devices, two architectures.
    let mut edge_cfg = EdgeConfig {
        strategy: Strategy::EdgeCentric,
        devices_per_region: 60,
        ..EdgeConfig::default()
    };
    let (mut edge_lat, edge_wan, edge_local) = run_workload(&edge_cfg, 3, 11);
    edge_cfg.strategy = Strategy::CentralizedCloud;
    let (mut cloud_lat, cloud_wan, _) = run_workload(&edge_cfg, 3, 11);
    assert!(edge_lat.percentile(0.5) * 3.0 < cloud_lat.percentile(0.5));
    assert!(edge_local > 0.95);
    assert!(cloud_wan > 5 * edge_wan.max(1));

    // 2. Interoperability: two islands, atomic settlement between them.
    let mut sim = Simulation::new(12, LanNet::datacenter());
    let bridge = build_islands(
        &mut sim,
        &FabricConfig::default(),
        &FabricConfig {
            orgs: 3,
            ..FabricConfig::default()
        },
    );
    sim.run_until(SimTime::from_secs(0.01));
    let mut settled = 0;
    for t in 0..8 {
        if atomic_transfer(&mut sim, &bridge, t, SimDuration::from_secs(10.0)).0
            == TransferOutcome::Completed
        {
            settled += 1;
        }
    }
    assert_eq!(settled, 8, "healthy islands settle everything");
    assert!(atomicity_holds(&sim, &bridge, 0..8));
}
