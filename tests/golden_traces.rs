//! Golden-trace regression tests.
//!
//! Every value pinned here was captured from a quick-scale run and must
//! never drift: the engine is deterministic by contract, so any change in
//! these numbers means the event ordering, the RNG streams, or a model
//! changed — all of which invalidate recorded experiment results. The
//! engine-level traces run on both schedulers to pin the cross-scheduler
//! equivalence guarantee, not just internal consistency.

use decent_chain::node::{build_network as chain_build, report as chain_report, NetworkConfig};
use decent_core::experiments;
use decent_core::scenario::ExecPolicy;
use decent_overlay::id::Key;
use decent_overlay::kademlia::{build_network as kad_build, KadConfig};
use decent_sim::prelude::*;

/// FNV-1a over the rendered markdown: one number that pins the entire
/// report (tables, formatting, findings) without storing the text.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn assert_findings(id: &str, expected: &[(&str, &str)], md_fnv: u64, md_len: usize) {
    assert_findings_exec(id, ExecPolicy::serial(), expected, md_fnv, md_len);
}

fn assert_findings_exec(
    id: &str,
    exec: ExecPolicy,
    expected: &[(&str, &str)],
    md_fnv: u64,
    md_len: usize,
) {
    let rep = experiments::run_seeded_exec(id, true, None, exec).expect("known experiment id");
    let got: Vec<(String, String)> = rep
        .findings
        .iter()
        .map(|f| (f.name.clone(), f.measured.clone()))
        .collect();
    let want: Vec<(String, String)> = expected
        .iter()
        .map(|(n, m)| (n.to_string(), m.to_string()))
        .collect();
    assert_eq!(got, want, "{id}: headline findings drifted");
    assert!(
        rep.findings.iter().all(|f| f.holds),
        "{id}: a paper claim stopped holding at quick scale"
    );
    let md = rep.to_markdown();
    assert_eq!(
        (fnv(&md), md.len()),
        (md_fnv, md_len),
        "{id}: report markdown drifted"
    );
}

#[test]
fn e1_quick_golden() {
    assert_findings(
        "E1",
        &[
            ("KAD is fast", "99.2% of KAD lookups ≤ 5 s"),
            (
                "Mainline is an order of magnitude slower",
                "medians: KAD 2.021s vs Mainline 71.7s",
            ),
        ],
        0x7e38_a49a_5095_ccc7,
        661,
    );
}

/// E1 replayed on the sharded executor must reproduce the serial pins
/// byte-for-byte: same findings, same markdown hash, same length. This
/// is the report-level golden for the `--shards` path.
#[test]
fn e1_quick_golden_sharded() {
    assert_findings_exec(
        "E1",
        ExecPolicy::sharded(4),
        &[
            ("KAD is fast", "99.2% of KAD lookups \u{2264} 5 s"),
            (
                "Mainline is an order of magnitude slower",
                "medians: KAD 2.021s vs Mainline 71.7s",
            ),
        ],
        0x7e38_a49a_5095_ccc7,
        661,
    );
}

#[test]
fn e7_quick_golden() {
    assert_findings(
        "E7",
        &[
            ("Bitcoin lands in the 3.3-7 tx/s band", "3.056 tx/s"),
            ("Ethereum lands around 15 tx/s", "14.7 tx/s"),
            (
                "partitioned cloud is three orders of magnitude faster",
                "19.2k tx/s, 6.3kx Bitcoin",
            ),
        ],
        0x10ce_ed46_0316_9d5f,
        938,
    );
}

#[test]
fn e12_quick_golden() {
    assert_findings(
        "E12",
        &[
            (
                "BFT throughput falls with committee size",
                "80.9k tx/s at n=4 -> 3.8k tx/s at n=64",
            ),
            (
                "even a large committee crushes PoW throughput",
                "PBFT n=64: 3.8k tx/s vs PoW 3.611 tx/s (1.1kx)",
            ),
            (
                "commit latency: milliseconds vs an hour",
                "PBFT p50 in milliseconds; PoW needs ~6 blocks (~1 h) for confidence",
            ),
        ],
        0x36aa_e786_811a_6fd4,
        1039,
    );
}

/// Kademlia network build + 50 lookups: event count and network counters
/// pinned, identical on both schedulers.
#[test]
fn kad_engine_golden_on_both_schedulers() {
    fn run<S: SchedulerFor<decent_overlay::kademlia::KadNode>>() -> (u64, u64, u64) {
        let mut sim: Simulation<decent_overlay::kademlia::KadNode, S> =
            Simulation::with_scheduler(42, UniformLatency::from_millis(20.0, 80.0));
        let ids = kad_build(&mut sim, 200, &KadConfig::default(), 0.1, 8, 7);
        sim.run_until(SimTime::from_secs(1.0));
        for i in 0..50u64 {
            let origin = ids[(i as usize * 13) % ids.len()];
            sim.invoke(origin, |n, ctx| {
                n.start_lookup(Key::from_u64(i), false, ctx)
            });
        }
        sim.run_until(SimTime::from_secs(120.0));
        (
            sim.events_processed(),
            sim.stats().sent,
            sim.stats().delivered,
        )
    }
    let golden = (3784, 2347, 2347);
    assert_eq!(
        run::<TimingWheel<EngineEvent<decent_overlay::kademlia::KadMsg>>>(),
        golden,
        "wheel-backed kad trace drifted"
    );
    assert_eq!(
        run::<BinaryHeapScheduler<EngineEvent<decent_overlay::kademlia::KadMsg>>>(),
        golden,
        "heap-backed kad trace drifted"
    );
}

/// A scripted partition-heal cycle over the Kademlia workload: the
/// `Faulty` wrapper's drop/degrade accounting and the engine trace are
/// pinned, identical on both schedulers. Any drift in these numbers
/// means fault activation ordering, the partition drop rule, or the
/// degradation RNG discipline changed.
#[test]
fn faulty_partition_heal_golden_on_both_schedulers() {
    let wheel =
        faulty_partition_heal::<TimingWheel<EngineEvent<decent_overlay::kademlia::KadMsg>>>(1);
    let heap = faulty_partition_heal::<
        BinaryHeapScheduler<EngineEvent<decent_overlay::kademlia::KadMsg>>,
    >(1);
    assert_eq!(wheel, heap, "schedulers diverged under fault injection");
    assert_eq!(wheel, FAULTY_GOLDEN, "faulty partition-heal trace drifted");
}

/// The same partition-heal cycle replayed on the sharded executor
/// (4 shards, both schedulers) must land on the identical pinned
/// tuple: same event count, same drop/degrade accounting. This is the
/// engine-level golden for the windowed parallel path under faults —
/// the `Faulty` wrapper's lookahead shrinks the window during the
/// degrade phase, so this exercises dynamic window-width changes too.
#[test]
fn faulty_partition_heal_golden_sharded() {
    assert_eq!(
        faulty_partition_heal::<TimingWheel<EngineEvent<decent_overlay::kademlia::KadMsg>>>(4),
        FAULTY_GOLDEN,
        "wheel-backed sharded faulty trace drifted from the serial pin"
    );
    assert_eq!(
        faulty_partition_heal::<BinaryHeapScheduler<EngineEvent<decent_overlay::kademlia::KadMsg>>>(
            4
        ),
        FAULTY_GOLDEN,
        "heap-backed sharded faulty trace drifted from the serial pin"
    );
}

const FAULTY_GOLDEN: (u64, u64, u64, u64, u64, u64) = (7040, 4750, 4005, 651, 94, 1354);

fn faulty_partition_heal<S: SchedulerFor<decent_overlay::kademlia::KadNode> + Send>(
    shards: usize,
) -> (u64, u64, u64, u64, u64, u64) {
    {
        let plan = FaultPlan::new()
            .partition(
                SimTime::from_secs(10.0),
                SimTime::from_secs(40.0),
                (100..200).collect(),
            )
            .degrade(
                SimTime::from_secs(50.0),
                SimTime::from_secs(70.0),
                LinkSet::All,
                3.0,
                0.05,
            );
        let mut sim: Simulation<decent_overlay::kademlia::KadNode, S> = Simulation::with_scheduler(
            42,
            Faulty::new(UniformLatency::from_millis(20.0, 80.0), plan),
        );
        sim.set_shards(shards);
        let ids = kad_build(&mut sim, 200, &KadConfig::default(), 0.1, 8, 7);
        sim.run_until(SimTime::from_secs(1.0));
        // Three lookup waves: pre-partition, mid-partition (majority
        // origins), and inside the degradation window.
        for (wave, t) in [(0u64, 2.0), (1, 15.0), (2, 55.0)] {
            sim.run_until(SimTime::from_secs(t));
            for i in 0..30u64 {
                let origin = ids[(i as usize * 13) % 100];
                sim.invoke(origin, |n, ctx| {
                    n.start_lookup(Key::from_u64(wave * 1000 + i), false, ctx)
                });
            }
        }
        sim.run_until(SimTime::from_secs(120.0));
        let m = sim.metrics_snapshot();
        (
            sim.events_processed(),
            sim.stats().sent,
            sim.stats().delivered,
            m.counter("msgs_dropped_partition"),
            m.counter("msgs_dropped_degraded"),
            m.counter("msgs_delayed_degraded"),
        )
    }
}

/// Two simulated hours of a 40-node PoW chain: event count, height, and
/// throughput pinned, identical on both schedulers.
#[test]
fn chain_engine_golden_on_both_schedulers() {
    fn run<S: SchedulerFor<decent_chain::node::ChainNode>>() -> (u64, u64, f64) {
        let cfg = NetworkConfig {
            nodes: 40,
            ..NetworkConfig::default()
        };
        let mut sim: Simulation<decent_chain::node::ChainNode, S> =
            Simulation::with_scheduler(11, UniformLatency::from_millis(30.0, 120.0));
        let ids = chain_build(&mut sim, &cfg, 23);
        sim.run_until(SimTime::from_secs(2.0 * 3600.0));
        let rep = chain_report(&sim, ids[0]);
        (sim.events_processed(), rep.height, rep.tps)
    }
    let wheel = run::<TimingWheel<EngineEvent<decent_chain::node::ChainMsg>>>();
    let heap = run::<BinaryHeapScheduler<EngineEvent<decent_chain::node::ChainMsg>>>();
    assert_eq!(wheel, heap, "schedulers diverged on the chain workload");
    assert_eq!((wheel.0, wheel.1), (10980, 13), "chain trace drifted");
    assert!(
        (wheel.2 - 3.6111).abs() < 1e-3,
        "chain tps drifted: {}",
        wheel.2
    );
}
