//! The 160-bit identifier space shared by structured overlays.
//!
//! Kademlia interprets [`Key`]s under the XOR metric; Chord interprets
//! them as points on a mod-2^160 ring. Both views are provided here.

use std::fmt;

use rand::Rng;

use decent_sim::rng::SimRng;

/// Number of bits in an overlay identifier.
pub const KEY_BITS: usize = 160;
const KEY_BYTES: usize = KEY_BITS / 8;

/// A 160-bit overlay identifier (node id or content key).
///
/// # Examples
///
/// ```
/// use decent_overlay::id::Key;
///
/// let a = Key::from_u64(1);
/// let b = Key::from_u64(2);
/// assert_ne!(a, b);
/// assert_eq!(a.xor_distance(&b).leading_zeros(), a.xor_distance(&b).leading_zeros());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key([u8; KEY_BYTES]);

impl Key {
    /// The all-zero key.
    pub const ZERO: Key = Key([0; KEY_BYTES]);
    /// The all-ones key (maximum value).
    pub const MAX: Key = Key([0xFF; KEY_BYTES]);

    /// Creates a key from raw bytes.
    pub const fn from_bytes(bytes: [u8; KEY_BYTES]) -> Self {
        Key(bytes)
    }

    /// The raw bytes, most-significant first.
    pub const fn as_bytes(&self) -> &[u8; KEY_BYTES] {
        &self.0
    }

    /// Derives a key from a `u64` by mixing it through SplitMix64 five
    /// times (a stand-in for a cryptographic hash; uniform and stable).
    pub fn from_u64(x: u64) -> Self {
        let mut bytes = [0u8; KEY_BYTES];
        let mut z = x ^ 0xA076_1D64_78BD_642F;
        for chunk in bytes.chunks_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut v = z;
            v = (v ^ (v >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            v = (v ^ (v >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            v ^= v >> 31;
            chunk.copy_from_slice(&v.to_be_bytes()[..chunk.len()]);
        }
        Key(bytes)
    }

    /// Draws a uniformly random key.
    pub fn random(rng: &mut SimRng) -> Self {
        let mut bytes = [0u8; KEY_BYTES];
        rng.fill(&mut bytes[..]);
        Key(bytes)
    }

    /// Draws a random key whose XOR distance from `self` has its highest
    /// set bit in bucket `bucket` (0 = farthest half of the keyspace,
    /// 159 = the two closest ids). Used for bucket refresh.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= KEY_BITS`.
    pub fn random_in_bucket(&self, bucket: usize, rng: &mut SimRng) -> Key {
        assert!(bucket < KEY_BITS);
        let mut k = Key::random(rng);
        // Force the prefix above `bucket` to match self and flip bit `bucket`.
        for i in 0..bucket {
            k.set_bit(i, self.bit(i));
        }
        k.set_bit(bucket, !self.bit(bucket));
        k
    }

    /// XOR distance to `other` (the Kademlia metric).
    pub fn xor_distance(&self, other: &Key) -> Distance {
        let mut d = [0u8; KEY_BYTES];
        for ((out, a), b) in d.iter_mut().zip(&self.0).zip(&other.0) {
            *out = a ^ b;
        }
        Distance(Key(d))
    }

    /// Bit `i` (0 is the most significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= KEY_BITS`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < KEY_BITS);
        (self.0[i / 8] >> (7 - i % 8)) & 1 == 1
    }

    fn set_bit(&mut self, i: usize, v: bool) {
        let mask = 1u8 << (7 - i % 8);
        if v {
            self.0[i / 8] |= mask;
        } else {
            self.0[i / 8] &= !mask;
        }
    }

    /// Number of leading zero bits.
    pub fn leading_zeros(&self) -> usize {
        for (i, &b) in self.0.iter().enumerate() {
            if b != 0 {
                return i * 8 + b.leading_zeros() as usize;
            }
        }
        KEY_BITS
    }

    /// `self + 2^exp (mod 2^160)` — the Chord finger-start computation.
    ///
    /// # Panics
    ///
    /// Panics if `exp >= KEY_BITS`.
    pub fn add_pow2(&self, exp: usize) -> Key {
        assert!(exp < KEY_BITS);
        let mut out = self.0;
        let bit_from_lsb = exp; // exp counts from the least-significant bit
        let mut byte = KEY_BYTES - 1 - bit_from_lsb / 8;
        let mut carry = 1u16 << (bit_from_lsb % 8);
        loop {
            let sum = out[byte] as u16 + carry;
            out[byte] = (sum & 0xFF) as u8;
            carry = sum >> 8;
            if carry == 0 || byte == 0 {
                break;
            }
            byte -= 1;
        }
        Key(out)
    }

    /// Whether `self` lies on the clockwise arc `(from, to]` of the ring
    /// (Chord's successor-interval test). When `from == to` the arc is the
    /// whole ring, so the answer is always true.
    pub fn in_arc(&self, from: &Key, to: &Key) -> bool {
        if from == to {
            return true;
        }
        if from < to {
            from < self && self <= to
        } else {
            self > from || self <= to
        }
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Key({:02x}{:02x}{:02x}{:02x}..)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "..")
    }
}

/// An XOR distance between two keys; ordered numerically.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Distance(Key);

impl Distance {
    /// The zero distance.
    pub const ZERO: Distance = Distance(Key::ZERO);

    /// Number of leading zero bits (the shared-prefix length).
    pub fn leading_zeros(&self) -> usize {
        self.0.leading_zeros()
    }

    /// The Kademlia bucket index for this distance: `KEY_BITS - 1 -
    /// leading_zeros`, or `None` for the zero distance (self).
    pub fn bucket(&self) -> Option<usize> {
        let lz = self.leading_zeros();
        (lz < KEY_BITS).then(|| KEY_BITS - 1 - lz)
    }

    /// The underlying key-typed value.
    pub fn as_key(&self) -> &Key {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decent_sim::rng::rng_from_seed;

    #[test]
    fn xor_metric_laws() {
        let mut rng = rng_from_seed(1);
        for _ in 0..200 {
            let a = Key::random(&mut rng);
            let b = Key::random(&mut rng);
            let c = Key::random(&mut rng);
            // Identity.
            assert_eq!(a.xor_distance(&a), Distance::ZERO);
            // Symmetry.
            assert_eq!(a.xor_distance(&b), b.xor_distance(&a));
            // XOR "triangle equality": d(a,c) <= d(a,b) XOR-combined d(b,c)
            // in the sense that XOR distances compose.
            let ab = a.xor_distance(&b);
            let bc = b.xor_distance(&c);
            let ac = a.xor_distance(&c);
            let combined = ab.as_key().xor_distance(bc.as_key());
            assert_eq!(*combined.as_key(), *ac.as_key());
        }
    }

    #[test]
    fn bits_roundtrip() {
        let mut rng = rng_from_seed(2);
        let k = Key::random(&mut rng);
        let mut k2 = Key::ZERO;
        for i in 0..KEY_BITS {
            k2.set_bit(i, k.bit(i));
        }
        assert_eq!(k, k2);
    }

    #[test]
    fn leading_zeros_and_buckets() {
        assert_eq!(Key::ZERO.leading_zeros(), KEY_BITS);
        assert_eq!(Key::MAX.leading_zeros(), 0);
        let mut one = [0u8; 20];
        one[19] = 1;
        let near = Key::from_bytes(one);
        let d = Key::ZERO.xor_distance(&near);
        assert_eq!(d.leading_zeros(), KEY_BITS - 1);
        assert_eq!(d.bucket(), Some(0));
        assert_eq!(Key::ZERO.xor_distance(&Key::ZERO).bucket(), None);
        assert_eq!(
            Key::ZERO.xor_distance(&Key::MAX).bucket(),
            Some(KEY_BITS - 1)
        );
    }

    #[test]
    fn random_in_bucket_lands_in_bucket() {
        let mut rng = rng_from_seed(3);
        let me = Key::random(&mut rng);
        for bucket_from_top in [0usize, 5, 100, 159] {
            let k = me.random_in_bucket(bucket_from_top, &mut rng);
            let lz = me.xor_distance(&k).leading_zeros();
            assert_eq!(lz, bucket_from_top, "bucket {bucket_from_top}");
        }
    }

    #[test]
    fn add_pow2_wraps() {
        // MAX + 2^0 = 0.
        assert_eq!(Key::MAX.add_pow2(0), Key::ZERO);
        // 0 + 2^159 sets the top bit.
        let top = Key::ZERO.add_pow2(159);
        assert!(top.bit(0));
        assert_eq!(top.leading_zeros(), 0);
        // 0 + 2^0 sets the bottom bit.
        let one = Key::ZERO.add_pow2(0);
        assert_eq!(one.leading_zeros(), KEY_BITS - 1);
    }

    #[test]
    fn arcs_on_the_ring() {
        let a = Key::from_u64(10);
        let b = Key::from_u64(20);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        assert!(hi.in_arc(&lo, &hi));
        assert!(!lo.in_arc(&lo, &hi));
        // Wrap-around arc (hi, lo] contains MAX or ZERO.
        assert!(Key::MAX.in_arc(&hi, &lo) || Key::ZERO.in_arc(&hi, &lo));
        // Full ring when endpoints coincide.
        assert!(a.in_arc(&b, &b));
    }

    #[test]
    fn from_u64_is_uniform_ish() {
        // Leading byte should take many distinct values across inputs.
        let mut firsts: Vec<u8> = (0..256u64)
            .map(|i| Key::from_u64(i).as_bytes()[0])
            .collect();
        firsts.sort_unstable();
        firsts.dedup();
        assert!(
            firsts.len() > 150,
            "only {} distinct leading bytes",
            firsts.len()
        );
    }

    #[test]
    fn ordering_is_big_endian_numeric() {
        let a = Key::from_bytes({
            let mut b = [0u8; 20];
            b[0] = 1;
            b
        });
        let b = Key::from_bytes({
            let mut b = [0u8; 20];
            b[19] = 0xFF;
            b
        });
        assert!(a > b);
    }
}
