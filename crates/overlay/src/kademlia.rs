//! Kademlia DHT (Maymounkov & Mazières, IPTPS 2002).
//!
//! An event-driven implementation of the protocol actually deployed in
//! eMule KAD and the BitTorrent Mainline DHT: k-buckets with LRU
//! maintenance, α-parallel iterative lookups with per-RPC timeouts, and
//! optional value STORE/FIND_VALUE.
//!
//! Two deployment pathologies the paper leans on (Section II-A, citing
//! Jiménez et al. \[20\]) are modelled explicitly:
//!
//! - **unresponsive nodes** (behind NATs/firewalls): they originate
//!   lookups but never answer inbound RPCs, so they pollute routing
//!   tables and cause timeouts;
//! - **bucket staleness**: routing tables may be pre-filled with entries
//!   pointing at departed nodes.
//!
//! The protocol core is **transport-generic** (DESIGN.md §4h): every
//! handler and the lookup state machine run against `decent_net`'s
//! [`Transport`] capability trait rather than the engine's `Context`
//! directly. Under the sim backend (`Context` *is* a `Transport`) this
//! compiles to exactly the pre-port code — golden traces are
//! byte-identical — while [`crate::kadnet`] runs the same core over
//! real TCP sockets.

use std::collections::BTreeSet;

use decent_net::{Protocol, Transport};
use decent_sim::prelude::*;

use crate::id::{Distance, Key, KEY_BITS};

/// A `(simulation node, overlay key)` pair — one routing-table entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Contact {
    /// Simulation-level node id (the "network address").
    pub node: NodeId,
    /// Overlay identifier.
    pub key: Key,
}

/// Kademlia wire messages.
#[derive(Clone, Debug)]
pub enum KadMsg {
    /// Request for the k closest contacts to `target`.
    FindNode {
        /// RPC correlation id.
        rpc: u64,
        /// Sender's overlay key (for routing-table updates).
        from_key: Key,
        /// Lookup target.
        target: Key,
    },
    /// Response carrying the k closest contacts known to the responder.
    FindNodeReply {
        /// RPC correlation id.
        rpc: u64,
        /// Responder's overlay key.
        from_key: Key,
        /// Closest contacts known to the responder. Interned: engine
        /// clones (duplicate fan-out, sharded commit) bump a refcount
        /// instead of deep-copying the contact list.
        closest: Interned<[Contact]>,
    },
    /// Request for a stored value (falls back to closest contacts).
    FindValue {
        /// RPC correlation id.
        rpc: u64,
        /// Sender's overlay key.
        from_key: Key,
        /// Content key.
        key: Key,
    },
    /// Response to [`KadMsg::FindValue`].
    FindValueReply {
        /// RPC correlation id.
        rpc: u64,
        /// Responder's overlay key.
        from_key: Key,
        /// Whether the responder held the value.
        found: bool,
        /// Closest contacts (when not found).
        closest: Interned<[Contact]>,
    },
    /// Store a (key-only) value at the receiver.
    Store {
        /// Sender's overlay key.
        from_key: Key,
        /// Content key to store.
        key: Key,
    },
}

/// Protocol parameters.
#[derive(Clone, Debug)]
pub struct KadConfig {
    /// Bucket size and lookup result-set size (the paper-standard 20 for
    /// Mainline, 10 for eMule KAD).
    pub k: usize,
    /// Lookup parallelism.
    pub alpha: usize,
    /// Per-RPC timeout before the peer is declared unresponsive.
    pub rpc_timeout: SimDuration,
    /// Bucket entries older than this may be evicted for newcomers.
    pub staleness: SimDuration,
    /// Interval for random bucket refresh; `None` disables refresh.
    pub refresh_interval: Option<SimDuration>,
    /// Cache found values along the lookup path (the Kademlia §2.3 /
    /// Beehive-style optimization the paper cites as \[23\]: popular keys
    /// converge to O(1) lookups).
    pub cache_values: bool,
}

impl Default for KadConfig {
    fn default() -> Self {
        KadConfig {
            k: 20,
            alpha: 3,
            rpc_timeout: SimDuration::from_secs(2.0),
            staleness: SimDuration::from_mins(15.0),
            refresh_interval: None,
            cache_values: false,
        }
    }
}

/// Outcome of one iterative lookup, recorded on the initiating node.
#[derive(Clone, Debug, PartialEq)]
pub struct LookupResult {
    /// Lookup id returned by [`KadNode::start_lookup`].
    pub id: u64,
    /// Target key.
    pub target: Key,
    /// Wall-clock (simulated) duration of the lookup.
    pub latency: SimDuration,
    /// RPCs issued.
    pub rpcs: usize,
    /// RPCs that timed out.
    pub timeouts: usize,
    /// Whether a value lookup found the value.
    pub found_value: bool,
    /// The closest live contacts discovered (sorted by distance).
    pub closest: Vec<Contact>,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum EntryState {
    Candidate,
    Waiting,
    Responded,
    Failed,
}

#[derive(Clone, Debug)]
struct ShortEntry {
    dist: Distance,
    contact: Contact,
    state: EntryState,
}

#[derive(Debug)]
struct Lookup {
    /// Public id handed back by [`KadNode::start_lookup`] (the arena
    /// slot index is an internal, reusable handle).
    id: u64,
    target: Key,
    is_value: bool,
    started: SimTime,
    shortlist: Vec<ShortEntry>,
    inflight: usize,
    rpcs: usize,
    timeouts: usize,
}

/// One in-flight RPC: correlation id, owning lookup slot, queried peer.
#[derive(Copy, Clone, Debug)]
struct RpcEntry {
    rpc: u64,
    lookup: SlotIdx,
    peer: NodeId,
}

#[derive(Copy, Clone, Debug)]
struct BucketEntry {
    contact: Contact,
    last_seen: SimTime,
}

const REFRESH_TAG: u64 = 0;

/// A Kademlia node. Implements [`Node`] for the simulation engine.
#[derive(Debug)]
pub struct KadNode {
    key: Key,
    cfg: KadConfig,
    responsive: bool,
    sybil_directory: Option<Vec<Contact>>,
    buckets: Vec<Vec<BucketEntry>>,
    // Ordered collections throughout: today every access is a point
    // lookup, but the determinism contract (DESIGN.md §4e) wants the
    // hasher structurally unable to leak into event order if a future
    // change starts iterating lookups or in-flight RPCs.
    store: BTreeSet<Key>,
    // Lookups live in a generational arena: slots (and their shortlist
    // allocations' peak footprint) are reused across the handful of
    // concurrent lookups a node ever runs, and stale RPC handles miss on
    // the generation check instead of aliasing a newer lookup. In-flight
    // RPCs are a small linear-scan vector (point lookups only, so scan
    // order never leaks into event order).
    lookups: SlotArena<Lookup>,
    rpc_to_lookup: Vec<RpcEntry>,
    next_id: u64,
    // Reusable staging buffer for closest-contact computation; contents
    // are dead between handler activations.
    scratch: Vec<Contact>,
    /// Completed lookups, harvested by the experiment harness.
    pub results: Vec<LookupResult>,
}

impl KadNode {
    /// Creates a node with the given overlay key and configuration.
    pub fn new(key: Key, cfg: KadConfig) -> Self {
        KadNode {
            key,
            cfg,
            responsive: true,
            sybil_directory: None,
            buckets: vec![Vec::new(); KEY_BITS],
            store: BTreeSet::new(),
            lookups: SlotArena::new(),
            rpc_to_lookup: Vec::new(),
            next_id: 1,
            scratch: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Marks this node as never answering inbound RPCs (NAT model).
    pub fn unresponsive(mut self) -> Self {
        self.responsive = false;
        self
    }

    /// Turns this node into a sybil: it answers every FIND request with
    /// the closest contacts from the attacker's directory of fellow
    /// sybils, steering lookups into the adversary's identities.
    pub fn make_sybil(&mut self, directory: Vec<Contact>) {
        self.sybil_directory = Some(directory);
    }

    /// Whether this node is part of a sybil attack.
    pub fn is_sybil(&self) -> bool {
        self.sybil_directory.is_some()
    }

    /// Interns the k directory entries closest to `target` (sybil
    /// reply set), staged through the scratch buffer.
    fn sybil_reply(&mut self, target: &Key) -> Interned<[Contact]> {
        self.scratch.clear();
        if let Some(dir) = &self.sybil_directory {
            self.scratch.extend_from_slice(dir);
        }
        self.scratch
            // decent-lint: allow(D009) reason="(xor_distance, node) is injective: node ids are unique per entry"
            .sort_unstable_by_key(|a| (a.key.xor_distance(target), a.node));
        self.scratch.truncate(self.cfg.k);
        Interned::from_slice(&self.scratch)
    }

    /// This node's overlay key.
    pub fn key(&self) -> Key {
        self.key
    }

    /// Whether the node answers inbound RPCs.
    pub fn is_responsive(&self) -> bool {
        self.responsive
    }

    /// Inserts contacts directly into the routing table (bootstrap).
    pub fn seed_routing_table(&mut self, contacts: &[Contact], now: SimTime) {
        for &c in contacts {
            self.touch(c, now);
        }
    }

    /// Inserts contacts, evicting the least-recently-seen entry when a
    /// bucket is full. Models an active adversary that keeps pinging so
    /// its identities stay fresh while honest entries age out (the
    /// injection phase of the KAD attacks in Steiner et al. / Wang et
    /// al.).
    pub fn force_insert(&mut self, contacts: &[Contact], now: SimTime) {
        for &contact in contacts {
            if contact.key == self.key {
                continue;
            }
            let Some(bucket_idx) = self.key.xor_distance(&contact.key).bucket() else {
                continue;
            };
            let idx = KEY_BITS - 1 - bucket_idx;
            let k = self.cfg.k;
            let bucket = &mut self.buckets[idx];
            if let Some(pos) = bucket.iter().position(|e| e.contact.node == contact.node) {
                bucket[pos].last_seen = now;
                continue;
            }
            if bucket.len() < k {
                bucket.push(BucketEntry {
                    contact,
                    last_seen: now,
                });
            } else if let Some((pos, _)) =
                bucket.iter().enumerate().min_by_key(|(_, e)| e.last_seen)
            {
                bucket[pos] = BucketEntry {
                    contact,
                    last_seen: now,
                };
            }
        }
    }

    /// Number of routing-table entries.
    pub fn table_size(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Whether `key` is stored locally.
    pub fn has_value(&self, key: &Key) -> bool {
        self.store.contains(key)
    }

    /// Stores `key` locally (as the final step of a publish).
    pub fn store_value(&mut self, key: Key) {
        self.store.insert(key);
    }

    /// Starts an iterative FIND_NODE (or FIND_VALUE) lookup and returns
    /// its id; the result appears in [`KadNode::results`] on completion.
    ///
    /// Generic over [`Transport`]: in the sim, pass the handler's
    /// `Context`; on the TCP backend, the runtime's `TcpCtx`.
    pub fn start_lookup<T: Transport<Msg = KadMsg>>(
        &mut self,
        target: Key,
        is_value: bool,
        ctx: &mut T,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let k = self.cfg.k;
        {
            let Self {
                buckets, scratch, ..
            } = self;
            Self::closest_into(buckets, &target, k, scratch);
        }
        // closest_into leaves the scratch buffer distance-sorted, so the
        // shortlist is born in lookup order.
        let mut shortlist: Vec<ShortEntry> = Vec::with_capacity(self.scratch.len());
        shortlist.extend(self.scratch.iter().map(|&contact| ShortEntry {
            dist: contact.key.xor_distance(&target),
            contact,
            state: EntryState::Candidate,
        }));
        let lookup = Lookup {
            id,
            target,
            is_value,
            started: ctx.now(),
            shortlist,
            inflight: 0,
            rpcs: 0,
            timeouts: 0,
        };
        // A value we already hold (possibly from path caching) resolves
        // without any network traffic at all.
        if is_value && self.store.contains(&target) {
            let idx = self.lookups.insert(lookup);
            let now = ctx.now();
            self.finish_lookup_with_ctx(idx, true, now, Some(ctx));
            return id;
        }
        let idx = self.lookups.insert(lookup);
        self.drive_lookup(idx, ctx);
        id
    }

    /// The k closest contacts to `target` from the routing table.
    pub fn closest_contacts(&self, target: &Key, n: usize) -> Vec<Contact> {
        let mut all = Vec::new();
        Self::closest_into(&self.buckets, target, n, &mut all);
        all
    }

    /// Fills `out` with the `n` closest routing-table contacts to
    /// `target`, sorted by distance. The `(distance, node)` sort key is
    /// a total order over distinct contacts, so the unstable sort is
    /// deterministic; distances tie only for equal keys.
    fn closest_into(buckets: &[Vec<BucketEntry>], target: &Key, n: usize, out: &mut Vec<Contact>) {
        out.clear();
        out.extend(buckets.iter().flatten().map(|e| e.contact));
        // decent-lint: allow(D009) reason="(xor_distance, node) is injective: one entry per node id across buckets"
        out.sort_unstable_by_key(|c| (c.key.xor_distance(target), c.node));
        out.truncate(n);
    }

    /// Stages the k closest contacts in the scratch buffer and interns
    /// them as a reply payload with one exact-size allocation.
    fn closest_reply(&mut self, target: &Key) -> Interned<[Contact]> {
        let k = self.cfg.k;
        let Self {
            buckets, scratch, ..
        } = self;
        Self::closest_into(buckets, target, k, scratch);
        Interned::from_slice(scratch)
    }

    fn touch(&mut self, contact: Contact, now: SimTime) {
        if contact.key == self.key {
            return;
        }
        let Some(bucket_idx) = self.key.xor_distance(&contact.key).bucket() else {
            return;
        };
        // Bucket index counts from the most significant differing bit;
        // store in vector position = shared-prefix length.
        let idx = KEY_BITS - 1 - bucket_idx;
        let k = self.cfg.k;
        let staleness = self.cfg.staleness;
        let bucket = &mut self.buckets[idx];
        if let Some(pos) = bucket.iter().position(|e| e.contact.node == contact.node) {
            let mut e = bucket.remove(pos);
            e.last_seen = now;
            bucket.push(e);
            return;
        }
        if bucket.len() < k {
            bucket.push(BucketEntry {
                contact,
                last_seen: now,
            });
            return;
        }
        // Full: evict the least-recently-seen entry if it is stale.
        if let Some((pos, oldest)) = bucket
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_seen)
            .map(|(i, e)| (i, e.last_seen))
        {
            if now.saturating_since(oldest) > staleness {
                bucket[pos] = BucketEntry {
                    contact,
                    last_seen: now,
                };
            }
        }
    }

    fn note_failed(&mut self, node: NodeId) {
        for bucket in &mut self.buckets {
            bucket.retain(|e| e.contact.node != node);
        }
    }

    fn drive_lookup<T: Transport<Msg = KadMsg>>(&mut self, idx: SlotIdx, ctx: &mut T) {
        let (k, alpha, timeout, from_key) =
            (self.cfg.k, self.cfg.alpha, self.cfg.rpc_timeout, self.key);
        let mut to_send: Vec<NodeId> = Vec::new();
        let mut finished = false;
        {
            let Some(lookup) = self.lookups.get_mut(idx) else {
                return;
            };
            // Fire queries at candidates among the k closest non-failed
            // entries until alpha are in flight.
            while lookup.inflight < alpha {
                let next = lookup
                    .shortlist
                    .iter_mut()
                    .filter(|e| e.state != EntryState::Failed)
                    .take(k)
                    .find(|e| e.state == EntryState::Candidate);
                let Some(entry) = next else { break };
                entry.state = EntryState::Waiting;
                lookup.inflight += 1;
                lookup.rpcs += 1;
                to_send.push(entry.contact.node);
            }
            if lookup.inflight == 0 {
                finished = true;
            }
        }
        for peer in to_send {
            let rpc = self.next_id;
            self.next_id += 1;
            self.rpc_to_lookup.push(RpcEntry {
                rpc,
                lookup: idx,
                peer,
            });
            let lookup = self.lookups.get(idx).expect("live lookup");
            let msg = if lookup.is_value {
                KadMsg::FindValue {
                    rpc,
                    from_key,
                    key: lookup.target,
                }
            } else {
                KadMsg::FindNode {
                    rpc,
                    from_key,
                    target: lookup.target,
                }
            };
            ctx.send(peer, msg);
            ctx.set_timer(timeout, rpc);
        }
        if finished {
            let now = ctx.now();
            self.finish_lookup_with_ctx(idx, false, now, None::<&mut T>);
        }
    }

    fn finish_lookup_with_ctx<T: Transport<Msg = KadMsg>>(
        &mut self,
        idx: SlotIdx,
        found_value: bool,
        now: SimTime,
        ctx: Option<&mut T>,
    ) {
        let Some(lookup) = self.lookups.remove(idx) else {
            return;
        };
        let closest: Vec<Contact> = lookup
            .shortlist
            .iter()
            .filter(|e| e.state == EntryState::Responded)
            .take(self.cfg.k)
            .map(|e| e.contact)
            .collect();
        // Path caching: replicate a found value to the closest queried
        // node that did not have it (and locally), so popular keys stop
        // needing full lookups.
        if found_value && self.cfg.cache_values {
            self.store.insert(lookup.target);
            if let Some(ctx) = ctx {
                if let Some(c) = closest.first() {
                    ctx.send(
                        c.node,
                        KadMsg::Store {
                            from_key: self.key,
                            key: lookup.target,
                        },
                    );
                }
            }
        }
        self.results.push(LookupResult {
            id: lookup.id,
            target: lookup.target,
            latency: now.saturating_since(lookup.started),
            rpcs: lookup.rpcs,
            timeouts: lookup.timeouts,
            found_value,
            closest,
        });
    }

    fn merge_contacts(&mut self, idx: SlotIdx, contacts: &[Contact], target: &Key) {
        let my_key = self.key;
        let Some(lookup) = self.lookups.get_mut(idx) else {
            return;
        };
        for &c in contacts {
            if c.key == my_key {
                continue;
            }
            if lookup.shortlist.iter().any(|e| e.contact.node == c.node) {
                continue;
            }
            lookup.shortlist.push(ShortEntry {
                dist: c.key.xor_distance(target),
                contact: c,
                state: EntryState::Candidate,
            });
        }
        // The in-place sort skips the stable sort's temp buffer.
        lookup
            .shortlist
            // decent-lint: allow(D009) reason="(dist, node) is injective: the shortlist is deduplicated by node above"
            .sort_unstable_by_key(|a| (a.dist, a.contact.node));
    }

    fn on_reply<T: Transport<Msg = KadMsg>>(
        &mut self,
        rpc: u64,
        from: NodeId,
        from_key: Key,
        contacts: &[Contact],
        found: bool,
        ctx: &mut T,
    ) {
        self.touch(
            Contact {
                node: from,
                key: from_key,
            },
            ctx.now(),
        );
        let Some(pos) = self.rpc_to_lookup.iter().position(|e| e.rpc == rpc) else {
            return; // late reply after timeout: routing table updated above
        };
        let idx = self.rpc_to_lookup.swap_remove(pos).lookup;
        let target = match self.lookups.get_mut(idx) {
            Some(lookup) => {
                lookup.inflight = lookup.inflight.saturating_sub(1);
                if let Some(e) = lookup.shortlist.iter_mut().find(|e| e.contact.node == from) {
                    e.state = EntryState::Responded;
                }
                lookup.target
            }
            None => return,
        };
        for &c in contacts {
            self.touch(c, ctx.now());
        }
        self.merge_contacts(idx, contacts, &target);
        if found {
            let now = ctx.now();
            self.finish_lookup_with_ctx(idx, true, now, Some(ctx));
            return;
        }
        self.drive_lookup(idx, ctx);
    }
}

/// The transport-generic protocol core: identical handler logic for
/// both backends. The engine [`Node`] impl below delegates here, so
/// sim-side behavior (and therefore the golden traces) is unchanged.
impl Protocol for KadNode {
    type Msg = KadMsg;

    fn on_start<T: Transport<Msg = KadMsg>>(&mut self, ctx: &mut T) {
        if let Some(every) = self.cfg.refresh_interval {
            ctx.set_timer(every, REFRESH_TAG);
        }
    }

    fn on_message<T: Transport<Msg = KadMsg>>(&mut self, from: NodeId, msg: KadMsg, ctx: &mut T) {
        match msg {
            KadMsg::FindNode {
                rpc,
                from_key,
                target,
            } => {
                if !self.responsive {
                    return;
                }
                self.touch(
                    Contact {
                        node: from,
                        key: from_key,
                    },
                    ctx.now(),
                );
                let closest = if self.sybil_directory.is_some() {
                    self.sybil_reply(&target)
                } else {
                    self.closest_reply(&target)
                };
                ctx.send(
                    from,
                    KadMsg::FindNodeReply {
                        rpc,
                        from_key: self.key,
                        closest,
                    },
                );
            }
            KadMsg::FindValue { rpc, from_key, key } => {
                if !self.responsive {
                    return;
                }
                self.touch(
                    Contact {
                        node: from,
                        key: from_key,
                    },
                    ctx.now(),
                );
                let found = self.sybil_directory.is_none() && self.store.contains(&key);
                let closest = if found {
                    Interned::from_slice(&[])
                } else if self.sybil_directory.is_some() {
                    self.sybil_reply(&key)
                } else {
                    self.closest_reply(&key)
                };
                ctx.send(
                    from,
                    KadMsg::FindValueReply {
                        rpc,
                        from_key: self.key,
                        found,
                        closest,
                    },
                );
            }
            KadMsg::FindNodeReply {
                rpc,
                from_key,
                closest,
            } => {
                self.on_reply(rpc, from, from_key, &closest, false, ctx);
            }
            KadMsg::FindValueReply {
                rpc,
                from_key,
                found,
                closest,
            } => {
                self.on_reply(rpc, from, from_key, &closest, found, ctx);
            }
            KadMsg::Store { from_key, key } => {
                if !self.responsive {
                    return;
                }
                self.touch(
                    Contact {
                        node: from,
                        key: from_key,
                    },
                    ctx.now(),
                );
                self.store.insert(key);
            }
        }
    }

    fn on_timer<T: Transport<Msg = KadMsg>>(&mut self, tag: u64, ctx: &mut T) {
        if tag == REFRESH_TAG {
            if let Some(every) = self.cfg.refresh_interval {
                // Refresh a random bucket by looking up a key inside it.
                let bucket = ctx.rng().gen_range(0..KEY_BITS);
                let target = self.key.random_in_bucket(bucket, ctx.rng());
                self.start_lookup(target, false, ctx);
                ctx.set_timer(every, REFRESH_TAG);
            }
            return;
        }
        // RPC timeout.
        let Some(pos) = self.rpc_to_lookup.iter().position(|e| e.rpc == tag) else {
            return; // reply arrived first
        };
        let RpcEntry {
            lookup: idx, peer, ..
        } = self.rpc_to_lookup.swap_remove(pos);
        self.note_failed(peer);
        if let Some(lookup) = self.lookups.get_mut(idx) {
            lookup.inflight = lookup.inflight.saturating_sub(1);
            lookup.timeouts += 1;
            if let Some(e) = lookup.shortlist.iter_mut().find(|e| e.contact.node == peer) {
                e.state = EntryState::Failed;
            }
        }
        self.drive_lookup(idx, ctx);
    }

    fn on_stop<T: Transport<Msg = KadMsg>>(&mut self, _ctx: &mut T) {
        // Abandon in-flight lookups; keep the (now possibly stale) table.
        self.lookups.clear();
        self.rpc_to_lookup.clear();
    }
}

/// Engine adapter: every handler forwards to the transport-generic
/// [`Protocol`] impl with the engine `Context` as the transport.
impl Node for KadNode {
    type Msg = KadMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, KadMsg>) {
        Protocol::on_start(self, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: KadMsg, ctx: &mut Context<'_, KadMsg>) {
        Protocol::on_message(self, from, msg, ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, KadMsg>) {
        Protocol::on_timer(self, tag, ctx);
    }

    fn on_stop(&mut self, ctx: &mut Context<'_, KadMsg>) {
        Protocol::on_stop(self, ctx);
    }
}

use rand::Rng;

/// Builds a pre-converged Kademlia network of `n` nodes.
///
/// # Examples
///
/// ```
/// use decent_overlay::id::Key;
/// use decent_overlay::kademlia::{build_network, KadConfig};
/// use decent_sim::prelude::*;
///
/// let mut sim = Simulation::new(1, UniformLatency::from_millis(20.0, 80.0));
/// let ids = build_network(&mut sim, 150, &KadConfig::default(), 0.0, 8, 2);
/// sim.run_until(SimTime::from_secs(1.0));
/// sim.invoke(ids[0], |node, ctx| {
///     node.start_lookup(Key::from_u64(42), false, ctx);
/// });
/// sim.run_until(SimTime::from_secs(30.0));
/// assert!(!sim.node(ids[0]).results.is_empty());
/// ```
///
/// Routing tables are seeded from global knowledge (each node learns the
/// `k` globally closest peers plus `extra_random` random peers), the
/// standard shortcut for skipping the join phase in DHT studies. A
/// fraction `unresponsive` of nodes never answer inbound RPCs (the NAT
/// pathology measured on Mainline by Jiménez et al.).
///
/// Returns the node ids in insertion order.
pub fn build_network<S: SchedulerFor<KadNode>>(
    sim: &mut Simulation<KadNode, S>,
    n: usize,
    cfg: &KadConfig,
    unresponsive: f64,
    extra_random: usize,
    seed: u64,
) -> Vec<NodeId> {
    let mut rng = rng_from_seed(seed);
    let keys: Vec<Key> = (0..n).map(|_| Key::random(&mut rng)).collect();
    let ids: Vec<NodeId> = keys
        .iter()
        .map(|&key| {
            let node = KadNode::new(key, cfg.clone());
            let node = if rng.gen::<f64>() < unresponsive {
                node.unresponsive()
            } else {
                node
            };
            sim.add_node(node)
        })
        .collect();
    let contacts: Vec<Contact> = ids
        .iter()
        .zip(&keys)
        .map(|(&node, &key)| Contact { node, key })
        .collect();
    // Seed each node with (approximately) its k XOR-closest peers. Keys
    // sorted numerically place long-shared-prefix (and therefore
    // XOR-close) keys next to each other, so an O(k)-wide window around
    // the node's sorted position contains the true closest set; the
    // window is then ranked exactly. O(n log n) overall.
    let mut by_key: Vec<Contact> = contacts.clone();
    by_key.sort_by_key(|a| a.key);
    let window = (4 * cfg.k).max(16);
    for (i, &id) in ids.iter().enumerate() {
        let me = keys[i];
        let pos = by_key.partition_point(|c| c.key < me);
        let lo = pos.saturating_sub(window);
        let hi = (pos + window).min(by_key.len());
        let mut near: Vec<Contact> = by_key[lo..hi]
            .iter()
            .filter(|c| c.node != id)
            .cloned()
            .collect();
        near.sort_by_key(|a| a.key.xor_distance(&me));
        let mut seeds: Vec<Contact> = near.into_iter().take(cfg.k).collect();
        for _ in 0..extra_random {
            seeds.push(contacts[rng.gen_range(0..n)]);
        }
        let now = sim.now();
        sim.node_mut(id).seed_routing_table(&seeds, now);
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_net(n: usize, unresponsive: f64) -> (Simulation<KadNode>, Vec<NodeId>) {
        let mut sim = Simulation::new(9, UniformLatency::from_millis(20.0, 80.0));
        let cfg = KadConfig {
            k: 8,
            alpha: 3,
            ..KadConfig::default()
        };
        let ids = build_network(&mut sim, n, &cfg, unresponsive, 8, 13);
        sim.run_until(SimTime::from_secs(1.0)); // process starts
        (sim, ids)
    }

    #[test]
    fn lookup_converges_to_global_closest() {
        let (mut sim, ids) = small_net(150, 0.0);
        let target = Key::from_u64(0xDEAD_BEEF);
        sim.invoke(ids[0], |n, ctx| n.start_lookup(target, false, ctx));
        sim.run_until(SimTime::from_secs(60.0));
        let res = &sim.node(ids[0]).results;
        assert_eq!(res.len(), 1, "lookup must complete");
        let r = &res[0];
        assert!(!r.closest.is_empty());
        // The best contact found must be the true global minimum.
        let mut best_global: Option<(Distance, NodeId)> = None;
        for &id in &ids {
            if id == ids[0] {
                continue;
            }
            let d = sim.node(id).key().xor_distance(&target);
            if best_global.is_none_or(|(bd, _)| d < bd) {
                best_global = Some((d, id));
            }
        }
        assert_eq!(r.closest[0].node, best_global.unwrap().1);
        assert_eq!(r.timeouts, 0);
    }

    #[test]
    fn store_and_find_value() {
        let (mut sim, ids) = small_net(100, 0.0);
        let key = Key::from_u64(42);
        // Publish: lookup closest, then store.
        sim.invoke(ids[1], |n, ctx| n.start_lookup(key, false, ctx));
        sim.run_until(SimTime::from_secs(30.0));
        let closest = sim.node(ids[1]).results[0].closest.clone();
        for c in closest.iter().take(4) {
            let my_key = sim.node(ids[1]).key();
            sim.invoke(ids[1], |_n, ctx| {
                ctx.send(
                    c.node,
                    KadMsg::Store {
                        from_key: my_key,
                        key,
                    },
                )
            });
        }
        sim.run_until(SimTime::from_secs(40.0));
        // Retrieve from a different node.
        sim.invoke(ids[2], |n, ctx| n.start_lookup(key, true, ctx));
        sim.run_until(SimTime::from_secs(70.0));
        let r = sim.node(ids[2]).results.last().unwrap().clone();
        assert!(r.found_value, "value lookup failed: {r:?}");
    }

    #[test]
    fn unresponsive_nodes_cause_timeouts_and_slow_lookups() {
        let (mut sim_good, ids_good) = small_net(150, 0.0);
        let (mut sim_bad, ids_bad) = small_net(150, 0.6);
        let target = Key::from_u64(7777);
        for (sim, ids) in [(&mut sim_good, &ids_good), (&mut sim_bad, &ids_bad)] {
            for &id in ids.iter().take(20) {
                if sim.node(id).is_responsive() {
                    sim.invoke(id, |n, ctx| n.start_lookup(target, false, ctx));
                }
            }
            sim.run_until(SimTime::from_secs(120.0));
        }
        let collect = |sim: &Simulation<KadNode>, ids: &[NodeId]| {
            let mut lat = Histogram::new();
            let mut touts = 0usize;
            for &id in ids {
                for r in &sim.node(id).results {
                    lat.record(r.latency.as_secs());
                    touts += r.timeouts;
                }
            }
            (lat, touts)
        };
        let (mut good, good_t) = collect(&sim_good, &ids_good);
        let (mut bad, bad_t) = collect(&sim_bad, &ids_bad);
        assert!(good.count() >= 15 && bad.count() >= 5);
        assert_eq!(good_t, 0);
        assert!(bad_t > 0, "expected timeouts with 60% unresponsive nodes");
        assert!(
            bad.percentile(0.5) > 3.0 * good.percentile(0.5),
            "median with NATs {} vs clean {}",
            bad.percentile(0.5),
            good.percentile(0.5)
        );
    }

    #[test]
    fn path_caching_makes_popular_keys_cheap() {
        let mk = |cache: bool| {
            let mut sim = Simulation::new(7, UniformLatency::from_millis(20.0, 80.0));
            let cfg = KadConfig {
                k: 8,
                cache_values: cache,
                ..KadConfig::default()
            };
            let ids = build_network(&mut sim, 200, &cfg, 0.0, 8, 8);
            sim.run_until(SimTime::from_secs(1.0));
            // Publish the value at its home nodes.
            let key = Key::from_u64(777);
            sim.invoke(ids[0], |n, ctx| n.start_lookup(key, false, ctx));
            sim.run_until(SimTime::from_secs(20.0));
            let home = sim.node(ids[0]).results[0].closest.clone();
            let pk = sim.node(ids[0]).key();
            for c in home.iter().take(4) {
                sim.invoke(ids[0], |_n, ctx| {
                    ctx.send(c.node, KadMsg::Store { from_key: pk, key })
                });
            }
            sim.run_until(SimTime::from_secs(25.0));
            // 60 sequential lookups of the same popular key.
            let mut rpcs = Vec::new();
            for i in 0..60usize {
                let origin = ids[(i * 3) % ids.len()];
                sim.invoke(origin, |n, ctx| n.start_lookup(key, true, ctx));
                let next = sim.now() + SimDuration::from_secs(5.0);
                sim.run_until(next);
                let r = sim.node(origin).results.last().unwrap().clone();
                assert!(r.found_value, "lookup {i} failed (cache={cache})");
                rpcs.push(r.rpcs);
            }
            // Mean RPCs over the last third of the run.
            rpcs[40..].iter().sum::<usize>() as f64 / 20.0
        };
        let without = mk(false);
        let with = mk(true);
        assert!(
            with < without * 0.7,
            "caching should cut lookup traffic: {with} vs {without} RPCs"
        );
    }

    #[test]
    fn routing_table_eviction_prefers_fresh_entries() {
        let cfg = KadConfig {
            k: 2,
            staleness: SimDuration::from_secs(10.0),
            ..KadConfig::default()
        };
        let me = Key::ZERO;
        let mut n = KadNode::new(me, cfg);
        // Three contacts in the same (far) bucket.
        let mk = |v: u64| {
            let mut b = [0u8; 20];
            b[0] = 0x80; // top bit set: all land in the same (farthest) bucket
            b[19] = v as u8;
            Contact {
                node: v as NodeId,
                key: Key::from_bytes(b),
            }
        };
        n.touch(mk(1), SimTime::from_secs(0.0));
        n.touch(mk(2), SimTime::from_secs(1.0));
        // Bucket full and entries fresh: newcomer dropped.
        n.touch(mk(3), SimTime::from_secs(2.0));
        assert_eq!(n.table_size(), 2);
        assert!(n.closest_contacts(&me, 3).iter().all(|c| c.node != 3));
        // After staleness, the oldest entry is replaced.
        n.touch(mk(3), SimTime::from_secs(20.0));
        assert!(n.closest_contacts(&me, 3).iter().any(|c| c.node == 3));
        assert_eq!(n.table_size(), 2);
    }

    #[test]
    fn failed_peers_are_purged() {
        let (mut sim, ids) = small_net(60, 0.0);
        let victim = ids[5];
        sim.schedule_stop(victim, SimTime::from_secs(2.0));
        sim.run_until(SimTime::from_secs(3.0));
        // Lookups from everyone eventually notice the dead node.
        let target = sim.node(victim).key();
        for &id in ids.iter().take(10) {
            sim.invoke(id, |n, ctx| n.start_lookup(target, false, ctx));
        }
        sim.run_until(SimTime::from_secs(60.0));
        let with_victim = ids
            .iter()
            .take(10)
            .filter(|&&id| {
                sim.node(id)
                    .closest_contacts(&target, 60)
                    .iter()
                    .any(|c| c.node == victim)
            })
            .count();
        assert!(with_victim < 10, "dead node should be evicted somewhere");
    }
}
