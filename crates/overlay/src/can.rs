//! CAN — the Content-Addressable Network (Ratnasamy et al., SIGCOMM
//! 2001), the first of the paper's four canonical DHTs (\[5\]).
//!
//! The keyspace is a 2-d unit torus partitioned into axis-aligned
//! zones, one per node. Joins split the zone that contains a random
//! point; routing greedily forwards towards the target through zone
//! neighbors, giving `O(sqrt(n))` hops in two dimensions — the paper's
//! example of how early DHT geometry choices traded state for hops
//! (CAN keeps O(d) neighbors versus Chord/Pastry's O(log n)).
//!
//! Zone-takeover repair after failures is out of scope (the experiment
//! uses CAN for routing-geometry comparison); churn experiments use
//! Kademlia/Chord, which implement their repair protocols in full.

use std::collections::HashMap;

use rand::Rng;

use decent_sim::prelude::*;

/// A point in the unit torus.
pub type Point = [f64; 2];

/// An axis-aligned zone `[lo, hi)` per dimension.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Zone {
    /// Inclusive lower corner.
    pub lo: Point,
    /// Exclusive upper corner.
    pub hi: Point,
}

impl Zone {
    /// The whole unit square.
    pub const UNIT: Zone = Zone {
        lo: [0.0, 0.0],
        hi: [1.0, 1.0],
    };

    /// Whether the zone contains `p`.
    pub fn contains(&self, p: &Point) -> bool {
        p.iter()
            .zip(&self.lo)
            .zip(&self.hi)
            .all(|((x, lo), hi)| lo <= x && x < hi)
    }

    /// Zone area.
    pub fn area(&self) -> f64 {
        (self.hi[0] - self.lo[0]) * (self.hi[1] - self.lo[1])
    }

    /// Splits along the longer dimension; returns `(kept, new)`.
    pub fn split(&self) -> (Zone, Zone) {
        let d = if self.hi[0] - self.lo[0] >= self.hi[1] - self.lo[1] {
            0
        } else {
            1
        };
        let mid = (self.lo[d] + self.hi[d]) / 2.0;
        let mut a = *self;
        let mut b = *self;
        a.hi[d] = mid;
        b.lo[d] = mid;
        (a, b)
    }

    /// Torus distance from the zone to a point (0 if contained).
    pub fn distance(&self, p: &Point) -> f64 {
        let mut acc = 0.0;
        for ((&x, &lo), &hi) in p.iter().zip(&self.lo).zip(&self.hi) {
            // Closest offset within [lo, hi) on the torus.
            let delta = if x >= lo && x < hi {
                0.0
            } else {
                let to_lo = torus_1d(x, lo);
                let to_hi = torus_1d(x, hi);
                to_lo.min(to_hi)
            };
            acc += delta * delta;
        }
        acc.sqrt()
    }

    /// Whether two zones abut (share a border segment) on the torus.
    pub fn is_neighbor(&self, other: &Zone) -> bool {
        let mut touching = 0;
        let mut overlapping = 0;
        for d in 0..2 {
            let touch = close(self.hi[d], other.lo[d])
                || close(self.lo[d], other.hi[d])
                || close(self.hi[d] - 1.0, other.lo[d])
                || close(self.lo[d], other.hi[d] - 1.0);
            let overlap = self.lo[d] < other.hi[d] && other.lo[d] < self.hi[d];
            if touch {
                touching += 1;
            }
            if overlap {
                overlapping += 1;
            }
        }
        touching >= 1 && overlapping >= 1
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}

fn torus_1d(a: f64, b: f64) -> f64 {
    let d = (a - b).abs();
    d.min(1.0 - d)
}

/// CAN wire messages.
#[derive(Clone, Debug)]
pub enum CanMsg {
    /// Greedy routed lookup.
    Route {
        /// Correlation id at the origin.
        rpc: u64,
        /// Target point.
        target: Point,
        /// Origin node.
        origin: NodeId,
        /// Hops so far.
        hops: u32,
    },
    /// Answer to the origin.
    Delivered {
        /// Correlation id.
        rpc: u64,
        /// Owner of the target point.
        owner: NodeId,
        /// Total hops.
        hops: u32,
    },
}

/// Outcome of a CAN lookup.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CanLookupResult {
    /// Target point.
    pub target: Point,
    /// Lookup duration.
    pub latency: SimDuration,
    /// Routing hops.
    pub hops: u32,
    /// The owner found.
    pub owner: NodeId,
}

/// A CAN node. Implements [`Node`] for the engine.
#[derive(Debug)]
pub struct CanNode {
    zone: Zone,
    neighbors: Vec<(NodeId, Zone)>,
    pending: HashMap<u64, (Point, SimTime)>,
    next_rpc: u64,
    /// Completed lookups, harvested by the experiment harness.
    pub results: Vec<CanLookupResult>,
}

impl CanNode {
    /// Creates a node owning `zone`.
    pub fn new(zone: Zone) -> Self {
        CanNode {
            zone,
            neighbors: Vec::new(),
            pending: HashMap::new(),
            next_rpc: 1,
            results: Vec::new(),
        }
    }

    /// This node's zone.
    pub fn zone(&self) -> Zone {
        self.zone
    }

    /// Current neighbor count (CAN's O(d) state).
    pub fn neighbor_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Issues a lookup for `target`.
    pub fn start_lookup(&mut self, target: Point, ctx: &mut Context<'_, CanMsg>) -> u64 {
        let rpc = self.next_rpc;
        self.next_rpc += 1;
        self.pending.insert(rpc, (target, ctx.now()));
        self.route(rpc, target, ctx.id(), 0, ctx);
        rpc
    }

    fn route(
        &mut self,
        rpc: u64,
        target: Point,
        origin: NodeId,
        hops: u32,
        ctx: &mut Context<'_, CanMsg>,
    ) {
        if self.zone.contains(&target) {
            if origin == ctx.id() {
                self.finish(rpc, ctx.id(), hops, ctx.now());
            } else {
                ctx.send(
                    origin,
                    CanMsg::Delivered {
                        rpc,
                        owner: ctx.id(),
                        hops,
                    },
                );
            }
            return;
        }
        // Greedy: the neighbor zone closest to the target. Zones tile
        // the torus, so some neighbor is strictly closer than we are.
        let next = self
            .neighbors
            .iter()
            .min_by(|(_, a), (_, b)| a.distance(&target).total_cmp(&b.distance(&target)))
            .map(|&(id, _)| id);
        if let Some(next) = next {
            ctx.send(
                next,
                CanMsg::Route {
                    rpc,
                    target,
                    origin,
                    hops: hops + 1,
                },
            );
        }
    }

    fn finish(&mut self, rpc: u64, owner: NodeId, hops: u32, now: SimTime) {
        if let Some((target, started)) = self.pending.remove(&rpc) {
            self.results.push(CanLookupResult {
                target,
                latency: now.saturating_since(started),
                hops,
                owner,
            });
        }
    }
}

impl Node for CanNode {
    type Msg = CanMsg;

    fn on_message(&mut self, _from: NodeId, msg: CanMsg, ctx: &mut Context<'_, CanMsg>) {
        match msg {
            CanMsg::Route {
                rpc,
                target,
                origin,
                hops,
            } => self.route(rpc, target, origin, hops, ctx),
            CanMsg::Delivered { rpc, owner, hops } => {
                let now = ctx.now();
                self.finish(rpc, owner, hops, now);
            }
        }
    }
}

/// Builds a CAN by `n - 1` random-point joins of the unit square and
/// wires up zone neighbors. Returns the node ids.
pub fn build_network<S: SchedulerFor<CanNode>>(
    sim: &mut Simulation<CanNode, S>,
    n: usize,
    seed: u64,
) -> Vec<NodeId> {
    assert!(n >= 1);
    let mut rng = rng_from_seed(seed);
    let mut zones: Vec<Zone> = vec![Zone::UNIT];
    while zones.len() < n {
        let p = [rng.gen::<f64>(), rng.gen::<f64>()];
        let owner = zones
            .iter()
            .position(|z| z.contains(&p))
            .expect("zones tile the torus");
        let (kept, new) = zones[owner].split();
        zones[owner] = kept;
        zones.push(new);
    }
    let ids: Vec<NodeId> = zones
        .iter()
        .map(|&z| sim.add_node(CanNode::new(z)))
        .collect();
    for i in 0..n {
        let mut neighbors = Vec::new();
        for j in 0..n {
            if i != j && zones[i].is_neighbor(&zones[j]) {
                neighbors.push((ids[j], zones[j]));
            }
        }
        sim.node_mut(ids[i]).neighbors = neighbors;
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network(n: usize, seed: u64) -> (Simulation<CanNode>, Vec<NodeId>) {
        let mut sim = Simulation::new(seed, UniformLatency::from_millis(20.0, 80.0));
        let ids = build_network(&mut sim, n, seed ^ 1);
        sim.run_until(SimTime::from_secs(0.1));
        (sim, ids)
    }

    #[test]
    fn zones_tile_the_unit_square() {
        let (sim, ids) = network(200, 21);
        let total: f64 = ids.iter().map(|&i| sim.node(i).zone().area()).sum();
        assert!((total - 1.0).abs() < 1e-9, "area {total}");
        // Any point belongs to exactly one zone.
        let mut rng = rng_from_seed(22);
        use rand::Rng;
        for _ in 0..200 {
            let p = [rng.gen::<f64>(), rng.gen::<f64>()];
            let owners = ids
                .iter()
                .filter(|&&i| sim.node(i).zone().contains(&p))
                .count();
            assert_eq!(owners, 1, "point {p:?}");
        }
    }

    #[test]
    fn routing_reaches_the_owner() {
        let (mut sim, ids) = network(150, 23);
        use rand::Rng;
        let targets: Vec<Point> = {
            let rng = sim.rng();
            (0..30)
                .map(|_| [rng.gen::<f64>(), rng.gen::<f64>()])
                .collect()
        };
        for (i, &t) in targets.iter().enumerate() {
            let origin = ids[(i * 17) % ids.len()];
            sim.invoke(origin, |n, ctx| {
                n.start_lookup(t, ctx);
            });
        }
        sim.run_until(SimTime::from_secs(60.0));
        let mut checked = 0;
        for &id in &ids {
            for r in &sim.node(id).results {
                assert!(
                    sim.node(r.owner).zone().contains(&r.target),
                    "delivered to a non-owner"
                );
                checked += 1;
            }
        }
        assert_eq!(checked, 30, "every lookup must complete");
    }

    #[test]
    fn hops_scale_like_sqrt_n() {
        let mean_hops = |n: usize, seed: u64| {
            let (mut sim, ids) = network(n, seed);
            use rand::Rng;
            let targets: Vec<Point> = {
                let rng = sim.rng();
                (0..40)
                    .map(|_| [rng.gen::<f64>(), rng.gen::<f64>()])
                    .collect()
            };
            for (i, &t) in targets.iter().enumerate() {
                let origin = ids[(i * 13) % ids.len()];
                sim.invoke(origin, |node, ctx| {
                    node.start_lookup(t, ctx);
                });
            }
            sim.run_until(SimTime::from_secs(120.0));
            let mut h = Histogram::new();
            for &id in &ids {
                for r in &sim.node(id).results {
                    h.record(r.hops as f64);
                }
            }
            assert_eq!(h.count(), 40);
            h.mean()
        };
        let small = mean_hops(64, 25);
        let big = mean_hops(576, 26); // 9x nodes -> ~3x hops
        assert!(
            big > 1.8 * small,
            "CAN hops must grow ~sqrt(n): {small} -> {big}"
        );
        assert!(big < 6.0 * small, "but not linearly: {small} -> {big}");
    }

    #[test]
    fn neighbor_state_stays_small() {
        let (sim, ids) = network(400, 27);
        let mean: f64 = ids
            .iter()
            .map(|&i| sim.node(i).neighbor_count() as f64)
            .sum::<f64>()
            / ids.len() as f64;
        // O(2d) with split imbalance slack — far below log2(400) ~ 8.6
        // entries *per row* that prefix DHTs keep.
        assert!(mean < 10.0, "mean neighbors {mean}");
        assert!(
            mean >= 4.0,
            "2-d zones must average >= 2d neighbors: {mean}"
        );
    }

    #[test]
    fn zone_split_preserves_area_and_adjacency() {
        let (a, b) = Zone::UNIT.split();
        assert!((a.area() + b.area() - 1.0).abs() < 1e-12);
        assert!(a.is_neighbor(&b));
        // Splits alternate dimensions via the longest-side rule.
        let (aa, ab) = a.split();
        assert!(aa.is_neighbor(&ab));
        assert!((aa.area() - 0.25).abs() < 1e-12);
    }
}
