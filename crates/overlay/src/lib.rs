//! # decent-overlay — the peer-to-peer overlays of Section II
//!
//! Structured overlays (Kademlia, Chord, one-hop), unstructured overlays
//! (Gnutella-style flooding, superpeers), epidemic broadcast, a
//! BitTorrent-style swarm with tit-for-tat choking, and a sybil/eclipse
//! adversary — everything the paper's historical survey rests on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod can;
pub mod chord;
pub mod flood;
pub mod gossip;
pub mod id;
pub mod kademlia;
pub mod kadnet;
pub mod onehop;
pub mod pastry;
pub mod superpeer;
pub mod swarm;
pub mod sybil;
