//! Sybil and eclipse attacks on the Kademlia overlay (Douceur, IPTPS
//! 2002; Steiner et al. on KAD; Problem 3 of the paper's Section II-B).
//!
//! The adversary injects `s` identities from a few physical machines.
//! Each sybil answers FIND requests with *other sybils only*, so once a
//! lookup touches one sybil it tends to be steered entirely into the
//! adversary's identity set. The **eclipse** variant concentrates sybil
//! keys around a victim key, capturing its closest set.

use rand::Rng;

use decent_sim::prelude::*;

use crate::id::Key;
use crate::kademlia::{build_network, Contact, KadConfig, KadNode};

/// How the adversary chooses sybil identities.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SybilPlacement {
    /// Uniformly random keys (whole-keyspace pollution).
    Uniform,
    /// Keys sharing a long prefix with a victim key (eclipse).
    Eclipse {
        /// Shared prefix length in bits.
        prefix_bits: usize,
    },
}

/// Attack configuration.
#[derive(Clone, Debug)]
pub struct SybilConfig {
    /// Honest population size.
    pub honest: usize,
    /// Number of sybil identities.
    pub sybils: usize,
    /// Identity placement strategy.
    pub placement: SybilPlacement,
    /// Key the eclipse variant targets (and lookups aim at).
    pub victim_key: Key,
    /// Kademlia parameters shared by everyone.
    pub kad: KadConfig,
}

impl Default for SybilConfig {
    fn default() -> Self {
        SybilConfig {
            honest: 500,
            sybils: 500,
            placement: SybilPlacement::Uniform,
            victim_key: Key::from_u64(0xBEEF),
            kad: KadConfig {
                k: 8,
                ..KadConfig::default()
            },
        }
    }
}

/// Measured effect of the attack on honest lookups.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SybilOutcome {
    /// Lookups whose entire k-closest result set is sybil identities.
    pub fully_captured: usize,
    /// Lookups whose majority of the result set is sybil.
    pub majority_captured: usize,
    /// Lookups whose single closest result is a sybil.
    pub top_captured: usize,
    /// Total completed lookups.
    pub lookups: usize,
}

impl SybilOutcome {
    /// Fraction of lookups with a sybil-majority result set.
    pub fn capture_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.majority_captured as f64 / self.lookups as f64
        }
    }
}

/// Builds an attacked network and returns `(sim, honest_ids, sybil_ids)`.
///
/// Honest nodes are pre-converged as in
/// [`build_network`]; sybils then insert
/// themselves into honest routing tables (modelling the crawl-and-inject
/// phase measured on KAD by Steiner et al.).
pub fn build_attacked_network(
    cfg: &SybilConfig,
    seed: u64,
) -> (Simulation<KadNode>, Vec<NodeId>, Vec<NodeId>) {
    let mut sim = Simulation::new(seed, UniformLatency::from_millis(20.0, 80.0));
    let honest = build_network(&mut sim, cfg.honest, &cfg.kad, 0.0, 8, seed ^ 0xABCD);
    let mut rng = rng_from_seed(seed ^ 0x515);
    // Generate sybil identities.
    let sybil_keys: Vec<Key> = (0..cfg.sybils)
        .map(|_| match cfg.placement {
            SybilPlacement::Uniform => Key::random(&mut rng),
            SybilPlacement::Eclipse { prefix_bits } => {
                // Copy the victim prefix, randomize the tail.
                let mut k = Key::random(&mut rng);
                let v = cfg.victim_key.as_bytes();
                let mut b = *k.as_bytes();
                let whole = prefix_bits / 8;
                b[..whole].copy_from_slice(&v[..whole]);
                let rem = prefix_bits % 8;
                if rem > 0 {
                    let idx = prefix_bits / 8;
                    let mask = 0xFFu8 << (8 - rem);
                    b[idx] = (v[idx] & mask) | (b[idx] & !mask);
                }
                k = Key::from_bytes(b);
                k
            }
        })
        .collect();
    let sybil_ids: Vec<NodeId> = sybil_keys
        .iter()
        .map(|&k| sim.add_node(KadNode::new(k, cfg.kad.clone())))
        .collect();
    let directory: Vec<Contact> = sybil_ids
        .iter()
        .zip(&sybil_keys)
        .map(|(&node, &key)| Contact { node, key })
        .collect();
    for &id in &sybil_ids {
        sim.node_mut(id).make_sybil(directory.clone());
    }
    // Injection phase: each honest node learns a handful of sybils.
    // Forced insertion models the adversary keeping its identities fresh
    // in honest buckets (crawl-and-inject, as measured on KAD).
    let per_node = ((cfg.sybils * 8) / cfg.honest.max(1)).clamp(1, 16);
    let now = sim.now();
    for &h in &honest {
        let picks: Vec<Contact> = (0..per_node)
            .map(|_| directory[rng.gen_range(0..directory.len())])
            .collect();
        sim.node_mut(h).force_insert(&picks, now);
    }
    (sim, honest, sybil_ids)
}

/// Runs `lookups` honest lookups for the victim key and measures capture.
pub fn measure_capture<S: SchedulerFor<KadNode>>(
    sim: &mut Simulation<KadNode, S>,
    honest: &[NodeId],
    sybils: &[NodeId],
    victim_key: Key,
    lookups: usize,
) -> SybilOutcome {
    sim.run_until(sim.now() + SimDuration::from_secs(1.0));
    for i in 0..lookups {
        let origin = honest[i % honest.len()];
        sim.invoke(origin, |n, ctx| n.start_lookup(victim_key, false, ctx));
    }
    let deadline = sim.now() + SimDuration::from_secs(300.0);
    sim.run_until(deadline);
    let sybil_set: std::collections::HashSet<NodeId> = sybils.iter().copied().collect();
    let mut out = SybilOutcome::default();
    for &h in honest {
        for r in &sim.node(h).results {
            out.lookups += 1;
            let total = r.closest.len();
            let captured = r
                .closest
                .iter()
                .filter(|c| sybil_set.contains(&c.node))
                .count();
            if total > 0 {
                if captured == total {
                    out.fully_captured += 1;
                }
                if 2 * captured > total {
                    out.majority_captured += 1;
                }
                if sybil_set.contains(&r.closest[0].node) {
                    out.top_captured += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attack(sybils: usize, placement: SybilPlacement) -> SybilOutcome {
        let cfg = SybilConfig {
            honest: 300,
            sybils,
            placement,
            ..SybilConfig::default()
        };
        let (mut sim, honest, sybil_ids) = build_attacked_network(&cfg, 81);
        measure_capture(&mut sim, &honest, &sybil_ids, cfg.victim_key, 60)
    }

    #[test]
    fn no_sybils_no_capture() {
        let out = attack(1, SybilPlacement::Uniform);
        assert!(out.lookups >= 50);
        assert!(
            out.capture_rate() < 0.1,
            "one sybil cannot capture: {out:?}"
        );
    }

    #[test]
    fn equal_sybils_capture_many_lookups() {
        let out = attack(300, SybilPlacement::Uniform);
        assert!(out.lookups >= 50);
        assert!(
            out.capture_rate() > 0.3,
            "50% sybil identities should poison lookups: {out:?}"
        );
    }

    #[test]
    fn eclipse_needs_far_fewer_identities() {
        let targeted = attack(30, SybilPlacement::Eclipse { prefix_bits: 24 });
        let untargeted = attack(30, SybilPlacement::Uniform);
        assert!(
            targeted.top_captured > untargeted.top_captured,
            "eclipse {targeted:?} vs uniform {untargeted:?}"
        );
        assert!(
            targeted.top_captured as f64 / targeted.lookups as f64 > 0.5,
            "30 targeted identities should own the victim's closest set: {targeted:?}"
        );
    }
}
