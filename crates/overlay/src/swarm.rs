//! BitTorrent-style swarm with tit-for-tat choking.
//!
//! Reproduces the incentive mechanism the paper credits for mitigating
//! free riding (Section II-B, Problem 1): every rechoke period a peer
//! unchokes its top reciprocators plus one optimistic slot. The model is
//! round-based — BitTorrent's rechoke really does run on a 10-second
//! clock — with piece transfers resolved per round from per-peer upload
//! budgets.
//!
//! Turning tit-for-tat off (random unchoking) lets free riders download
//! as fast as contributors; turning it on relegates them to optimistic
//! slots only. The paper's second observation — "collaboration is only
//! enforced during the download" — appears as peers leaving at
//! completion, starving the tail of the swarm.

use rand::seq::SliceRandom;
use rand::Rng;

use decent_sim::prelude::*;

/// Behaviour class of a peer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PeerClass {
    /// Uploads according to its capacity and seeds briefly when done.
    Contributor,
    /// Never uploads; leaves the instant its download completes.
    FreeRider,
    /// Starts with all pieces and only uploads.
    Seed,
}

/// Swarm parameters.
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// Number of pieces in the torrent.
    pub pieces: usize,
    /// Upload budget of a contributor, in pieces per round.
    pub upload_per_round: usize,
    /// Upload budget of a seed, in pieces per round.
    pub seed_upload_per_round: usize,
    /// Unchoke slots per peer (the classic 4 = 3 reciprocal + 1 optimistic).
    pub unchoke_slots: usize,
    /// Whether the reciprocal slots use tit-for-tat ranking
    /// (false = all slots random, the "no incentives" ablation).
    pub tit_for_tat: bool,
    /// Rounds a contributor seeds after completing before leaving.
    pub linger_rounds: usize,
    /// Rechoke period (one round) in simulated seconds, for reporting.
    pub round_secs: f64,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            pieces: 200,
            upload_per_round: 4,
            seed_upload_per_round: 8,
            unchoke_slots: 4,
            tit_for_tat: true,
            linger_rounds: 6,
            round_secs: 10.0,
        }
    }
}

#[derive(Clone, Debug)]
struct Peer {
    class: PeerClass,
    have: Vec<bool>,
    have_count: usize,
    /// Pieces received from each peer during the previous round.
    received_from: Vec<u32>,
    completed_round: Option<usize>,
    departed: bool,
    optimistic: Option<usize>,
    optimistic_age: usize,
}

impl Peer {
    fn new(class: PeerClass, pieces: usize, n: usize) -> Self {
        let done = class == PeerClass::Seed;
        Peer {
            class,
            have: vec![done; pieces],
            have_count: if done { pieces } else { 0 },
            received_from: vec![0; n],
            completed_round: Some(0).filter(|_| done),
            departed: false,
            optimistic: None,
            optimistic_age: 0,
        }
    }

    fn is_done(&self) -> bool {
        self.have_count == self.have.len()
    }

    fn active(&self) -> bool {
        !self.departed
    }
}

/// Per-class completion statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SwarmReport {
    /// Completion times (seconds) of contributors.
    pub contributor_times: Histogram,
    /// Completion times (seconds) of free riders.
    pub free_rider_times: Histogram,
    /// Peers that never finished within the horizon.
    pub unfinished: usize,
    /// Rounds simulated.
    pub rounds: usize,
}

/// A round-based swarm simulation.
///
/// # Examples
///
/// ```
/// use decent_overlay::swarm::{SwarmConfig, SwarmSim};
///
/// let mut swarm = SwarmSim::with_population(SwarmConfig::default(), 60, 0.25, 2, 1);
/// let report = swarm.run(2000);
/// assert_eq!(report.unfinished, 0);
/// ```
#[derive(Debug)]
pub struct SwarmSim {
    cfg: SwarmConfig,
    peers: Vec<Peer>,
    rng: SimRng,
    round: usize,
    /// Global piece availability, for rarest-first selection.
    availability: Vec<u32>,
}

impl SwarmSim {
    /// Creates a swarm with the given class for each peer.
    pub fn new(cfg: SwarmConfig, classes: &[PeerClass], seed: u64) -> Self {
        let n = classes.len();
        let peers: Vec<Peer> = classes
            .iter()
            .map(|&c| Peer::new(c, cfg.pieces, n))
            .collect();
        let mut availability = vec![0u32; cfg.pieces];
        for p in &peers {
            for (i, &h) in p.have.iter().enumerate() {
                if h {
                    availability[i] += 1;
                }
            }
        }
        SwarmSim {
            cfg,
            peers,
            rng: rng_from_seed(seed),
            round: 0,
            availability,
        }
    }

    /// Convenience constructor: `seeds` seeds, then contributors with the
    /// given fraction replaced by free riders.
    pub fn with_population(
        cfg: SwarmConfig,
        n_leechers: usize,
        free_rider_fraction: f64,
        seeds: usize,
        seed: u64,
    ) -> Self {
        let mut rng = rng_from_seed(seed ^ 0x5347);
        let mut classes = vec![PeerClass::Seed; seeds];
        for _ in 0..n_leechers {
            classes.push(if rng.gen::<f64>() < free_rider_fraction {
                PeerClass::FreeRider
            } else {
                PeerClass::Contributor
            });
        }
        SwarmSim::new(cfg, &classes, seed)
    }

    /// Number of peers (including departed ones).
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Returns true if the swarm has no peers.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Class of peer `i`.
    pub fn class(&self, i: usize) -> PeerClass {
        self.peers[i].class
    }

    /// Completion round of peer `i`, if it finished.
    pub fn completed_round(&self, i: usize) -> Option<usize> {
        self.peers[i].completed_round
    }

    /// Runs until everyone finished/departed or `max_rounds` elapsed, and
    /// reports per-class completion times.
    pub fn run(&mut self, max_rounds: usize) -> SwarmReport {
        while self.round < max_rounds && self.someone_downloading() {
            self.step();
        }
        let mut report = SwarmReport {
            rounds: self.round,
            ..SwarmReport::default()
        };
        for p in &self.peers {
            match (p.class, p.completed_round) {
                (PeerClass::Seed, _) => {}
                (PeerClass::Contributor, Some(r)) => report
                    .contributor_times
                    .record(r as f64 * self.cfg.round_secs),
                (PeerClass::FreeRider, Some(r)) => report
                    .free_rider_times
                    .record(r as f64 * self.cfg.round_secs),
                (_, None) => report.unfinished += 1,
            }
        }
        report
    }

    fn someone_downloading(&self) -> bool {
        self.peers.iter().any(|p| p.active() && !p.is_done())
    }

    /// Executes one rechoke round.
    #[allow(clippy::needless_range_loop)] // indices address several arrays
    pub fn step(&mut self) {
        self.round += 1;
        let n = self.peers.len();
        // 1. Each uploader picks its unchoke set.
        let mut unchokes: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            if !self.peers[i].active() {
                continue;
            }
            let budget_ok = match self.peers[i].class {
                PeerClass::FreeRider => false,
                PeerClass::Seed | PeerClass::Contributor => true,
            };
            if !budget_ok
                || (self.peers[i].class == PeerClass::Contributor && self.peers[i].have_count == 0)
            {
                continue;
            }
            // Interested peers: active, not done, missing something we have.
            let interested: Vec<usize> = (0..n)
                .filter(|&j| {
                    j != i
                        && self.peers[j].active()
                        && !self.peers[j].is_done()
                        && self.has_wanted_piece(i, j)
                })
                .collect();
            if interested.is_empty() {
                continue;
            }
            let slots = self.cfg.unchoke_slots;
            let mut chosen: Vec<usize> = Vec::with_capacity(slots);
            if self.cfg.tit_for_tat && self.peers[i].class == PeerClass::Contributor {
                // Top (slots - 1) reciprocators by pieces received last round.
                let mut ranked = interested.clone();
                ranked.sort_by_key(|&j| std::cmp::Reverse(self.peers[i].received_from[j]));
                for &j in ranked
                    .iter()
                    .filter(|&&j| self.peers[i].received_from[j] > 0)
                    .take(slots.saturating_sub(1))
                {
                    chosen.push(j);
                }
                // One rotating optimistic unchoke.
                let rotate = self.peers[i].optimistic_age.is_multiple_of(3);
                let current = self.peers[i].optimistic;
                let keep = current.filter(|c| !rotate && interested.contains(c));
                let opt = keep.or_else(|| {
                    interested
                        .iter()
                        .copied()
                        .filter(|j| !chosen.contains(j))
                        .collect::<Vec<_>>()
                        .choose(&mut self.rng)
                        .copied()
                });
                if let Some(o) = opt {
                    if !chosen.contains(&o) {
                        chosen.push(o);
                    }
                    self.peers[i].optimistic = Some(o);
                }
                self.peers[i].optimistic_age += 1;
            } else {
                // Seeds and the no-TFT ablation: random unchokes.
                let mut pool = interested.clone();
                pool.shuffle(&mut self.rng);
                chosen.extend(pool.into_iter().take(slots));
            }
            unchokes[i] = chosen;
        }
        // 2. Resolve transfers: split each uploader's budget across its
        //    unchoked peers; receivers pick rarest-first pieces.
        let mut received: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (from, count)
        for i in 0..n {
            if unchokes[i].is_empty() {
                continue;
            }
            let budget = match self.peers[i].class {
                PeerClass::Seed => self.cfg.seed_upload_per_round,
                PeerClass::Contributor => self.cfg.upload_per_round,
                PeerClass::FreeRider => 0,
            };
            // Per-slot bandwidth: budget is split across the configured
            // slot count, so a lone optimistic unchoke does not receive
            // the uploader's entire capacity.
            let share = (budget / self.cfg.unchoke_slots).max(1);
            for &j in &unchokes[i] {
                received[j].push((i, share));
            }
        }
        // Reset reciprocation ledgers before crediting this round.
        for p in &mut self.peers {
            p.received_from.iter_mut().for_each(|x| *x = 0);
        }
        for j in 0..n {
            for &(i, count) in &received[j] {
                let got = self.transfer(i, j, count);
                self.peers[j].received_from[i] += got as u32;
            }
        }
        // 3. Completions and departures.
        for i in 0..n {
            let done = self.peers[i].is_done();
            let p = &mut self.peers[i];
            if !p.active() {
                continue;
            }
            if done && p.completed_round.is_none() {
                p.completed_round = Some(self.round);
            }
            if let Some(r) = p.completed_round {
                let leave_after = match p.class {
                    PeerClass::FreeRider => 0,
                    PeerClass::Contributor => self.cfg.linger_rounds,
                    PeerClass::Seed => usize::MAX,
                };
                if leave_after != usize::MAX && self.round >= r + leave_after {
                    p.departed = true;
                }
            }
        }
    }

    fn has_wanted_piece(&self, from: usize, to: usize) -> bool {
        self.peers[from]
            .have
            .iter()
            .zip(&self.peers[to].have)
            .any(|(&f, &t)| f && !t)
    }

    /// Moves up to `count` pieces from `from` to `to`, rarest first.
    fn transfer(&mut self, from: usize, to: usize, count: usize) -> usize {
        let mut wanted: Vec<usize> = (0..self.cfg.pieces)
            .filter(|&k| self.peers[from].have[k] && !self.peers[to].have[k])
            .collect();
        wanted.sort_by_key(|&k| self.availability[k]);
        let mut moved = 0;
        for k in wanted.into_iter().take(count) {
            self.peers[to].have[k] = true;
            self.peers[to].have_count += 1;
            self.availability[k] += 1;
            moved += 1;
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tft: bool, free_riders: f64) -> SwarmReport {
        let cfg = SwarmConfig {
            pieces: 100,
            tit_for_tat: tft,
            ..SwarmConfig::default()
        };
        let mut swarm = SwarmSim::with_population(cfg, 120, free_riders, 3, 71);
        swarm.run(2000)
    }

    #[test]
    fn everyone_finishes_eventually() {
        let r = run(true, 0.25);
        assert_eq!(r.unfinished, 0, "report: {r:?}");
        assert!(r.contributor_times.count() > 0);
        assert!(r.free_rider_times.count() > 0);
    }

    #[test]
    fn tit_for_tat_penalizes_free_riders() {
        let mut r = run(true, 0.25);
        let contributors = r.contributor_times.percentile(0.5);
        let riders = r.free_rider_times.percentile(0.5);
        assert!(
            riders > 1.5 * contributors,
            "riders {riders}s vs contributors {contributors}s"
        );
    }

    #[test]
    fn without_tit_for_tat_free_riding_is_free() {
        let mut r = run(false, 0.25);
        let contributors = r.contributor_times.percentile(0.5);
        let riders = r.free_rider_times.percentile(0.5);
        assert!(
            riders < 1.5 * contributors,
            "random choking should not single out riders: {riders} vs {contributors}"
        );
    }

    #[test]
    fn pure_contributor_swarm_is_fast_and_fair() {
        let mut r = run(true, 0.0);
        assert_eq!(r.unfinished, 0);
        let spread = r.contributor_times.max() / r.contributor_times.percentile(0.5);
        assert!(spread < 4.0, "completion spread {spread}");
    }

    #[test]
    fn seeds_never_depart_and_rescue_the_tail() {
        // Even 100% free riders eventually finish off seeds alone.
        let cfg = SwarmConfig {
            pieces: 50,
            tit_for_tat: true,
            ..SwarmConfig::default()
        };
        let mut swarm = SwarmSim::with_population(cfg, 30, 1.0, 2, 72);
        let r = swarm.run(5000);
        assert_eq!(r.unfinished, 0, "seeds must carry a rider-only swarm");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(true, 0.3);
        let b = run(true, 0.3);
        assert_eq!(a, b);
    }
}
