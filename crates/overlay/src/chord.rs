//! Chord DHT (Stoica et al., SIGCOMM 2001).
//!
//! Recursive lookup routing over finger tables, with the classic
//! maintenance triad: `stabilize` (successor pointer repair), `notify`
//! (predecessor updates), and `fix_fingers` (finger refresh). Successor
//! lists provide resilience to node failures.
//!
//! Used by experiment E6 to compare multi-hop structured routing against
//! one-hop full-membership overlays, and to account for maintenance
//! traffic.

use std::collections::HashMap;

use rand::Rng;

use decent_sim::prelude::*;

use crate::id::{Key, KEY_BITS};
use crate::kademlia::Contact;

/// Chord wire messages.
#[derive(Clone, Debug)]
pub enum ChordMsg {
    /// Recursive lookup request, forwarded hop by hop.
    FindSuccessor {
        /// Correlation id at the origin.
        rpc: u64,
        /// Key being resolved.
        target: Key,
        /// Node that issued the lookup (gets the final answer).
        origin: NodeId,
        /// Hops taken so far.
        hops: u32,
    },
    /// Final answer delivered to the lookup origin.
    FoundSuccessor {
        /// Correlation id at the origin.
        rpc: u64,
        /// The successor responsible for the target key.
        successor: Contact,
        /// Total routing hops.
        hops: u32,
    },
    /// Stabilize: ask a successor for its predecessor and successor list.
    GetPredecessor {
        /// Correlation id.
        rpc: u64,
    },
    /// Reply to [`ChordMsg::GetPredecessor`].
    PredecessorReply {
        /// Correlation id.
        rpc: u64,
        /// The responder's predecessor, if known.
        predecessor: Option<Contact>,
        /// The responder's successor list.
        successors: Vec<Contact>,
        /// The responder's own contact.
        from: Contact,
    },
    /// Tell a successor we believe we are its predecessor.
    Notify {
        /// The notifier's contact.
        from: Contact,
    },
}

/// Protocol parameters.
#[derive(Clone, Debug)]
pub struct ChordConfig {
    /// Successor-list length (resilience to consecutive failures).
    pub successor_list: usize,
    /// Interval between stabilize rounds.
    pub stabilize_interval: SimDuration,
    /// Interval between fix-finger steps (one finger per step).
    pub fix_finger_interval: SimDuration,
    /// Lookup deadline: the origin declares failure after this long.
    pub lookup_timeout: SimDuration,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            successor_list: 4,
            stabilize_interval: SimDuration::from_secs(30.0),
            fix_finger_interval: SimDuration::from_secs(15.0),
            lookup_timeout: SimDuration::from_secs(30.0),
        }
    }
}

/// Outcome of one Chord lookup, recorded at the origin.
#[derive(Clone, Debug, PartialEq)]
pub struct ChordLookupResult {
    /// Target key.
    pub target: Key,
    /// Time from issue to answer (or to timeout).
    pub latency: SimDuration,
    /// Routing hops (0 if resolved locally).
    pub hops: u32,
    /// Whether an answer arrived before the deadline.
    pub success: bool,
    /// The responsible successor, when successful.
    pub successor: Option<Contact>,
}

const TIMER_STABILIZE: u64 = 1;
const TIMER_FIX_FINGERS: u64 = 2;
const RPC_BASE: u64 = 16;

#[derive(Debug)]
enum PendingRpc {
    UserLookup { target: Key, started: SimTime },
    FingerFix { index: usize },
    Stabilize,
    CheckPredecessor,
}

/// A Chord node. Implements [`Node`] for the simulation engine.
#[derive(Debug)]
pub struct ChordNode {
    key: Key,
    cfg: ChordConfig,
    successors: Vec<Contact>,
    predecessor: Option<Contact>,
    fingers: Vec<Option<Contact>>,
    next_finger: usize,
    rpcs: HashMap<u64, PendingRpc>,
    next_rpc: u64,
    /// Completed lookups, harvested by the experiment harness.
    pub results: Vec<ChordLookupResult>,
}

impl ChordNode {
    /// Creates a node with the given overlay key and configuration.
    pub fn new(key: Key, cfg: ChordConfig) -> Self {
        ChordNode {
            key,
            cfg,
            successors: Vec::new(),
            predecessor: None,
            fingers: vec![None; KEY_BITS],
            next_finger: 0,
            rpcs: HashMap::new(),
            next_rpc: RPC_BASE,
            results: Vec::new(),
        }
    }

    /// This node's overlay key.
    pub fn key(&self) -> Key {
        self.key
    }

    /// Current first successor, if any.
    pub fn successor(&self) -> Option<Contact> {
        self.successors.first().copied()
    }

    /// Current predecessor, if known.
    pub fn predecessor(&self) -> Option<Contact> {
        self.predecessor
    }

    /// Number of populated fingers.
    pub fn finger_count(&self) -> usize {
        self.fingers.iter().flatten().count()
    }

    /// Seeds ring state from global knowledge (pre-converged bootstrap).
    pub fn seed(
        &mut self,
        successors: Vec<Contact>,
        predecessor: Contact,
        fingers: Vec<Option<Contact>>,
    ) {
        self.successors = successors;
        self.predecessor = Some(predecessor);
        self.fingers = fingers;
    }

    /// Issues a lookup for `target`; the outcome lands in
    /// [`ChordNode::results`].
    pub fn start_lookup(&mut self, target: Key, ctx: &mut Context<'_, ChordMsg>) -> u64 {
        let rpc = self.next_rpc;
        self.next_rpc += 1;
        self.rpcs.insert(
            rpc,
            PendingRpc::UserLookup {
                target,
                started: ctx.now(),
            },
        );
        ctx.set_timer(self.cfg.lookup_timeout, rpc);
        self.route(rpc, target, ctx.id(), 0, ctx);
        rpc
    }

    /// Routes a FindSuccessor one step: answer if our successor owns the
    /// key, else forward to the closest preceding finger.
    fn route(
        &mut self,
        rpc: u64,
        target: Key,
        origin: NodeId,
        hops: u32,
        ctx: &mut Context<'_, ChordMsg>,
    ) {
        let me = Contact {
            node: ctx.id(),
            key: self.key,
        };
        if let Some(succ) = self.successor() {
            if target.in_arc(&self.key, &succ.key) {
                let msg = ChordMsg::FoundSuccessor {
                    rpc,
                    successor: succ,
                    hops,
                };
                if origin == ctx.id() {
                    self.deliver_answer(rpc, succ, hops, ctx);
                } else {
                    ctx.send(origin, msg);
                }
                return;
            }
        }
        match self.closest_preceding(&target, ctx.id()) {
            Some(next) => ctx.send(
                next.node,
                ChordMsg::FindSuccessor {
                    rpc,
                    target,
                    origin,
                    hops: hops + 1,
                },
            ),
            None => {
                // No routing state: answer with ourselves as a last resort.
                if origin == ctx.id() {
                    self.deliver_answer(rpc, me, hops, ctx);
                } else {
                    ctx.send(
                        origin,
                        ChordMsg::FoundSuccessor {
                            rpc,
                            successor: me,
                            hops,
                        },
                    );
                }
            }
        }
    }

    fn deliver_answer(
        &mut self,
        rpc: u64,
        successor: Contact,
        hops: u32,
        ctx: &mut Context<'_, ChordMsg>,
    ) {
        match self.rpcs.remove(&rpc) {
            Some(PendingRpc::UserLookup { target, started }) => {
                self.results.push(ChordLookupResult {
                    target,
                    latency: ctx.now().saturating_since(started),
                    hops,
                    success: true,
                    successor: Some(successor),
                });
            }
            Some(PendingRpc::FingerFix { index }) => {
                self.fingers[index] = Some(successor);
            }
            Some(PendingRpc::Stabilize) | Some(PendingRpc::CheckPredecessor) | None => {}
        }
    }

    /// The finger (or successor) with the largest key in `(self, target)`.
    fn closest_preceding(&self, target: &Key, self_node: NodeId) -> Option<Contact> {
        let mut best: Option<Contact> = None;
        let candidates = self.fingers.iter().flatten().chain(self.successors.iter());
        for c in candidates {
            if c.node == self_node {
                continue;
            }
            if c.key.in_arc(&self.key, target) && *c.key.as_bytes() != *target.as_bytes() {
                match best {
                    None => best = Some(*c),
                    Some(b) => {
                        // Prefer the candidate closest before the target,
                        // i.e. the one whose key the current best precedes.
                        if b.key.in_arc(&self.key, &c.key) {
                            best = Some(*c);
                        }
                    }
                }
            }
        }
        best.or_else(|| {
            self.successors
                .iter()
                .find(|c| c.node != self_node)
                .copied()
        })
    }

    fn stabilize(&mut self, ctx: &mut Context<'_, ChordMsg>) {
        if let Some(succ) = self.successor() {
            let rpc = self.next_rpc;
            self.next_rpc += 1;
            self.rpcs.insert(rpc, PendingRpc::Stabilize);
            ctx.send(succ.node, ChordMsg::GetPredecessor { rpc });
            // If the successor never answers, drop it next round.
            ctx.set_timer(self.cfg.stabilize_interval * 0.9, rpc);
        }
        // check_predecessor: probe it and clear the pointer on silence,
        // so stale pointers to departed nodes cannot be re-propagated.
        if let Some(pred) = self.predecessor {
            let rpc = self.next_rpc;
            self.next_rpc += 1;
            self.rpcs.insert(rpc, PendingRpc::CheckPredecessor);
            ctx.send(pred.node, ChordMsg::GetPredecessor { rpc });
            ctx.set_timer(self.cfg.stabilize_interval * 0.9, rpc);
        }
        ctx.set_timer(self.cfg.stabilize_interval, TIMER_STABILIZE);
    }

    fn fix_one_finger(&mut self, ctx: &mut Context<'_, ChordMsg>) {
        // Fix fingers in a deterministic rotation, skipping the bottom
        // fingers which are covered by the successor list.
        self.next_finger = (self.next_finger + 7) % KEY_BITS;
        let index = self.next_finger;
        let start = self.key.add_pow2(index);
        let rpc = self.next_rpc;
        self.next_rpc += 1;
        self.rpcs.insert(rpc, PendingRpc::FingerFix { index });
        self.route(rpc, start, ctx.id(), 0, ctx);
        ctx.set_timer(self.cfg.fix_finger_interval, TIMER_FIX_FINGERS);
    }
}

impl Node for ChordNode {
    type Msg = ChordMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ChordMsg>) {
        // Desynchronize maintenance across nodes.
        let j1 = ctx.rng().gen::<f64>();
        let j2 = ctx.rng().gen::<f64>();
        ctx.set_timer(self.cfg.stabilize_interval * j1, TIMER_STABILIZE);
        ctx.set_timer(self.cfg.fix_finger_interval * j2, TIMER_FIX_FINGERS);
    }

    fn on_message(&mut self, from: NodeId, msg: ChordMsg, ctx: &mut Context<'_, ChordMsg>) {
        match msg {
            ChordMsg::FindSuccessor {
                rpc,
                target,
                origin,
                hops,
            } => self.route(rpc, target, origin, hops, ctx),
            ChordMsg::FoundSuccessor {
                rpc,
                successor,
                hops,
            } => self.deliver_answer(rpc, successor, hops, ctx),
            ChordMsg::GetPredecessor { rpc } => {
                let me = Contact {
                    node: ctx.id(),
                    key: self.key,
                };
                ctx.send(
                    from,
                    ChordMsg::PredecessorReply {
                        rpc,
                        predecessor: self.predecessor,
                        successors: self.successors.clone(),
                        from: me,
                    },
                );
            }
            ChordMsg::PredecessorReply {
                rpc,
                predecessor,
                successors,
                from: succ_contact,
            } => {
                match self.rpcs.remove(&rpc) {
                    Some(PendingRpc::Stabilize) => {}
                    Some(PendingRpc::CheckPredecessor) | None => return,
                    Some(other) => {
                        self.rpcs.insert(rpc, other);
                        return;
                    }
                }
                // Adopt the successor's predecessor if it sits between us.
                if let Some(p) = predecessor {
                    if p.node != ctx.id() && p.key.in_arc(&self.key, &succ_contact.key) {
                        self.successors.insert(0, p);
                    }
                }
                // Refresh the tail of the successor list.
                let mut list: Vec<Contact> = Vec::with_capacity(self.cfg.successor_list);
                let candidates = self
                    .successors
                    .first()
                    .copied()
                    .into_iter()
                    .chain(std::iter::once(succ_contact))
                    .chain(successors);
                for c in candidates {
                    if list.len() == self.cfg.successor_list {
                        break;
                    }
                    if !list.iter().any(|e| e.node == c.node) {
                        list.push(c);
                    }
                }
                self.successors = list;
                if let Some(succ) = self.successor() {
                    let me = Contact {
                        node: ctx.id(),
                        key: self.key,
                    };
                    ctx.send(succ.node, ChordMsg::Notify { from: me });
                }
            }
            ChordMsg::Notify { from: candidate } => {
                let adopt = match self.predecessor {
                    None => true,
                    Some(p) => candidate.key.in_arc(&p.key, &self.key),
                };
                if adopt && candidate.node != ctx.id() {
                    self.predecessor = Some(candidate);
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, ChordMsg>) {
        match tag {
            TIMER_STABILIZE => self.stabilize(ctx),
            TIMER_FIX_FINGERS => self.fix_one_finger(ctx),
            rpc => match self.rpcs.remove(&rpc) {
                Some(PendingRpc::UserLookup { target, started }) => {
                    self.results.push(ChordLookupResult {
                        target,
                        latency: ctx.now().saturating_since(started),
                        hops: 0,
                        success: false,
                        successor: None,
                    });
                }
                Some(PendingRpc::Stabilize) => {
                    // Successor unresponsive: fail over to the next one.
                    if !self.successors.is_empty() {
                        self.successors.remove(0);
                    }
                }
                Some(PendingRpc::CheckPredecessor) => {
                    // Predecessor unresponsive: forget it so Notify can
                    // install a live one.
                    self.predecessor = None;
                }
                Some(PendingRpc::FingerFix { .. }) | None => {}
            },
        }
    }

    fn on_stop(&mut self, _ctx: &mut Context<'_, ChordMsg>) {
        self.rpcs.clear();
    }
}

/// Builds a pre-converged Chord ring of `n` nodes and returns their ids
/// (sorted by key order around the ring).
///
/// # Examples
///
/// ```
/// use decent_overlay::chord::{build_ring, ChordConfig};
/// use decent_overlay::id::Key;
/// use decent_sim::prelude::*;
///
/// let mut sim = Simulation::new(1, ConstantLatency::from_millis(40.0));
/// let ids = build_ring(&mut sim, 100, &ChordConfig::default(), 2);
/// sim.invoke(ids[0], |node, ctx| {
///     node.start_lookup(Key::from_u64(7), ctx);
/// });
/// sim.run_until(SimTime::from_secs(60.0));
/// let result = &sim.node(ids[0]).results[0];
/// assert!(result.success);
/// ```
pub fn build_ring<S: SchedulerFor<ChordNode>>(
    sim: &mut Simulation<ChordNode, S>,
    n: usize,
    cfg: &ChordConfig,
    seed: u64,
) -> Vec<NodeId> {
    let mut rng = rng_from_seed(seed);
    let mut keys: Vec<Key> = (0..n).map(|_| Key::random(&mut rng)).collect();
    keys.sort();
    keys.dedup();
    let ids: Vec<NodeId> = keys
        .iter()
        .map(|&key| sim.add_node(ChordNode::new(key, cfg.clone())))
        .collect();
    let n = ids.len();
    let contact = |i: usize| Contact {
        node: ids[i % n],
        key: keys[i % n],
    };
    for i in 0..n {
        let successors: Vec<Contact> = (1..=cfg.successor_list).map(|d| contact(i + d)).collect();
        let predecessor = contact((i + n - 1) % n);
        // Finger j points at the first node whose key >= key + 2^j.
        let mut fingers: Vec<Option<Contact>> = Vec::with_capacity(KEY_BITS);
        for j in 0..KEY_BITS {
            let start = keys[i].add_pow2(j);
            let pos = keys.partition_point(|k| *k < start) % n;
            fingers.push(Some(contact(pos)));
        }
        sim.node_mut(ids[i]).seed(successors, predecessor, fingers);
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, seed: u64) -> (Simulation<ChordNode>, Vec<NodeId>) {
        let mut sim = Simulation::new(seed, UniformLatency::from_millis(20.0, 80.0));
        let ids = build_ring(&mut sim, n, &ChordConfig::default(), seed);
        sim.run_until(SimTime::from_secs(0.5));
        (sim, ids)
    }

    /// The node responsible for `target` is the first key >= target.
    fn true_owner(sim: &Simulation<ChordNode>, ids: &[NodeId], target: &Key) -> NodeId {
        let mut pairs: Vec<(Key, NodeId)> =
            ids.iter().map(|&id| (sim.node(id).key(), id)).collect();
        pairs.sort();
        pairs
            .iter()
            .find(|(k, _)| k >= target)
            .map(|&(_, id)| id)
            .unwrap_or(pairs[0].1)
    }

    #[test]
    fn lookups_find_the_responsible_node() {
        let (mut sim, ids) = ring(120, 3);
        let targets: Vec<Key> = (0..30).map(|i| Key::from_u64(1000 + i)).collect();
        for (i, t) in targets.iter().enumerate() {
            let origin = ids[i % ids.len()];
            sim.invoke(origin, |n, ctx| n.start_lookup(*t, ctx));
        }
        sim.run_until(SimTime::from_secs(120.0));
        let mut checked = 0;
        for &id in &ids {
            for r in &sim.node(id).results {
                assert!(r.success, "lookup timed out: {r:?}");
                let owner = true_owner(&sim, &ids, &r.target);
                assert_eq!(
                    r.successor.unwrap().node,
                    owner,
                    "wrong owner for {:?}",
                    r.target
                );
                checked += 1;
            }
        }
        assert_eq!(checked, 30);
    }

    #[test]
    fn hop_count_is_logarithmic() {
        let (mut sim, ids) = ring(256, 4);
        for i in 0..60u64 {
            let origin = ids[(i as usize * 13) % ids.len()];
            let t = Key::from_u64(500_000 + i);
            sim.invoke(origin, |n, ctx| n.start_lookup(t, ctx));
        }
        sim.run_until(SimTime::from_secs(200.0));
        let mut hops = Histogram::new();
        for &id in &ids {
            for r in &sim.node(id).results {
                assert!(r.success);
                hops.record(r.hops as f64);
            }
        }
        assert_eq!(hops.count(), 60);
        // log2(256) = 8; mean hops should be in the classic 0.5*log2(n)
        // to 1.5*log2(n) band.
        assert!(
            hops.mean() >= 2.0 && hops.mean() <= 12.0,
            "mean {}",
            hops.mean()
        );
    }

    #[test]
    fn stabilization_repairs_a_failed_successor() {
        let (mut sim, ids) = ring(40, 5);
        // Kill node i's immediate successor, then check it fails over.
        let mut pairs: Vec<(Key, NodeId)> =
            ids.iter().map(|&id| (sim.node(id).key(), id)).collect();
        pairs.sort();
        let victim = pairs[1].1;
        let observer = pairs[0].1;
        sim.schedule_stop(victim, SimTime::from_secs(1.0));
        sim.run_until(SimTime::from_secs(300.0));
        let succ = sim.node(observer).successor().expect("has successor");
        assert_ne!(succ.node, victim, "failed successor not replaced");
        assert_eq!(succ.node, pairs[2].1, "should adopt the next live node");
    }

    #[test]
    fn lookups_fail_cleanly_under_mass_failure() {
        let (mut sim, ids) = ring(60, 6);
        // Kill 70% of the ring at once, then issue lookups.
        for &id in ids.iter().skip(18) {
            sim.schedule_stop(id, SimTime::from_secs(1.0));
        }
        sim.run_until(SimTime::from_secs(2.0));
        for i in 0..10u64 {
            let origin = ids[i as usize % 18];
            let t = Key::from_u64(31 + i);
            sim.invoke(origin, |n, ctx| n.start_lookup(t, ctx));
        }
        sim.run_until(SimTime::from_secs(400.0));
        let (mut done, mut failed) = (0, 0);
        for &id in ids.iter().take(18) {
            for r in &sim.node(id).results {
                done += 1;
                if !r.success {
                    failed += 1;
                }
            }
        }
        assert_eq!(done, 10, "every lookup must terminate (success or timeout)");
        assert!(failed > 0, "mass failure should break some routes");
    }
}
