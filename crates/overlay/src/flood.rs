//! Gnutella-style unstructured overlay with TTL-limited query flooding.
//!
//! Reproduces the setting of Adar & Huberman's "Free riding on Gnutella"
//! (First Monday, 2000), which the paper cites as Problem 1 of open P2P
//! networks: most peers share nothing, and a tiny fraction of peers
//! answer nearly all queries.
//!
//! Files have Zipf popularity; sharers hold Zipf-sampled file sets, free
//! riders hold none. Queries flood the random overlay with a TTL.

use std::collections::HashSet;

use rand::Rng;

use decent_sim::prelude::*;

/// Identifier of a shareable file.
pub type FileId = u32;

/// Flooding-overlay messages.
#[derive(Clone, Debug)]
pub enum FloodMsg {
    /// A flooded query.
    Query {
        /// Unique query id (for duplicate suppression).
        id: u64,
        /// File being searched.
        file: FileId,
        /// Remaining hops.
        ttl: u32,
        /// Node that issued the query (receives hits directly).
        origin: NodeId,
    },
    /// A query hit sent straight back to the origin.
    Hit {
        /// Query id this answers.
        id: u64,
        /// File found.
        file: FileId,
    },
}

/// Per-node behaviour and measurement state.
#[derive(Debug)]
pub struct FloodNode {
    neighbors: Vec<NodeId>,
    shared: HashSet<FileId>,
    seen: HashSet<u64>,
    /// Queries this node answered (it held the file).
    pub hits_served: u64,
    /// Query messages this node processed (relay load).
    pub queries_relayed: u64,
    /// Hits received for queries issued by this node: `(query, file, when)`.
    pub hits_received: Vec<(u64, FileId, SimTime)>,
}

impl FloodNode {
    /// Creates a node sharing the given file set.
    pub fn new(neighbors: Vec<NodeId>, shared: HashSet<FileId>) -> Self {
        FloodNode {
            neighbors,
            shared,
            seen: HashSet::new(),
            hits_served: 0,
            queries_relayed: 0,
            hits_received: Vec::new(),
        }
    }

    /// Whether the node shares nothing (a free rider).
    pub fn is_free_rider(&self) -> bool {
        self.shared.is_empty()
    }

    /// Number of files shared.
    pub fn shared_count(&self) -> usize {
        self.shared.len()
    }

    /// Issues a flooded query for `file` with the given TTL.
    pub fn query(&mut self, id: u64, file: FileId, ttl: u32, ctx: &mut Context<'_, FloodMsg>) {
        self.seen.insert(id);
        for &n in &self.neighbors.clone() {
            ctx.send(
                n,
                FloodMsg::Query {
                    id,
                    file,
                    ttl,
                    origin: ctx.id(),
                },
            );
        }
    }
}

impl Node for FloodNode {
    type Msg = FloodMsg;

    fn on_message(&mut self, from: NodeId, msg: FloodMsg, ctx: &mut Context<'_, FloodMsg>) {
        match msg {
            FloodMsg::Query {
                id,
                file,
                ttl,
                origin,
            } => {
                if !self.seen.insert(id) {
                    return; // duplicate
                }
                self.queries_relayed += 1;
                if self.shared.contains(&file) {
                    self.hits_served += 1;
                    ctx.send(origin, FloodMsg::Hit { id, file });
                }
                if ttl > 1 {
                    for &n in &self.neighbors.clone() {
                        if n != from {
                            ctx.send(
                                n,
                                FloodMsg::Query {
                                    id,
                                    file,
                                    ttl: ttl - 1,
                                    origin,
                                },
                            );
                        }
                    }
                }
            }
            FloodMsg::Hit { id, file } => {
                self.hits_received.push((id, file, ctx.now()));
            }
        }
    }
}

/// Parameters of the Gnutella-like population.
#[derive(Clone, Debug)]
pub struct FloodConfig {
    /// Total number of distinct files in the system.
    pub catalog_size: usize,
    /// Zipf exponent of file popularity.
    pub popularity_exponent: f64,
    /// Fraction of peers sharing nothing (Adar & Huberman measured ~0.66).
    pub free_rider_fraction: f64,
    /// Mean files shared by an ordinary sharer.
    pub mean_files_per_sharer: f64,
    /// Fraction of sharers that are "power sharers" with huge
    /// libraries. Adar & Huberman's concentration ("top 1% provide 37%
    /// of all files") requires this measured mixture: most sharers hold
    /// a handful of files, a few hold hundreds.
    pub power_sharer_fraction: f64,
    /// Library size range of a power sharer.
    pub power_library: (usize, usize),
    /// Overlay out-degree.
    pub degree: usize,
}

impl Default for FloodConfig {
    fn default() -> Self {
        FloodConfig {
            catalog_size: 1000,
            popularity_exponent: 0.8,
            free_rider_fraction: 0.66,
            mean_files_per_sharer: 12.0,
            power_sharer_fraction: 0.05,
            power_library: (200, 1000),
            degree: 4,
        }
    }
}

/// Builds a Gnutella-like network; returns node ids.
pub fn build_network<S: SchedulerFor<FloodNode>>(
    sim: &mut Simulation<FloodNode, S>,
    n: usize,
    cfg: &FloodConfig,
    seed: u64,
) -> Vec<NodeId> {
    let mut rng = rng_from_seed(seed);
    let graph = Graph::random_outbound(n, cfg.degree, &mut rng);
    let zipf = Zipf::new(cfg.catalog_size, cfg.popularity_exponent);
    (0..n)
        .map(|i| {
            let mut shared = HashSet::new();
            if rng.gen::<f64>() >= cfg.free_rider_fraction {
                // Measured mixture: a few power sharers with huge
                // libraries, everyone else with a handful of files.
                let count = if rng.gen::<f64>() < cfg.power_sharer_fraction {
                    rng.gen_range(cfg.power_library.0..=cfg.power_library.1)
                } else {
                    (Exp::with_mean(cfg.mean_files_per_sharer)
                        .sample(&mut rng)
                        .ceil() as usize)
                        .max(1)
                };
                for _ in 0..count.min(cfg.catalog_size) {
                    shared.insert(zipf.sample_rank(&mut rng) as FileId);
                }
            }
            sim.add_node(FloodNode::new(graph.neighbors(i).to_vec(), shared))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> (Simulation<FloodNode>, Vec<NodeId>) {
        let mut sim = Simulation::new(41, UniformLatency::from_millis(30.0, 120.0));
        let ids = build_network(&mut sim, 600, &FloodConfig::default(), 42);
        sim.run_until(SimTime::from_secs(0.1));
        (sim, ids)
    }

    #[test]
    fn popular_queries_succeed_rare_ones_fail_more() {
        let (mut sim, ids) = population();
        // 40 queries for the most popular file, 40 for a very rare one.
        for q in 0..40u64 {
            let origin = ids[(q as usize * 11) % ids.len()];
            sim.invoke(origin, |n, ctx| n.query(q, 0, 5, ctx));
            sim.invoke(origin, |n, ctx| n.query(1000 + q, 987, 5, ctx));
        }
        sim.run_until(SimTime::from_secs(30.0));
        let hits = |lo: u64, hi: u64| {
            ids.iter()
                .flat_map(|&i| sim.node(i).hits_received.iter())
                .filter(|(q, _, _)| *q >= lo && *q < hi)
                .count()
        };
        let answered = |lo: u64, hi: u64| {
            ids.iter()
                .flat_map(|&i| sim.node(i).hits_received.iter())
                .filter(|(q, _, _)| *q >= lo && *q < hi)
                .map(|(q, _, _)| *q)
                .collect::<HashSet<u64>>()
                .len()
        };
        // A TTL-5 flood over 600 well-connected nodes reaches nearly
        // everyone, so even rare files are *found*; the popularity skew
        // shows up in the number of providers answering.
        let popular_hits = hits(0, 40);
        let rare_hits = hits(1000, 1040);
        assert!(
            popular_hits as f64 > 3.0 * rare_hits as f64,
            "popular hits {popular_hits} rare hits {rare_hits}"
        );
        assert!(
            answered(0, 40) >= 35,
            "popular file should almost always be found"
        );
    }

    #[test]
    fn free_riders_still_get_answers_but_serve_none() {
        let (mut sim, ids) = population();
        let rider = ids
            .iter()
            .copied()
            .find(|&i| sim.node(i).is_free_rider())
            .expect("66% free riders");
        sim.invoke(rider, |n, ctx| n.query(1, 0, 5, ctx));
        sim.run_until(SimTime::from_secs(30.0));
        assert!(!sim.node(rider).hits_received.is_empty());
        assert_eq!(sim.node(rider).hits_served, 0);
    }

    #[test]
    fn ttl_bounds_the_flood() {
        let (mut sim, ids) = population();
        sim.invoke(ids[0], |n, ctx| n.query(1, 0, 2, ctx));
        sim.run_until(SimTime::from_secs(30.0));
        let reached: usize = ids
            .iter()
            .filter(|&&i| sim.node(i).queries_relayed > 0)
            .count();
        assert!(
            reached < ids.len() / 2,
            "TTL 2 should not blanket 600 nodes, reached {reached}"
        );
    }

    #[test]
    fn duplicate_suppression() {
        let (mut sim, ids) = population();
        sim.invoke(ids[0], |n, ctx| n.query(1, 0, 7, ctx));
        sim.run_until(SimTime::from_secs(30.0));
        // Each node processes a given query at most once.
        for &i in &ids {
            assert!(sim.node(i).queries_relayed <= 1);
        }
    }
}
