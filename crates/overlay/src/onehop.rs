//! One-hop overlay with full membership (Gupta, Liskov & Rodrigues,
//! HotOS 2003).
//!
//! Every node keeps the complete membership table, so lookups route in a
//! single hop; the price is maintenance bandwidth proportional to the
//! global join/leave rate. The paper argues (Section II-B) that for
//! 10K–100K reasonably stable nodes this trade is the right one —
//! experiment E6 quantifies it against Chord and Kademlia.
//!
//! Membership dissemination is modelled as periodic delta gossip: each
//! node pushes its recent membership events to a few random peers.

use std::collections::{BTreeMap, HashMap};

use rand::Rng;

use decent_sim::prelude::*;

use crate::id::Key;
use crate::kademlia::Contact;

/// A membership event (join or leave) with a per-subject version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemberEvent {
    /// The subject node.
    pub contact: Contact,
    /// Whether the subject is (believed) alive.
    pub alive: bool,
    /// Lamport-style version; higher wins.
    pub version: u64,
}

/// One-hop overlay messages.
#[derive(Clone, Debug)]
pub enum OneHopMsg {
    /// A batch of membership deltas.
    Deltas(Vec<MemberEvent>),
    /// Lookup request routed directly to the believed owner.
    Lookup {
        /// Correlation id at the origin.
        rpc: u64,
        /// Key being resolved.
        target: Key,
    },
    /// Owner's acknowledgement.
    LookupReply {
        /// Correlation id at the origin.
        rpc: u64,
    },
}

/// Protocol parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OneHopConfig {
    /// Gossip period for membership deltas.
    pub gossip_interval: SimDuration,
    /// Peers contacted per gossip round.
    pub gossip_fanout: usize,
    /// Lookup deadline.
    pub lookup_timeout: SimDuration,
    /// Bytes per membership entry on the wire.
    pub entry_bytes: u64,
}

impl Default for OneHopConfig {
    fn default() -> Self {
        OneHopConfig {
            gossip_interval: SimDuration::from_secs(5.0),
            gossip_fanout: 4,
            lookup_timeout: SimDuration::from_secs(10.0),
            entry_bytes: 40,
        }
    }
}

/// Outcome of a one-hop lookup, recorded at the origin.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OneHopLookupResult {
    /// Target key.
    pub target: Key,
    /// Time to acknowledgement (or to deadline).
    pub latency: SimDuration,
    /// Whether the believed owner answered in time.
    pub success: bool,
}

const TIMER_GOSSIP: u64 = 1;
const RPC_BASE: u64 = 16;

/// A one-hop overlay node. Implements [`Node`] for the engine.
#[derive(Debug)]
pub struct OneHopNode {
    key: Key,
    cfg: OneHopConfig,
    /// Believed membership: subject node -> (event, already-propagated?).
    /// A `BTreeMap`: gossip target selection and successor search walk
    /// the whole table, so the visit order must be the node-id order,
    /// not the hasher's.
    table: BTreeMap<NodeId, MemberEvent>,
    fresh: Vec<MemberEvent>,
    pending: HashMap<u64, (Key, SimTime)>,
    next_rpc: u64,
    version: u64,
    /// Completed lookups, harvested by the experiment harness.
    pub results: Vec<OneHopLookupResult>,
}

impl OneHopNode {
    /// Creates a node with the given overlay key.
    pub fn new(key: Key, cfg: OneHopConfig) -> Self {
        OneHopNode {
            key,
            cfg,
            table: BTreeMap::new(),
            fresh: Vec::new(),
            pending: HashMap::new(),
            next_rpc: RPC_BASE,
            version: 0,
            results: Vec::new(),
        }
    }

    /// This node's overlay key.
    pub fn key(&self) -> Key {
        self.key
    }

    /// Number of members believed alive.
    pub fn live_members(&self) -> usize {
        self.table.values().filter(|e| e.alive).count()
    }

    /// Seeds the full membership table (bootstrap).
    pub fn seed_membership(&mut self, members: &[Contact]) {
        for &contact in members {
            self.table.insert(
                contact.node,
                MemberEvent {
                    contact,
                    alive: true,
                    version: 0,
                },
            );
        }
    }

    /// The member believed responsible for `target` (successor on the
    /// ring of live members), if any.
    pub fn owner_of(&self, target: &Key) -> Option<Contact> {
        let live = self.table.values().filter(|e| e.alive);
        // Successor: smallest key >= target, wrapping to the global min.
        let mut best: Option<Contact> = None;
        let mut min: Option<Contact> = None;
        for e in live {
            let c = e.contact;
            if min.is_none_or(|m| c.key < m.key) {
                min = Some(c);
            }
            if c.key >= *target && best.is_none_or(|b| c.key < b.key) {
                best = Some(c);
            }
        }
        best.or(min)
    }

    /// Issues a one-hop lookup; result lands in [`OneHopNode::results`].
    pub fn start_lookup(&mut self, target: Key, ctx: &mut Context<'_, OneHopMsg>) -> u64 {
        let rpc = self.next_rpc;
        self.next_rpc += 1;
        self.pending.insert(rpc, (target, ctx.now()));
        ctx.set_timer(self.cfg.lookup_timeout, rpc);
        if let Some(owner) = self.owner_of(&target) {
            ctx.send(owner.node, OneHopMsg::Lookup { rpc, target });
        }
        rpc
    }

    fn apply_event(&mut self, ev: MemberEvent) -> bool {
        match self.table.get(&ev.contact.node) {
            Some(cur) if cur.version >= ev.version => false,
            _ => {
                self.table.insert(ev.contact.node, ev);
                true
            }
        }
    }

    /// Records a local observation (e.g. from the churn driver) that a
    /// member changed state, to be gossiped onwards.
    pub fn observe(&mut self, contact: Contact, alive: bool) {
        self.version += 1;
        let ev = MemberEvent {
            contact,
            alive,
            version: self.version,
        };
        if self.apply_event(ev) {
            self.fresh.push(ev);
        }
    }
}

impl Node for OneHopNode {
    type Msg = OneHopMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, OneHopMsg>) {
        let jitter = ctx.rng().gen::<f64>();
        ctx.set_timer(self.cfg.gossip_interval * jitter, TIMER_GOSSIP);
    }

    fn on_message(&mut self, from: NodeId, msg: OneHopMsg, ctx: &mut Context<'_, OneHopMsg>) {
        match msg {
            OneHopMsg::Deltas(events) => {
                for ev in events {
                    if self.apply_event(ev) {
                        self.fresh.push(ev);
                    }
                }
            }
            OneHopMsg::Lookup { rpc, .. } => {
                ctx.send(from, OneHopMsg::LookupReply { rpc });
            }
            OneHopMsg::LookupReply { rpc } => {
                if let Some((target, started)) = self.pending.remove(&rpc) {
                    self.results.push(OneHopLookupResult {
                        target,
                        latency: ctx.now().saturating_since(started),
                        success: true,
                    });
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, OneHopMsg>) {
        if tag == TIMER_GOSSIP {
            if !self.fresh.is_empty() {
                let deltas: Vec<MemberEvent> = self.fresh.drain(..).collect();
                let bytes = self.cfg.entry_bytes * deltas.len() as u64;
                // `table` is a BTreeMap keyed by node id, so this walk
                // yields peers in sorted order and runs stay
                // reproducible across processes.
                let peers: Vec<NodeId> = self
                    .table
                    .values()
                    .filter(|e| e.alive)
                    .map(|e| e.contact.node)
                    .collect();
                for _ in 0..self.cfg.gossip_fanout.min(peers.len()) {
                    let peer = peers[ctx.rng().gen_range(0..peers.len())];
                    ctx.send_sized(peer, OneHopMsg::Deltas(deltas.clone()), bytes);
                }
            }
            ctx.set_timer(self.cfg.gossip_interval, TIMER_GOSSIP);
            return;
        }
        if let Some((target, started)) = self.pending.remove(&tag) {
            self.results.push(OneHopLookupResult {
                target,
                latency: ctx.now().saturating_since(started),
                success: false,
            });
        }
    }
}

/// Builds a one-hop overlay of `n` nodes with fully seeded membership.
pub fn build_network<S: SchedulerFor<OneHopNode>>(
    sim: &mut Simulation<OneHopNode, S>,
    n: usize,
    cfg: OneHopConfig,
    seed: u64,
) -> Vec<NodeId> {
    let mut rng = rng_from_seed(seed);
    let keys: Vec<Key> = (0..n).map(|_| Key::random(&mut rng)).collect();
    let ids: Vec<NodeId> = keys
        .iter()
        .map(|&key| sim.add_node(OneHopNode::new(key, cfg)))
        .collect();
    let members: Vec<Contact> = ids
        .iter()
        .zip(&keys)
        .map(|(&node, &key)| Contact { node, key })
        .collect();
    for &id in &ids {
        sim.node_mut(id).seed_membership(&members);
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_takes_one_round_trip() {
        let mut sim = Simulation::new(31, ConstantLatency::from_millis(50.0));
        let ids = build_network(&mut sim, 200, OneHopConfig::default(), 32);
        sim.run_until(SimTime::from_secs(0.1));
        let t = Key::from_u64(999);
        sim.invoke(ids[0], |n, ctx| n.start_lookup(t, ctx));
        sim.run_until(SimTime::from_secs(5.0));
        let r = sim.node(ids[0]).results[0];
        assert!(r.success);
        // One hop out + one back = 100 ms (plus scheduling noise).
        assert!(
            (r.latency.as_millis() - 100.0).abs() < 5.0,
            "latency {}",
            r.latency
        );
    }

    #[test]
    fn owner_is_the_ring_successor() {
        let mut sim = Simulation::new(33, ConstantLatency::from_millis(1.0));
        let ids = build_network(&mut sim, 100, OneHopConfig::default(), 34);
        let t = Key::from_u64(123456);
        let owner = sim.node(ids[0]).owner_of(&t).unwrap();
        // Verify against brute force over the actual keys.
        let mut keys: Vec<(Key, NodeId)> = ids.iter().map(|&i| (sim.node(i).key(), i)).collect();
        keys.sort();
        let expected = keys
            .iter()
            .find(|(k, _)| *k >= t)
            .map(|&(_, i)| i)
            .unwrap_or(keys[0].1);
        assert_eq!(owner.node, expected);
    }

    #[test]
    fn stale_membership_fails_lookups_until_gossip_catches_up() {
        let mut sim = Simulation::new(35, ConstantLatency::from_millis(20.0));
        let ids = build_network(&mut sim, 120, OneHopConfig::default(), 36);
        sim.run_until(SimTime::from_secs(0.1));
        // Kill a node; lookups routed to it must time out at first.
        let t = Key::from_u64(55);
        let victim = sim.node(ids[0]).owner_of(&t).unwrap();
        sim.schedule_stop(victim.node, SimTime::from_secs(0.2));
        sim.run_until(SimTime::from_secs(0.5));
        let origin = ids.iter().copied().find(|&i| i != victim.node).unwrap();
        sim.invoke(origin, |n, ctx| n.start_lookup(t, ctx));
        sim.run_until(SimTime::from_secs(15.0));
        assert!(!sim.node(origin).results[0].success);
        // Now let some observer gossip the death.
        let observer = ids
            .iter()
            .copied()
            .find(|&i| i != victim.node && i != origin)
            .unwrap();
        sim.invoke(observer, |n, _ctx| n.observe(victim, false));
        sim.run_until(SimTime::from_secs(120.0));
        sim.invoke(origin, |n, ctx| n.start_lookup(t, ctx));
        sim.run_until(SimTime::from_secs(140.0));
        let r = sim.node(origin).results[1];
        assert!(r.success, "gossiped death should reroute the lookup");
    }

    #[test]
    fn deltas_propagate_epidemic_style() {
        let mut sim = Simulation::new(37, ConstantLatency::from_millis(10.0));
        let ids = build_network(&mut sim, 150, OneHopConfig::default(), 38);
        sim.run_until(SimTime::from_secs(0.1));
        let dead = Contact {
            node: ids[1],
            key: sim.node(ids[1]).key(),
        };
        sim.invoke(ids[0], |n, _| n.observe(dead, false));
        sim.run_until(SimTime::from_secs(200.0));
        let informed = ids
            .iter()
            .filter(|&&i| i != ids[1] && !sim.node(i).table[&dead.node].alive)
            .count();
        assert!(
            informed as f64 > 0.9 * (ids.len() - 1) as f64,
            "only {informed} informed"
        );
    }
}
