//! Pastry (Rowstron & Druschel, Middleware 2001).
//!
//! The third of the paper's four canonical DHTs (\[7\]): prefix routing
//! over hexadecimal digits with a **leaf set** for the final hops.
//! Each step either lands inside the leaf-set range (deliver to the
//! numerically closest member) or forwards to a routing-table entry
//! sharing a strictly longer prefix with the target — giving
//! `O(log_16 n)` hops.
//!
//! Maintenance is leaf-set heartbeating: dead leaves are evicted and
//! replaced from the live members' own leaf sets, mirroring the
//! protocol's lazy repair.

use std::collections::HashMap;

use rand::Rng;

use decent_sim::prelude::*;

use crate::id::{Key, KEY_BITS};
use crate::kademlia::Contact;

/// Hex digits in a 160-bit id.
pub const DIGITS: usize = KEY_BITS / 4;

/// Extracts hex digit `i` (0 = most significant) of a key.
pub fn digit(key: &Key, i: usize) -> usize {
    let byte = key.as_bytes()[i / 2];
    if i.is_multiple_of(2) {
        (byte >> 4) as usize
    } else {
        (byte & 0x0F) as usize
    }
}

/// Length of the shared hex-digit prefix of two keys.
pub fn shared_prefix(a: &Key, b: &Key) -> usize {
    for i in 0..DIGITS {
        if digit(a, i) != digit(b, i) {
            return i;
        }
    }
    DIGITS
}

/// Pastry wire messages.
#[derive(Clone, Debug)]
pub enum PastryMsg {
    /// A routed lookup.
    Route {
        /// Correlation id at the origin.
        rpc: u64,
        /// Key being resolved.
        target: Key,
        /// Origin node (receives the answer).
        origin: NodeId,
        /// Hops so far.
        hops: u32,
    },
    /// Delivery notice back to the origin.
    Delivered {
        /// Correlation id.
        rpc: u64,
        /// The responsible node.
        owner: Contact,
        /// Total hops.
        hops: u32,
    },
    /// Leaf-set heartbeat probe.
    LeafPing {
        /// Correlation id.
        rpc: u64,
    },
    /// Heartbeat response carrying the responder's leaf set.
    LeafPong {
        /// Correlation id.
        rpc: u64,
        /// Responder's contact.
        from: Contact,
        /// Responder's current leaf set.
        leaves: Vec<Contact>,
    },
}

/// Protocol parameters.
#[derive(Clone, Debug)]
pub struct PastryConfig {
    /// Leaf-set size (half smaller, half larger).
    pub leaf_set: usize,
    /// Heartbeat interval for leaf-set maintenance.
    pub heartbeat: SimDuration,
    /// Lookup deadline.
    pub lookup_timeout: SimDuration,
}

impl Default for PastryConfig {
    fn default() -> Self {
        PastryConfig {
            leaf_set: 8,
            heartbeat: SimDuration::from_secs(30.0),
            lookup_timeout: SimDuration::from_secs(30.0),
        }
    }
}

/// Outcome of a Pastry lookup, recorded at the origin.
#[derive(Clone, Debug, PartialEq)]
pub struct PastryLookupResult {
    /// Target key.
    pub target: Key,
    /// Lookup duration (or timeout).
    pub latency: SimDuration,
    /// Routing hops.
    pub hops: u32,
    /// Whether it completed before the deadline.
    pub success: bool,
    /// The responsible node, when successful.
    pub owner: Option<Contact>,
}

const TIMER_HEARTBEAT: u64 = 1;
const RPC_BASE: u64 = 16;

#[derive(Debug)]
enum Pending {
    Lookup { target: Key, started: SimTime },
    LeafProbe { peer: NodeId },
}

/// A Pastry node. Implements [`Node`] for the engine.
#[derive(Debug)]
pub struct PastryNode {
    key: Key,
    cfg: PastryConfig,
    /// Leaf set, sorted by key.
    leaves: Vec<Contact>,
    /// `table[row][col]`: a contact sharing `row` digits with us whose
    /// next digit is `col`.
    table: Vec<Vec<Option<Contact>>>,
    pending: HashMap<u64, Pending>,
    next_rpc: u64,
    next_leaf_probe: usize,
    /// Completed lookups, harvested by the experiment harness.
    pub results: Vec<PastryLookupResult>,
}

impl PastryNode {
    /// Creates a node with the given key.
    pub fn new(key: Key, cfg: PastryConfig) -> Self {
        PastryNode {
            key,
            cfg,
            leaves: Vec::new(),
            table: vec![vec![None; 16]; DIGITS],
            pending: HashMap::new(),
            next_rpc: RPC_BASE,
            next_leaf_probe: 0,
            results: Vec::new(),
        }
    }

    /// This node's key.
    pub fn key(&self) -> Key {
        self.key
    }

    /// Current leaf set (sorted by key).
    pub fn leaves(&self) -> &[Contact] {
        &self.leaves
    }

    /// Populated routing-table entries.
    pub fn table_entries(&self) -> usize {
        self.table.iter().flatten().flatten().count()
    }

    /// Installs a contact into the leaf set and routing table.
    pub fn learn(&mut self, c: Contact) {
        if c.key == self.key {
            return;
        }
        // Routing table slot.
        let row = shared_prefix(&self.key, &c.key);
        if row < DIGITS {
            let col = digit(&c.key, row);
            if self.table[row][col].is_none() {
                self.table[row][col] = Some(c);
            }
        }
        // Leaf set: keep the leaf_set keys closest to ours (by ring
        // distance approximated with numeric distance on both sides).
        if self.leaves.iter().any(|l| l.node == c.node) {
            return;
        }
        self.leaves.push(c);
        let me = self.key;
        self.leaves.sort_by_key(|l| l.key);
        if self.leaves.len() > self.cfg.leaf_set {
            // Drop the member farthest from us on the ring.
            let mut worst = 0;
            let mut worst_d = Key::ZERO;
            for (i, l) in self.leaves.iter().enumerate() {
                let d = ring_distance(&me, &l.key);
                if d >= worst_d {
                    worst_d = d;
                    worst = i;
                }
            }
            self.leaves.remove(worst);
        }
    }

    fn drop_peer(&mut self, node: NodeId) {
        self.leaves.retain(|l| l.node != node);
        for row in &mut self.table {
            for slot in row.iter_mut() {
                if slot.is_some_and(|c| c.node == node) {
                    *slot = None;
                }
            }
        }
    }

    /// Starts a lookup; the result lands in [`PastryNode::results`].
    pub fn start_lookup(&mut self, target: Key, ctx: &mut Context<'_, PastryMsg>) -> u64 {
        let rpc = self.next_rpc;
        self.next_rpc += 1;
        self.pending.insert(
            rpc,
            Pending::Lookup {
                target,
                started: ctx.now(),
            },
        );
        ctx.set_timer(self.cfg.lookup_timeout, rpc);
        self.route(rpc, target, ctx.id(), 0, ctx);
        rpc
    }

    /// One routing step.
    fn route(
        &mut self,
        rpc: u64,
        target: Key,
        origin: NodeId,
        hops: u32,
        ctx: &mut Context<'_, PastryMsg>,
    ) {
        let me = Contact {
            node: ctx.id(),
            key: self.key,
        };
        // Candidate set: leaves + routing entry + self.
        let next = self.next_hop(&target, &me);
        match next {
            Some(c) if c.node != ctx.id() => {
                ctx.send(
                    c.node,
                    PastryMsg::Route {
                        rpc,
                        target,
                        origin,
                        hops: hops + 1,
                    },
                );
            }
            _ => {
                // We are the numerically closest node we know: deliver.
                if origin == ctx.id() {
                    self.complete(rpc, me, hops, ctx);
                } else {
                    ctx.send(
                        origin,
                        PastryMsg::Delivered {
                            rpc,
                            owner: me,
                            hops,
                        },
                    );
                }
            }
        }
    }

    /// Whether `target` falls inside the arc covered by this node's
    /// leaf set (ring-aware, in both directions from our key).
    fn within_leaf_range(&self, target: &Key) -> bool {
        let half = Key::ZERO.add_pow2(KEY_BITS - 1); // 2^159
        let mut cw_max = Key::ZERO;
        let mut ccw_max = Key::ZERO;
        for l in &self.leaves {
            let cw = sub(&l.key, &self.key);
            if cw <= half && cw > cw_max {
                cw_max = cw;
            }
            let ccw = sub(&self.key, &l.key);
            if ccw <= half && ccw > ccw_max {
                ccw_max = ccw;
            }
        }
        let cw_t = sub(target, &self.key);
        let ccw_t = sub(&self.key, target);
        cw_t <= cw_max || ccw_t <= ccw_max
    }

    /// Pastry's next-hop rule (the paper's three cases, in order):
    ///
    /// 1. target within the leaf-set range → the numerically closest of
    ///    `self ∪ leaves` (self means deliver);
    /// 2. routing-table entry with a strictly longer shared prefix;
    /// 3. rare case: any known node with shared prefix ≥ ours that is
    ///    strictly closer numerically.
    ///
    /// The `(prefix, -distance)` potential strictly improves on every
    /// forward, so routing always terminates.
    fn next_hop(&self, target: &Key, me: &Contact) -> Option<Contact> {
        // Case 1: leaf-set delivery.
        if self.within_leaf_range(target) {
            let mut best = *me;
            let mut best_d = ring_distance(&me.key, target);
            for l in &self.leaves {
                let d = ring_distance(&l.key, target);
                if d < best_d {
                    best = *l;
                    best_d = d;
                }
            }
            return (best.node != me.node).then_some(best);
        }
        // Case 2: prefix routing.
        let my_prefix = shared_prefix(&self.key, target);
        if my_prefix < DIGITS {
            let col = digit(target, my_prefix);
            if let Some(c) = self.table[my_prefix][col] {
                return Some(c);
            }
        }
        // Case 3: rare case — same-or-longer prefix and strictly closer.
        let mut best = *me;
        let mut best_d = ring_distance(&me.key, target);
        for c in self
            .leaves
            .iter()
            .chain(self.table.iter().flatten().flatten())
        {
            if shared_prefix(&c.key, target) < my_prefix {
                continue;
            }
            let d = ring_distance(&c.key, target);
            if d < best_d {
                best = *c;
                best_d = d;
            }
        }
        (best.node != me.node).then_some(best)
    }

    fn complete(&mut self, rpc: u64, owner: Contact, hops: u32, ctx: &mut Context<'_, PastryMsg>) {
        if let Some(Pending::Lookup { target, started }) = self.pending.remove(&rpc) {
            self.results.push(PastryLookupResult {
                target,
                latency: ctx.now().saturating_since(started),
                hops,
                success: true,
                owner: Some(owner),
            });
        }
    }
}

/// Distance on the 2^160 ring (minimum of the two directions).
fn ring_distance(a: &Key, b: &Key) -> Key {
    // |a - b| as unsigned big-int, then min(d, 2^160 - d).
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let d = sub(hi, lo);
    // The other way around the ring: 2^160 - d = (MAX - d) + 1, which
    // add_pow2(0) supplies with the correct wrap at d = 0.
    let wrap = sub(&Key::MAX, &d).add_pow2(0);
    if d <= wrap {
        d
    } else {
        wrap
    }
}

fn sub(a: &Key, b: &Key) -> Key {
    let mut out = [0u8; 20];
    let mut borrow = 0i16;
    for i in (0..20).rev() {
        let mut v = a.as_bytes()[i] as i16 - b.as_bytes()[i] as i16 - borrow;
        if v < 0 {
            v += 256;
            borrow = 1;
        } else {
            borrow = 0;
        }
        out[i] = v as u8;
    }
    Key::from_bytes(out)
}

impl Node for PastryNode {
    type Msg = PastryMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, PastryMsg>) {
        let jitter = ctx.rng().gen::<f64>();
        ctx.set_timer(self.cfg.heartbeat * jitter.max(0.05), TIMER_HEARTBEAT);
    }

    fn on_message(&mut self, from: NodeId, msg: PastryMsg, ctx: &mut Context<'_, PastryMsg>) {
        match msg {
            PastryMsg::Route {
                rpc,
                target,
                origin,
                hops,
            } => self.route(rpc, target, origin, hops, ctx),
            PastryMsg::Delivered { rpc, owner, hops } => {
                if let Some(Pending::Lookup { target, started }) = self.pending.remove(&rpc) {
                    self.results.push(PastryLookupResult {
                        target,
                        latency: ctx.now().saturating_since(started),
                        hops,
                        success: true,
                        owner: Some(owner),
                    });
                }
            }
            PastryMsg::LeafPing { rpc } => {
                let me = Contact {
                    node: ctx.id(),
                    key: self.key,
                };
                ctx.send(
                    from,
                    PastryMsg::LeafPong {
                        rpc,
                        from: me,
                        leaves: self.leaves.clone(),
                    },
                );
            }
            PastryMsg::LeafPong {
                rpc,
                from: c,
                leaves,
            } => {
                self.pending.remove(&rpc);
                self.learn(c);
                for l in leaves {
                    self.learn(l);
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, PastryMsg>) {
        if tag == TIMER_HEARTBEAT {
            // Probe one leaf per round; silence evicts it next round.
            if !self.leaves.is_empty() {
                let idx = self.next_leaf_probe % self.leaves.len();
                self.next_leaf_probe += 1;
                let peer = self.leaves[idx].node;
                let rpc = self.next_rpc;
                self.next_rpc += 1;
                self.pending.insert(rpc, Pending::LeafProbe { peer });
                ctx.send(peer, PastryMsg::LeafPing { rpc });
                ctx.set_timer(self.cfg.heartbeat * 0.9, rpc);
            }
            ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
            return;
        }
        // RPC timeout.
        match self.pending.remove(&tag) {
            Some(Pending::Lookup { target, started }) => {
                let now = ctx.now();
                self.results.push(PastryLookupResult {
                    target,
                    latency: now.saturating_since(started),
                    hops: 0,
                    success: false,
                    owner: None,
                });
            }
            Some(Pending::LeafProbe { peer }) => self.drop_peer(peer),
            None => {}
        }
    }

    fn on_stop(&mut self, _ctx: &mut Context<'_, PastryMsg>) {
        self.pending.clear();
    }
}

/// Builds a pre-converged Pastry network; returns the node ids.
pub fn build_network<S: SchedulerFor<PastryNode>>(
    sim: &mut Simulation<PastryNode, S>,
    n: usize,
    cfg: &PastryConfig,
    seed: u64,
) -> Vec<NodeId> {
    let mut rng = rng_from_seed(seed);
    let mut keys: Vec<Key> = (0..n).map(|_| Key::random(&mut rng)).collect();
    keys.sort();
    keys.dedup();
    let ids: Vec<NodeId> = keys
        .iter()
        .map(|&key| sim.add_node(PastryNode::new(key, cfg.clone())))
        .collect();
    let n = ids.len();
    let contacts: Vec<Contact> = ids
        .iter()
        .zip(&keys)
        .map(|(&node, &key)| Contact { node, key })
        .collect();
    for i in 0..n {
        // Leaf set: ring neighbors on both sides.
        let half = cfg.leaf_set / 2;
        for d in 1..=half {
            let lo = contacts[(i + n - d) % n];
            let hi = contacts[(i + d) % n];
            sim.node_mut(ids[i]).learn(lo);
            sim.node_mut(ids[i]).learn(hi);
        }
        // Routing table: a random sample fills prefix slots.
        for _ in 0..(16 * 8) {
            let c = contacts[rng.gen_range(0..n)];
            sim.node_mut(ids[i]).learn(c);
        }
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network(n: usize, seed: u64) -> (Simulation<PastryNode>, Vec<NodeId>) {
        let mut sim = Simulation::new(seed, UniformLatency::from_millis(20.0, 80.0));
        let ids = build_network(&mut sim, n, &PastryConfig::default(), seed ^ 1);
        sim.run_until(SimTime::from_secs(0.5));
        (sim, ids)
    }

    /// The true owner is the node whose key minimizes ring distance.
    fn true_owner(sim: &Simulation<PastryNode>, ids: &[NodeId], target: &Key) -> NodeId {
        *ids.iter()
            .min_by_key(|&&id| ring_distance(&sim.node(id).key(), target))
            .expect("nodes")
    }

    #[test]
    fn digits_roundtrip() {
        let k = Key::from_u64(0xDEAD_BEEF);
        let mut rebuilt = 0usize;
        for i in 0..4 {
            rebuilt = rebuilt << 4 | digit(&k, i);
        }
        // First four digits are the top 16 bits of the key.
        assert_eq!(
            rebuilt,
            (k.as_bytes()[0] as usize) << 8 | k.as_bytes()[1] as usize
        );
        assert_eq!(shared_prefix(&k, &k), DIGITS);
    }

    #[test]
    fn lookups_reach_the_numerically_closest_node() {
        let (mut sim, ids) = network(300, 11);
        for i in 0..40u64 {
            let origin = ids[(i as usize * 13) % ids.len()];
            let t = Key::from_u64(50_000 + i);
            sim.invoke(origin, |n, ctx| {
                n.start_lookup(t, ctx);
            });
        }
        sim.run_until(SimTime::from_secs(120.0));
        let mut checked = 0;
        for &id in &ids {
            for r in &sim.node(id).results {
                assert!(r.success, "{r:?}");
                let owner = true_owner(&sim, &ids, &r.target);
                assert_eq!(
                    r.owner.unwrap().node,
                    owner,
                    "wrong owner for {:?}",
                    r.target
                );
                checked += 1;
            }
        }
        assert_eq!(checked, 40);
    }

    #[test]
    fn hops_are_logarithmic_base_16() {
        let (mut sim, ids) = network(512, 12);
        for i in 0..60u64 {
            let origin = ids[(i as usize * 7) % ids.len()];
            let t = Key::from_u64(90_000 + i);
            sim.invoke(origin, |n, ctx| {
                n.start_lookup(t, ctx);
            });
        }
        sim.run_until(SimTime::from_secs(120.0));
        let mut hops = Histogram::new();
        for &id in &ids {
            for r in &sim.node(id).results {
                hops.record(r.hops as f64);
            }
        }
        // log16(512) ≈ 2.25; prefix routing plus leaf hops stays small.
        assert!(hops.mean() < 6.0, "mean hops {}", hops.mean());
        assert!(hops.mean() >= 1.0);
    }

    #[test]
    fn leaf_heartbeats_evict_dead_members() {
        let (mut sim, ids) = network(80, 13);
        let victim = ids[7];
        // Find someone holding the victim in its leaf set.
        let holder = ids
            .iter()
            .copied()
            .find(|&i| i != victim && sim.node(i).leaves().iter().any(|l| l.node == victim))
            .expect("victim is someone's leaf");
        sim.schedule_stop(victim, SimTime::from_secs(1.0));
        sim.run_until(SimTime::from_mins(30.0));
        assert!(
            !sim.node(holder).leaves().iter().any(|l| l.node == victim),
            "dead leaf must be evicted"
        );
    }

    #[test]
    fn ring_distance_is_symmetric_and_wraps() {
        let a = Key::from_u64(1);
        let b = Key::from_u64(2);
        assert_eq!(ring_distance(&a, &b), ring_distance(&b, &a));
        // ZERO and MAX are adjacent on the ring.
        let d = ring_distance(&Key::ZERO, &Key::MAX);
        assert_eq!(
            d.leading_zeros(),
            KEY_BITS - 1,
            "wrap distance must be tiny"
        );
    }
}
