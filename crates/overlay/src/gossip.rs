//! Epidemic (gossip) broadcast over a static overlay graph.
//!
//! Infect-and-die push gossip: on first receipt of a rumor, a node
//! forwards it to `fanout` random neighbors after a small processing
//! delay. The paper credits gossip protocols as one of the lasting
//! contributions of P2P research (Section II); permissioned ledgers use
//! exactly this dissemination layer.

use std::collections::HashMap;

use rand::seq::SliceRandom;

use decent_sim::prelude::*;

/// A rumor being disseminated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rumor {
    /// Rumor identity.
    pub id: u64,
    /// Hops from the source.
    pub hops: u32,
}

/// Gossip parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GossipConfig {
    /// Number of random neighbors each node pushes a fresh rumor to.
    pub fanout: usize,
    /// Local processing delay before forwarding.
    pub process_delay: SimDuration,
    /// Payload size in bytes (affects bandwidth-aware networks).
    pub payload_bytes: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            fanout: 4,
            process_delay: SimDuration::from_millis(2.0),
            payload_bytes: 1024,
        }
    }
}

/// A gossip participant. Implements [`Node`] for the engine.
#[derive(Debug)]
pub struct GossipNode {
    cfg: GossipConfig,
    neighbors: Vec<NodeId>,
    /// Receipt time and hop count per rumor id.
    pub received: HashMap<u64, (SimTime, u32)>,
    pending: Vec<Rumor>,
}

const TIMER_FORWARD: u64 = 1;

impl GossipNode {
    /// Creates a node with the given neighbor set.
    pub fn new(cfg: GossipConfig, neighbors: Vec<NodeId>) -> Self {
        GossipNode {
            cfg,
            neighbors,
            received: HashMap::new(),
            pending: Vec::new(),
        }
    }

    /// Originates a rumor from this node.
    pub fn publish(&mut self, id: u64, ctx: &mut Context<'_, Rumor>) {
        self.received.insert(id, (ctx.now(), 0));
        self.forward(Rumor { id, hops: 0 }, ctx);
    }

    fn forward(&mut self, rumor: Rumor, ctx: &mut Context<'_, Rumor>) {
        let mut targets = self.neighbors.clone();
        targets.shuffle(ctx.rng());
        targets.truncate(self.cfg.fanout);
        for t in targets {
            ctx.send_sized(
                t,
                Rumor {
                    id: rumor.id,
                    hops: rumor.hops + 1,
                },
                self.cfg.payload_bytes,
            );
        }
    }
}

impl Node for GossipNode {
    type Msg = Rumor;

    fn on_message(&mut self, _from: NodeId, msg: Rumor, ctx: &mut Context<'_, Rumor>) {
        if self.received.contains_key(&msg.id) {
            return; // infect-and-die: forward only the first copy
        }
        self.received.insert(msg.id, (ctx.now(), msg.hops));
        self.pending.push(msg);
        ctx.set_timer(self.cfg.process_delay, TIMER_FORWARD);
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut Context<'_, Rumor>) {
        if let Some(rumor) = self.pending.pop() {
            self.forward(rumor, ctx);
        }
    }
}

/// Builds a gossip network over `graph` and returns the node ids.
pub fn build_network<S: SchedulerFor<GossipNode>>(
    sim: &mut Simulation<GossipNode, S>,
    graph: &Graph,
    cfg: GossipConfig,
) -> Vec<NodeId> {
    (0..graph.len())
        .map(|i| sim.add_node(GossipNode::new(cfg, graph.neighbors(i).to_vec())))
        .collect()
}

/// Fraction of online nodes that received rumor `id`.
pub fn delivery_ratio<S: SchedulerFor<GossipNode>>(
    sim: &Simulation<GossipNode, S>,
    ids: &[NodeId],
    rumor: u64,
) -> f64 {
    let total = ids.len().max(1);
    let got = ids
        .iter()
        .filter(|&&n| sim.node(n).received.contains_key(&rumor))
        .count();
    got as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_broadcast(fanout: usize, n: usize) -> (Simulation<GossipNode>, Vec<NodeId>) {
        let mut sim = Simulation::new(21, UniformLatency::from_millis(20.0, 100.0));
        let graph = Graph::random_outbound(n, 8, &mut rng_from_seed(22));
        let cfg = GossipConfig {
            fanout,
            ..GossipConfig::default()
        };
        let ids = build_network(&mut sim, &graph, cfg);
        sim.run_until(SimTime::from_secs(0.1));
        sim.invoke(ids[0], |node, ctx| node.publish(1, ctx));
        sim.run_until(SimTime::from_secs(30.0));
        (sim, ids)
    }

    #[test]
    fn high_fanout_reaches_almost_everyone() {
        let (sim, ids) = run_broadcast(6, 400);
        let ratio = delivery_ratio(&sim, &ids, 1);
        assert!(ratio > 0.95, "delivery ratio {ratio}");
    }

    #[test]
    fn fanout_one_dies_out() {
        let (sim, ids) = run_broadcast(1, 400);
        let ratio = delivery_ratio(&sim, &ids, 1);
        assert!(
            ratio < 0.8,
            "fanout 1 should not blanket the network: {ratio}"
        );
    }

    #[test]
    fn dissemination_latency_grows_logarithmically() {
        let (sim, ids) = run_broadcast(6, 400);
        let mut hops = Histogram::new();
        for &id in &ids {
            if let Some(&(_, h)) = sim.node(id).received.get(&1) {
                hops.record(h as f64);
            }
        }
        // log_fanout(400) is ~3.3; allow generous slack for randomness.
        assert!(hops.mean() < 12.0, "mean hops {}", hops.mean());
        assert!(hops.max() < 30.0);
    }

    #[test]
    fn duplicate_suppression_bounds_traffic() {
        let (sim, ids) = run_broadcast(4, 300);
        // Each node forwards at most once: <= n * fanout messages.
        assert!(sim.stats().sent <= (ids.len() as u64) * 4);
    }
}
