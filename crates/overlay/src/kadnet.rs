//! Kademlia on real sockets: wire codec, deterministic demo roster,
//! and the serve/probe drivers behind `repro --serve kad` / `--probe`.
//!
//! The protocol core in [`crate::kademlia`] is transport-generic; this
//! module supplies everything the TCP backend additionally needs:
//!
//! - a [`Wire`] codec for [`KadMsg`] (tagged little-endian encoding);
//! - a **deterministic roster**: node keys derived from `(seed, n)`
//!   alone, so a serve mesh and a probe in different processes agree
//!   on every overlay identity without any handshake;
//! - [`serve_mesh`] / [`probe_lookup`], the real-socket counterparts
//!   of `build_network` + `start_lookup`, shared by the repro CLI and
//!   the loopback equivalence test;
//! - [`sim_lookup`], the same topology and lookup driven through the
//!   sim backend, so tests can assert both backends converge to the
//!   same closest-contact set.
//!
//! Every mesh node is seeded with the full roster, which makes the
//! lookup's final `closest` set a pure function of the key material:
//! the initiator's shortlist starts at the true global k-closest and
//! no discovery can displace it, so the sim backend and the TCP
//! backend — wildly different in timing — must return identical
//! values. That is the property `tests/net_loopback.rs` pins.

use std::io;
use std::net::SocketAddr;

use decent_net::tcp::{wait_reachable, TcpNetBuilder, TcpRuntime};
use decent_net::wire::{
    get_exact, get_u32, get_u64, get_u8, put_bytes, put_u32, put_u64, put_u8, Wire, WireError,
};
use decent_sim::prelude::*;

use crate::id::Key;
use crate::kademlia::{Contact, KadConfig, KadMsg, KadNode, LookupResult};

const KEY_BYTES: usize = 20;

fn put_key(buf: &mut Vec<u8>, key: &Key) {
    put_bytes(buf, key.as_bytes());
}

fn get_key(r: &mut &[u8]) -> Result<Key, WireError> {
    let mut b = [0u8; KEY_BYTES];
    get_exact(r, &mut b)?;
    Ok(Key::from_bytes(b))
}

fn put_contacts(buf: &mut Vec<u8>, contacts: &[Contact]) {
    put_u32(buf, contacts.len() as u32);
    for c in contacts {
        put_u64(buf, c.node as u64);
        put_key(buf, &c.key);
    }
}

fn get_contacts(r: &mut &[u8]) -> Result<Interned<[Contact]>, WireError> {
    let count = get_u32(r)? as usize;
    // 28 bytes per entry: a hostile count beyond the remaining payload
    // is rejected before allocating.
    if count > r.len() / (8 + KEY_BYTES) {
        return Err(WireError::Invalid("contact count exceeds payload"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let node = get_u64(r)? as NodeId;
        let key = get_key(r)?;
        out.push(Contact { node, key });
    }
    Ok(Interned::from_vec(out))
}

const TAG_FIND_NODE: u8 = 0;
const TAG_FIND_NODE_REPLY: u8 = 1;
const TAG_FIND_VALUE: u8 = 2;
const TAG_FIND_VALUE_REPLY: u8 = 3;
const TAG_STORE: u8 = 4;

impl Wire for KadMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            KadMsg::FindNode {
                rpc,
                from_key,
                target,
            } => {
                put_u8(buf, TAG_FIND_NODE);
                put_u64(buf, *rpc);
                put_key(buf, from_key);
                put_key(buf, target);
            }
            KadMsg::FindNodeReply {
                rpc,
                from_key,
                closest,
            } => {
                put_u8(buf, TAG_FIND_NODE_REPLY);
                put_u64(buf, *rpc);
                put_key(buf, from_key);
                put_contacts(buf, closest);
            }
            KadMsg::FindValue { rpc, from_key, key } => {
                put_u8(buf, TAG_FIND_VALUE);
                put_u64(buf, *rpc);
                put_key(buf, from_key);
                put_key(buf, key);
            }
            KadMsg::FindValueReply {
                rpc,
                from_key,
                found,
                closest,
            } => {
                put_u8(buf, TAG_FIND_VALUE_REPLY);
                put_u64(buf, *rpc);
                put_key(buf, from_key);
                put_u8(buf, u8::from(*found));
                put_contacts(buf, closest);
            }
            KadMsg::Store { from_key, key } => {
                put_u8(buf, TAG_STORE);
                put_key(buf, from_key);
                put_key(buf, key);
            }
        }
    }

    fn decode(r: &mut &[u8]) -> Result<Self, WireError> {
        match get_u8(r)? {
            TAG_FIND_NODE => Ok(KadMsg::FindNode {
                rpc: get_u64(r)?,
                from_key: get_key(r)?,
                target: get_key(r)?,
            }),
            TAG_FIND_NODE_REPLY => Ok(KadMsg::FindNodeReply {
                rpc: get_u64(r)?,
                from_key: get_key(r)?,
                closest: get_contacts(r)?,
            }),
            TAG_FIND_VALUE => Ok(KadMsg::FindValue {
                rpc: get_u64(r)?,
                from_key: get_key(r)?,
                key: get_key(r)?,
            }),
            TAG_FIND_VALUE_REPLY => {
                let rpc = get_u64(r)?;
                let from_key = get_key(r)?;
                let found = match get_u8(r)? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Invalid("found flag")),
                };
                Ok(KadMsg::FindValueReply {
                    rpc,
                    from_key,
                    found,
                    closest: get_contacts(r)?,
                })
            }
            TAG_STORE => Ok(KadMsg::Store {
                from_key: get_key(r)?,
                key: get_key(r)?,
            }),
            _ => Err(WireError::Invalid("message tag")),
        }
    }
}

/// The probe's node id in a demo mesh of `n` servers (servers are
/// `0..n`, the probe is `n`).
pub fn probe_id(n: usize) -> NodeId {
    n
}

/// Deterministic demo identities: `n + 1` overlay keys (mesh nodes
/// `0..n` plus the probe at index `n`) derived from `seed` alone, so
/// independent processes compute identical rosters.
pub fn demo_keys(seed: u64, n: usize) -> Vec<Key> {
    // Fixed stream tag: roster keys come from their own derived stream
    // so they can never collide with the engine's per-node streams.
    let mut rng = rng_from_seed(derive_seed(seed, 0x4B41_4452));
    (0..=n).map(|_| Key::random(&mut rng)).collect()
}

/// The configuration both demo backends run: small buckets (the mesh
/// is small) and a generous RPC timeout so a loaded CI host cannot
/// spuriously fail real-socket RPCs.
pub fn demo_config() -> KadConfig {
    KadConfig {
        k: 8,
        alpha: 3,
        rpc_timeout: SimDuration::from_secs(5.0),
        ..KadConfig::default()
    }
}

/// Contacts `0..n` of the demo roster (the serve mesh; excludes the
/// probe identity).
pub fn demo_contacts(seed: u64, n: usize) -> Vec<Contact> {
    demo_keys(seed, n)
        .into_iter()
        .take(n)
        .enumerate()
        .map(|(node, key)| Contact { node, key })
        .collect()
}

/// A TCP-backed Kademlia mesh of `n` fully-seeded nodes, hosted in one
/// process. Bind addresses may use port 0; resolved addresses are in
/// [`KadMesh::addrs`].
#[derive(Debug)]
pub struct KadMesh {
    /// The runtime hosting all `n` mesh nodes.
    pub runtime: TcpRuntime<KadNode>,
    /// Roster contacts (node id = directory index).
    pub contacts: Vec<Contact>,
    /// Resolved listener addresses, indexed by node id.
    pub addrs: Vec<SocketAddr>,
}

/// Builds and seeds a TCP-backed demo mesh: `n` nodes with roster keys
/// `demo_keys(seed, n)[..n]`, every routing table seeded with the full
/// roster. Drive it with `mesh.runtime.poll(..)` to serve lookups.
pub fn serve_mesh(
    seed: u64,
    n: usize,
    cfg: &KadConfig,
    bind: &[SocketAddr],
) -> io::Result<KadMesh> {
    assert_eq!(bind.len(), n, "one bind address per mesh node");
    let keys = demo_keys(seed, n);
    let mut builder = TcpNetBuilder::new(seed);
    for i in 0..n {
        builder = builder.host(i, bind[i], KadNode::new(keys[i], cfg.clone()));
    }
    let mut runtime = builder.build()?;
    let contacts = demo_contacts(seed, n);
    let now = runtime.now();
    let addrs = (0..n)
        .map(|i| runtime.local_addr(i).expect("hosted node has an address"))
        .collect();
    for i in 0..n {
        runtime.node_mut(i).seed_routing_table(&contacts, now);
    }
    Ok(KadMesh {
        runtime,
        contacts,
        addrs,
    })
}

/// Dials a running serve mesh and performs one real-socket FIND_NODE
/// lookup for `target` from the probe identity, polling until the
/// lookup completes or `timeout` (wall clock) elapses.
///
/// `bind` is the probe's own listener address (port 0 is fine: replies
/// arrive over the connections the probe dials, not its listener).
/// Returns `Ok(None)` on timeout.
pub fn probe_lookup(
    seed: u64,
    cfg: &KadConfig,
    mesh_addrs: &[SocketAddr],
    bind: SocketAddr,
    target: Key,
    timeout: SimDuration,
) -> io::Result<Option<LookupResult>> {
    let n = mesh_addrs.len();
    let keys = demo_keys(seed, n);
    let probe = probe_id(n);
    let mut builder =
        TcpNetBuilder::new(seed).host(probe, bind, KadNode::new(keys[probe], cfg.clone()));
    for (i, &addr) in mesh_addrs.iter().enumerate() {
        builder = builder.peer(i, addr);
    }
    let mut runtime = builder.build()?;
    let contacts = demo_contacts(seed, n);
    let now = runtime.now();
    runtime.node_mut(probe).seed_routing_table(&contacts, now);
    let id = runtime.invoke(probe, |node, net| node.start_lookup(target, false, net));
    loop {
        runtime.poll(SimDuration::from_millis(50.0));
        if let Some(r) = runtime.node(probe).results.iter().find(|r| r.id == id) {
            return Ok(Some(r.clone()));
        }
        if runtime.now().saturating_since(SimTime::ZERO) > timeout {
            return Ok(None);
        }
    }
}

/// Re-exported for CLI drivers: wait until a mesh address accepts
/// connections (probe-side startup barrier).
pub fn wait_mesh_reachable(addr: SocketAddr, attempts: u32, delay: SimDuration) -> bool {
    wait_reachable(addr, attempts, delay)
}

/// The sim-backend twin of [`serve_mesh`] + [`probe_lookup`]: the same
/// roster, the same full-roster seeding, the same lookup — driven
/// through the deterministic engine. Returns the completed
/// [`LookupResult`].
///
/// Because every node knows the whole roster, the lookup's `closest`
/// set is timing-independent and must equal the TCP backend's byte for
/// byte (node ids and keys; latency and RPC counts legitimately
/// differ).
pub fn sim_lookup(seed: u64, n: usize, cfg: &KadConfig, target: Key) -> LookupResult {
    let keys = demo_keys(seed, n);
    let mut sim: Simulation<KadNode> =
        Simulation::new(seed, UniformLatency::from_millis(5.0, 25.0));
    for key in keys.iter().take(n + 1) {
        sim.add_node(KadNode::new(*key, cfg.clone()));
    }
    let contacts = demo_contacts(seed, n);
    let now = sim.now();
    for i in 0..=n {
        sim.node_mut(i).seed_routing_table(&contacts, now);
    }
    sim.run_until(SimTime::from_secs(1.0));
    let probe = probe_id(n);
    let id = sim.invoke(probe, |node, ctx| node.start_lookup(target, false, ctx));
    sim.run_until(SimTime::from_secs(120.0));
    sim.node(probe)
        .results
        .iter()
        .find(|r| r.id == id)
        .expect("sim lookup completes")
        .clone()
}

/// Keeps `build_network` reachable from this module's docs (the
/// sim-scale constructor the facade port left untouched).
pub use crate::kademlia::build_network as sim_build_network;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kadmsg_wire_roundtrip() {
        let contacts = [
            Contact {
                node: 3,
                key: Key::from_u64(99),
            },
            Contact {
                node: 7,
                key: Key::from_u64(1234),
            },
        ];
        let msgs = vec![
            KadMsg::FindNode {
                rpc: 42,
                from_key: Key::from_u64(1),
                target: Key::from_u64(2),
            },
            KadMsg::FindNodeReply {
                rpc: 42,
                from_key: Key::from_u64(3),
                closest: Interned::from_slice(&contacts),
            },
            KadMsg::FindValue {
                rpc: 43,
                from_key: Key::from_u64(4),
                key: Key::from_u64(5),
            },
            KadMsg::FindValueReply {
                rpc: 43,
                from_key: Key::from_u64(6),
                found: true,
                closest: Interned::from_slice(&[]),
            },
            KadMsg::Store {
                from_key: Key::from_u64(8),
                key: Key::from_u64(9),
            },
        ];
        for msg in msgs {
            let mut buf = Vec::new();
            msg.encode(&mut buf);
            let mut r = &buf[..];
            let back = KadMsg::decode(&mut r).expect("roundtrip decodes");
            assert!(r.is_empty(), "decode must consume the encoding exactly");
            // KadMsg has no PartialEq; compare re-encodings.
            let mut buf2 = Vec::new();
            back.encode(&mut buf2);
            assert_eq!(buf, buf2);
        }
    }

    #[test]
    fn hostile_contact_count_rejected() {
        let mut buf = Vec::new();
        put_u8(&mut buf, TAG_FIND_NODE_REPLY);
        put_u64(&mut buf, 1);
        put_key(&mut buf, &Key::from_u64(1));
        put_u32(&mut buf, u32::MAX); // contact count far beyond payload
        let mut r = &buf[..];
        assert!(KadMsg::decode(&mut r).is_err());
    }

    #[test]
    fn roster_is_deterministic_and_seed_sensitive() {
        assert_eq!(demo_keys(42, 8), demo_keys(42, 8));
        assert_ne!(demo_keys(42, 8), demo_keys(43, 8));
        // The probe identity extends the mesh roster without perturbing it.
        assert_eq!(demo_keys(42, 8)[..8], demo_keys(42, 8)[..8]);
    }
}
