//! Two-tier superpeer overlay (Kazaa / eMule / early-Skype style).
//!
//! Leaves register their shared-file index with one superpeer; queries go
//! leaf → superpeer → (flood among superpeers) → hit. The paper notes
//! (Section II) that superpeer overlays "solved the problem" of
//! Gnutella's slow flooding by concentrating routing on stable peers —
//! at the price of load concentration, which the tests quantify.

use std::collections::{HashMap, HashSet};

use rand::Rng;

use decent_sim::prelude::*;

use crate::flood::FileId;

/// Superpeer-overlay messages.
#[derive(Clone, Debug)]
pub enum SpMsg {
    /// Leaf registers its file list with its superpeer.
    Register {
        /// Files shared by the leaf.
        files: Vec<FileId>,
    },
    /// Query from a leaf to its superpeer.
    Query {
        /// Query id.
        id: u64,
        /// File searched.
        file: FileId,
        /// Leaf that issued the query.
        origin: NodeId,
    },
    /// Query forwarded among superpeers.
    SpQuery {
        /// Query id.
        id: u64,
        /// File searched.
        file: FileId,
        /// Leaf that issued the query.
        origin: NodeId,
        /// Remaining superpeer hops.
        ttl: u32,
    },
    /// Hit delivered to the querying leaf: `provider` holds the file.
    Hit {
        /// Query id this answers.
        id: u64,
        /// A node sharing the file.
        provider: NodeId,
    },
}

/// Role and state of a node in the two-tier overlay.
#[derive(Debug)]
pub enum SpNode {
    /// An index-holding superpeer.
    Super {
        /// Other superpeers (flooding mesh).
        peers: Vec<NodeId>,
        /// file -> providers among registered leaves.
        index: HashMap<FileId, Vec<NodeId>>,
        /// Duplicate suppression.
        seen: HashSet<u64>,
        /// Queries processed (load).
        load: u64,
    },
    /// An ordinary leaf.
    Leaf {
        /// This leaf's superpeer.
        parent: NodeId,
        /// Files this leaf shares.
        files: Vec<FileId>,
        /// Hits received: `(query, provider, when)`.
        hits: Vec<(u64, NodeId, SimTime)>,
    },
}

impl SpNode {
    /// Queries processed, when this is a superpeer.
    pub fn load(&self) -> u64 {
        match self {
            SpNode::Super { load, .. } => *load,
            SpNode::Leaf { .. } => 0,
        }
    }

    /// Hits received, when this is a leaf.
    pub fn hits(&self) -> &[(u64, NodeId, SimTime)] {
        match self {
            SpNode::Leaf { hits, .. } => hits,
            SpNode::Super { .. } => &[],
        }
    }

    /// Issues a query from a leaf.
    ///
    /// # Panics
    ///
    /// Panics if called on a superpeer.
    pub fn query(&mut self, id: u64, file: FileId, ctx: &mut Context<'_, SpMsg>) {
        match self {
            SpNode::Leaf { parent, .. } => {
                let origin = ctx.id();
                ctx.send(*parent, SpMsg::Query { id, file, origin });
            }
            SpNode::Super { .. } => panic!("superpeers do not issue leaf queries"),
        }
    }
}

impl Node for SpNode {
    type Msg = SpMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, SpMsg>) {
        if let SpNode::Leaf { parent, files, .. } = self {
            if !files.is_empty() {
                ctx.send(
                    *parent,
                    SpMsg::Register {
                        files: files.clone(),
                    },
                );
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: SpMsg, ctx: &mut Context<'_, SpMsg>) {
        match (&mut *self, msg) {
            (SpNode::Super { index, .. }, SpMsg::Register { files }) => {
                for f in files {
                    index.entry(f).or_default().push(from);
                }
            }
            (
                SpNode::Super {
                    peers,
                    index,
                    seen,
                    load,
                },
                SpMsg::Query { id, file, origin },
            ) => {
                seen.insert(id);
                *load += 1;
                if let Some(providers) = index.get(&file) {
                    let provider = providers[ctx.rng().gen_range(0..providers.len())];
                    ctx.send(origin, SpMsg::Hit { id, provider });
                    return;
                }
                for &p in peers.iter() {
                    ctx.send(
                        p,
                        SpMsg::SpQuery {
                            id,
                            file,
                            origin,
                            ttl: 2,
                        },
                    );
                }
            }
            (
                SpNode::Super {
                    peers,
                    index,
                    seen,
                    load,
                },
                SpMsg::SpQuery {
                    id,
                    file,
                    origin,
                    ttl,
                },
            ) => {
                if !seen.insert(id) {
                    return;
                }
                *load += 1;
                if let Some(providers) = index.get(&file) {
                    let provider = providers[ctx.rng().gen_range(0..providers.len())];
                    ctx.send(origin, SpMsg::Hit { id, provider });
                    return;
                }
                if ttl > 1 {
                    for &p in peers.iter() {
                        if p != from {
                            ctx.send(
                                p,
                                SpMsg::SpQuery {
                                    id,
                                    file,
                                    origin,
                                    ttl: ttl - 1,
                                },
                            );
                        }
                    }
                }
            }
            (SpNode::Leaf { hits, .. }, SpMsg::Hit { id, provider }) => {
                hits.push((id, provider, ctx.now()));
            }
            // Stray messages after role confusion (e.g. hit to a superpeer)
            // are ignored.
            _ => {}
        }
    }
}

/// Builds a two-tier overlay: `n_super` superpeers in a full mesh, each
/// leaf attached to a random superpeer. Returns `(superpeers, leaves)`.
pub fn build_network<S: SchedulerFor<SpNode>>(
    sim: &mut Simulation<SpNode, S>,
    n_super: usize,
    n_leaves: usize,
    files_per_leaf: impl Fn(usize, &mut SimRng) -> Vec<FileId>,
    seed: u64,
) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut rng = rng_from_seed(seed);
    let supers: Vec<NodeId> = (0..n_super)
        .map(|_| {
            sim.add_node(SpNode::Super {
                peers: Vec::new(),
                index: HashMap::new(),
                seen: HashSet::new(),
                load: 0,
            })
        })
        .collect();
    for &s in &supers {
        let peers: Vec<NodeId> = supers.iter().copied().filter(|&p| p != s).collect();
        if let SpNode::Super { peers: p, .. } = sim.node_mut(s) {
            *p = peers;
        }
    }
    let leaves: Vec<NodeId> = (0..n_leaves)
        .map(|i| {
            let parent = supers[rng.gen_range(0..supers.len())];
            let files = files_per_leaf(i, &mut rng);
            sim.add_node(SpNode::Leaf {
                parent,
                files,
                hits: Vec::new(),
            })
        })
        .collect();
    (supers, leaves)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_files(i: usize, _rng: &mut SimRng) -> Vec<FileId> {
        // A third of leaves share files; file ids cluster small.
        if i.is_multiple_of(3) {
            vec![(i % 50) as FileId]
        } else {
            Vec::new()
        }
    }

    fn network() -> (Simulation<SpNode>, Vec<NodeId>, Vec<NodeId>) {
        let mut sim = Simulation::new(51, UniformLatency::from_millis(20.0, 80.0));
        let (supers, leaves) = build_network(&mut sim, 10, 500, shared_files, 52);
        sim.run_until(SimTime::from_secs(1.0));
        (sim, supers, leaves)
    }

    #[test]
    fn queries_resolve_in_few_hops() {
        let (mut sim, _s, leaves) = network();
        let start = sim.now();
        sim.invoke(leaves[1], |n, ctx| n.query(1, 3, ctx));
        sim.run_until(SimTime::from_secs(10.0));
        let hits = sim.node(leaves[1]).hits();
        // A superpeer flood can yield one hit per indexing superpeer.
        assert!(!hits.is_empty(), "query should hit at least once");
        assert!(hits.iter().all(|(id, _, _)| *id == 1));
        let rtt = hits[0].2.saturating_since(start);
        // Leaf -> SP -> (<=2 SP hops) -> leaf: well under a second.
        assert!(rtt.as_secs() < 1.0, "rtt {rtt}");
    }

    #[test]
    fn load_concentrates_on_superpeers() {
        let (mut sim, supers, leaves) = network();
        for q in 0..200u64 {
            let leaf = leaves[(q as usize * 7) % leaves.len()];
            let file = (q % 50) as FileId;
            sim.invoke(leaf, |n, ctx| n.query(q, file, ctx));
        }
        sim.run_until(SimTime::from_secs(60.0));
        let sp_load: u64 = supers.iter().map(|&s| sim.node(s).load()).sum();
        assert!(sp_load >= 200, "superpeers carry all query load: {sp_load}");
        for &l in &leaves {
            assert_eq!(sim.node(l).load(), 0);
        }
    }

    #[test]
    fn missing_files_produce_no_hits() {
        let (mut sim, _s, leaves) = network();
        sim.invoke(leaves[0], |n, ctx| n.query(9, 40_000, ctx));
        sim.run_until(SimTime::from_secs(10.0));
        assert!(sim.node(leaves[0]).hits().is_empty());
    }
}
