//! Golden self-tests: each fixture under `tests/fixtures/` carries a
//! deliberately seeded set of violations, and the `.expected` file next
//! to it pins the exact findings (file, line, rule, message) the
//! analyzer must produce. Run with `DECENT_LINT_BLESS=1` to regenerate
//! the expectations after an intentional analyzer change.

use std::path::PathBuf;

use decent_lint::analyze_source;

/// (fixture file, analyzed as sim-facing?). Fixtures live in a
/// subdirectory so neither cargo (not a test target) nor the workspace
/// walker (skips `fixtures` dirs) ever picks them up as real sources.
const FIXTURES: &[(&str, bool)] = &[
    ("d001_hash_iteration.rs", true),
    ("d002_wall_clock.rs", true),
    ("d003_randomness.rs", true),
    ("d004_ambient_env.rs", true),
    ("d005_unsafe.rs", true),
    ("d006_rc.rs", true),
    ("d007_atomics.rs", true),
    ("d008_float_sort.rs", true),
    ("d009_sort_unstable.rs", true),
    ("d010_blocking_sync.rs", true),
    ("alias_evasion.rs", true),
    ("unused_pragma.rs", true),
    ("clean.rs", true),
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

fn render(name: &str, sim_facing: bool) -> String {
    let path = fixture_dir().join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    let findings = analyze_source(name, &src, sim_facing);
    let mut out = String::new();
    for f in &findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn fixtures_match_expected_findings() {
    let bless = std::env::var_os("DECENT_LINT_BLESS").is_some();
    let mut failures = Vec::new();
    for &(name, sim_facing) in FIXTURES {
        let actual = render(name, sim_facing);
        let expected_path = fixture_dir().join(format!(
            "{}.expected",
            name.strip_suffix(".rs").expect("fixture ends in .rs")
        ));
        if bless {
            std::fs::write(&expected_path, &actual).expect("write blessed expectations");
            continue;
        }
        let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!(
                "cannot read {} (run with DECENT_LINT_BLESS=1 to create): {e}",
                expected_path.display()
            )
        });
        if actual != expected {
            failures.push(format!(
                "{name}: findings drifted from golden file\n--- expected\n{expected}--- actual\n{actual}"
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Every D rule (and the unused-pragma meta rule) must be exercised by
/// at least one fixture — the golden files cannot silently decay into
/// testing nothing.
#[test]
fn fixtures_cover_every_rule() {
    let mut seen = std::collections::BTreeSet::new();
    for &(name, sim_facing) in FIXTURES {
        for f in analyze_source(
            name,
            &std::fs::read_to_string(fixture_dir().join(name)).expect("fixture readable"),
            sim_facing,
        ) {
            seen.insert(f.rule.code().to_string());
        }
    }
    for code in [
        "D001", "D002", "D003", "D004", "D005", "D006", "D007", "D008", "D009", "D010", "P000",
        "P001",
    ] {
        assert!(seen.contains(code), "no fixture exercises {code}");
    }
}

/// The clean fixture really is clean, and the suppressed D002 site in
/// the wall-clock fixture counts as a used pragma (not P000).
#[test]
fn clean_fixture_and_pragma_use() {
    assert_eq!(render("clean.rs", true), "");
    let src = std::fs::read_to_string(fixture_dir().join("d002_wall_clock.rs")).unwrap();
    let (findings, used) = decent_lint::analyze_source_with_stats("d002_wall_clock.rs", &src, true);
    assert_eq!(
        used, 1,
        "the shimmed Instant::now pragma must register as used"
    );
    assert!(
        findings.iter().all(|f| f.rule.code() != "P000"),
        "no unused-pragma finding expected in d002 fixture"
    );
}
