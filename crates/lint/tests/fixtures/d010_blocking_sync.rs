//! Fixture: D010 — blocking synchronization in sim-facing code.
use std::sync::mpsc;
use std::sync::Mutex as Lock;
use std::sync::{Condvar, RwLock};

struct Shared {
    slots: Lock<Vec<u64>>,
    readers: RwLock<u64>,
    wakeup: Condvar,
}

fn violations(s: &Shared) {
    let _guard = s.slots.lock().unwrap();
    let _r = s.readers.read().unwrap();
    let (_tx, _rx) = mpsc::channel::<u64>();
}

fn legal() {
    // Arc alone is fine: sharing immutable data is not blocking.
    let _shared = std::sync::Arc::new(7u64);
}
