//! Fixture: D008 — `partial_cmp` comparators over floats.

fn violations(xs: &mut Vec<f64>, pairs: &mut [(f64, u64)]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN"));
    let _rank = xs.binary_search_by(|p| p.partial_cmp(&0.5).unwrap());
}

fn legal(xs: &mut Vec<f64>) {
    // total_cmp is a total order over every bit pattern.
    xs.sort_by(|a, b| a.total_cmp(b));
}

struct Wrapper(f64);

impl PartialEq for Wrapper {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}

impl PartialOrd for Wrapper {
    // Defining partial_cmp is not calling it.
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}
