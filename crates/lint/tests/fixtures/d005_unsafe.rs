// Fixture: D005 — unsafe blocks.
fn violation(p: *const u64) -> u64 {
    unsafe { *p }
}
