//! Fixture: D007 — shared-atomic mutation in sim-facing code.
use std::sync::atomic::{AtomicU64, Ordering};

fn violations(counter: &AtomicU64) {
    counter.store(7, Ordering::Relaxed);
    counter.swap(1, Ordering::Relaxed);
    let _ = counter.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed);
    let _old = counter.fetch_add(1, Ordering::Relaxed);
    counter.fetch_max(9, Ordering::Relaxed);
    let _v = counter.load(Ordering::Acquire);
}

fn legal(counter: &AtomicU64, v: &mut Vec<u32>) -> u64 {
    // A Relaxed load is not a mutation; slice::swap has no Ordering
    // argument and must not be mistaken for an atomic.
    v.swap(0, 1);
    // decent-lint: allow(D007) reason="merge-only counter read after the window barrier"
    counter.fetch_add(1, Ordering::Relaxed);
    counter.load(Ordering::Relaxed)
}
