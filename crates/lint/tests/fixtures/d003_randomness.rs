// Fixture: D003 — unseeded randomness. Seeded construction is legal.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn violations() -> u64 {
    let mut rng = rand::thread_rng();
    let a: u64 = rng.gen();
    let b: u64 = rand::random();
    let mut c = StdRng::from_entropy();
    a + b + c.gen::<u64>()
}

fn legal(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen()
}
