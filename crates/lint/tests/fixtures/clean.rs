// Fixture: a fully contract-conformant sim-facing file — BTree
// collections, seeded RNG, virtual time only. Expected findings: none.
use std::collections::{BTreeMap, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Sim {
    queue: BTreeMap<u64, u64>,
    index: HashMap<u64, usize>,
}

fn step(sim: &mut Sim, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let key: u64 = rng.gen();
    let slot = sim.index.get(&key).copied().unwrap_or(0);
    for (t, v) in &sim.queue {
        if *t > key {
            return *v + slot as u64;
        }
    }
    sim.index.len() as u64
}
