//! Fixture: import-alias evasion. Under the flat scanner (PR 5–9)
//! every site below passed, because the rules matched literal
//! identifiers and these names are all renamed at import. The symbol
//! layer resolves each alias to its canonical path before matching.
use std::collections::HashMap as FastMap;
use std::rc::Rc as Shared;
use std::sync::Mutex as Lock;
use std::time::Instant as Clock;

type Table = FastMap<u64, u32>;

fn d001_via_alias(m: &FastMap<u64, u32>) -> Vec<u64> {
    m.keys().copied().collect()
}

fn d001_via_type_alias() -> usize {
    let t: Table = Table::new();
    let mut n = 0;
    for _ in t.iter() {
        n += 1;
    }
    n
}

fn d002_via_alias() {
    let _t0 = Clock::now();
}

fn d006_via_alias() -> Shared<u64> {
    Shared::new(1)
}

fn d010_via_alias() -> Lock<u64> {
    Lock::new(0)
}

fn scoped_alias_expires() {
    {
        use std::collections::HashSet as Probe;
        let s: Probe<u64> = Probe::new();
        let _n = s.len();
    }
    // Outside the block the alias is gone; this Probe is a local type
    // and must not register as a hash collection.
    struct Probe;
    let _p = Probe;
}
