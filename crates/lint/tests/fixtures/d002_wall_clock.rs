// Fixture: D002 — wall-clock reads. The pragma-covered site must be
// suppressed; the naked ones must be reported.
use std::time::{Instant, SystemTime, UNIX_EPOCH};

fn naked() -> f64 {
    let t0 = Instant::now();
    let epoch = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_secs_f64();
    t0.elapsed().as_secs_f64() + epoch
}

fn shimmed() -> Instant {
    // decent-lint: allow(D002) reason="fixture: allowlisted timing shim"
    Instant::now()
}
