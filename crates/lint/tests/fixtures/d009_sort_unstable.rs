//! Fixture: D009 — keyed unstable sorts without an injectivity pragma.

fn violations(entries: &mut Vec<(u64, String)>) {
    entries.sort_unstable_by_key(|e| e.0);
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
}

fn legal(ids: &mut Vec<u64>, entries: &mut Vec<(u64, u64)>) {
    // Plain sort_unstable is exempt: equal elements are
    // indistinguishable, so every output permutation is identical.
    ids.sort_unstable();
    // decent-lint: allow(D009) reason="(key, node) is injective: node ids are unique in this slice"
    entries.sort_unstable_by_key(|e| (e.0, e.1));
    // The stable sort needs no argument at all.
    entries.sort_by_key(|e| e.0);
}
