// Fixture: D001 — order-sensitive HashMap/HashSet iteration in
// sim-facing code. The legal block at the bottom must stay silent.
use std::collections::{HashMap, HashSet};

struct Tracker {
    pending: HashMap<u64, u64>,
}

fn violations(scores: HashMap<u64, u64>, seen: HashSet<u64>, t: &Tracker) -> Vec<u64> {
    let mut out = Vec::new();
    for k in scores.keys() {
        out.push(*k);
    }
    for v in &seen {
        out.push(*v);
    }
    let firsts: Vec<u64> = t.pending.values().copied().collect();
    out.extend(firsts);
    out.extend(scores.iter().map(|(k, _)| *k));
    out
}

fn legal(scores: &HashMap<u64, u64>, seen: &HashSet<u64>) -> u64 {
    let total: u64 = scores.values().sum();
    let hits = seen.iter().filter(|v| **v > 3).count();
    let sorted: std::collections::BTreeSet<u64> =
        scores.keys().copied().collect::<std::collections::BTreeSet<_>>();
    let any_big = scores.values().any(|v| *v > 10);
    let point = scores.get(&1).copied().unwrap_or(0);
    let n = scores.len() as u64;
    total + hits as u64 + sorted.len() as u64 + u64::from(any_big) + point + n
}
