// Fixture: D006 — non-Send Rc shared state in a sim-facing crate.
use std::rc::Rc;

struct Violation {
    shared: Rc<Vec<u64>>,
}

fn violation() -> Rc<u64> {
    Rc::new(7)
}

fn qualified() -> std::rc::Rc<u64> {
    std::rc::Rc::new(9)
}

// Arc is Send-safe and must never match.
fn fine() -> std::sync::Arc<u64> {
    std::sync::Arc::new(11)
}

// decent-lint: allow(D006) reason="exercises the suppression grammar"
fn suppressed() -> Rc<u64> { Rc::new(13) }
