// Fixture: D004 — ambient process state in sim-facing code.
use std::env;

fn violations() -> String {
    let direct = std::env::var("DECENT_SEED").unwrap_or_default();
    let imported = env::var("DECENT_JOBS").unwrap_or_default();
    direct + &imported
}
