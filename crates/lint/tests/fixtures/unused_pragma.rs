// Fixture: P000/P001 — a pragma that suppresses nothing is itself an
// error, and a malformed pragma (missing reason) is reported too.
// decent-lint: allow(D002) reason="covers no finding on the next line"
fn nothing_to_suppress() -> u64 {
    7
}

// decent-lint: allow(D003)
fn missing_reason() -> u64 {
    11
}
