//! Per-file rule engine: runs the determinism rules over a token
//! stream, applies `decent-lint: allow(...)` pragmas, and reports
//! pragmas that suppressed nothing.
//!
//! Since PR 10 the engine is scope-aware: every file first gets a
//! [`ScopeTree`] (brace-matched fn/impl/mod/block regions) and a
//! [`SymbolTable`] (per-scope `use`-tree and `type` aliases), and rules
//! match *canonical* names through [`SymbolTable::canonical_last`] —
//! so `use std::collections::HashMap as FastMap;` no longer evades
//! D001, and a function-local alias shadows a file-level one exactly as
//! rustc resolves it.

use std::collections::BTreeSet;

use crate::lex::{lex, Tok, TokKind};
use crate::rules::{Finding, Rule};
use crate::scope::{ScopeKind, ScopeTree};
use crate::symbols::SymbolTable;

/// Iteration methods on `HashMap`/`HashSet` whose visit order is the
/// hasher's (D001 trigger set).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Commutative / order-insensitive chain terminators: an iteration that
/// ends in one of these produces the same value under any visit order.
const ORDER_INSENSITIVE: &[&str] = &[
    "count",
    "sum",
    "product",
    "min",
    "max",
    "all",
    "any",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
];

/// Order-preserving adapters the chain scanner may look through on its
/// way to a terminator. Deliberately conservative: anything not listed
/// here (e.g. `take`, `fold`, `for_each`, `enumerate`) ends the scan
/// and the site is reported.
const NEUTRAL_ADAPTERS: &[&str] = &[
    "filter",
    "map",
    "flat_map",
    "flatten",
    "cloned",
    "copied",
    "filter_map",
    "inspect",
];

/// Atomic RMW methods whose result depends on operation order (D007):
/// last-writer-wins or read-modify-write shapes the window-barrier
/// merge protocol cannot linearize.
const ATOMIC_NONCOMMUTATIVE: &[&str] = &[
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

/// Commutative atomic RMWs: tolerated as merge-only counters, but only
/// under a pragma documenting that the value is read exclusively after
/// the window barrier (D007's checked-annotation half).
const ATOMIC_COMMUTATIVE: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
];

/// Memory orderings that advertise cross-thread happens-before edges
/// the merge protocol neither needs nor honours (D007).
const STRONG_ORDERINGS: &[&str] = &["Acquire", "Release", "AcqRel", "SeqCst"];

/// Blocking synchronization primitives banned from sim-facing code
/// (D010); matched on the canonical final path segment so `use
/// std::sync::Mutex as Lock;` still trips the rule.
const BLOCKING_SYNC: &[&str] = &["Mutex", "RwLock", "Condvar", "mpsc"];

/// Keyed unstable sorts whose output permutation is unspecified under
/// key ties (D009). Plain `sort_unstable()` is exempt: equal elements
/// are indistinguishable, so every permutation serializes identically.
const UNSTABLE_KEYED_SORTS: &[&str] = &["sort_unstable_by", "sort_unstable_by_key"];

/// Crates whose code feeds simulations (D001/D004/D006–D010 apply).
/// Everything in the workspace gets D002/D003/D005.
pub const SIM_FACING_CRATES: &[&str] = &[
    "decent-sim",
    "decent-overlay",
    "decent-chain",
    "decent-bft",
    "decent-edge",
    "decent-core",
    "decent-net",
];

/// Files that legitimately touch wall-clock time, OS entropy, threads
/// and real synchronization: the real-network backends behind the
/// transport facade (DESIGN.md §4h). D002/D003 and the shared-state
/// rules D007/D010 are skipped here — and ONLY here — so the
/// deterministic sim side of `decent-net` stays fully enforced while
/// the TCP side can use `Instant`, sockets, channels and locks. Paths
/// are workspace-relative and must be listed file-by-file; no globs, so
/// the allowlist cannot silently grow.
pub const REAL_TIME_PATHS: &[&str] = &["crates/net/src/tcp.rs"];

/// A parsed suppression pragma.
#[derive(Debug)]
struct Pragma {
    /// Line of the pragma comment itself.
    line: u32,
    /// Line whose findings it suppresses.
    covers: u32,
    /// Rules it allows.
    rules: Vec<Rule>,
    /// How many findings it suppressed.
    uses: usize,
}

/// One canonical path use-site: the leading identifier (resolved
/// through the symbol table when a binding is visible) plus any
/// `::segment` continuation, e.g. `Clock::now` under
/// `use std::time::Instant as Clock;` yields
/// `["std", "time", "Instant", "now"]`.
struct PathUse {
    line: u32,
    raw_first: String,
    resolved: bool,
    segs: Vec<String>,
}

impl PathUse {
    /// `" (via `alias`)"` when the site only matched through symbol
    /// resolution, empty otherwise — so findings name the canonical
    /// item while still pointing at what the file actually wrote.
    fn note(&self) -> String {
        if self.resolved && !self.segs.contains(&self.raw_first) {
            format!(" (via `{}`)", self.raw_first)
        } else {
            String::new()
        }
    }
}

/// Analyzes one file's source. `file` is used verbatim in findings;
/// `sim_facing` switches on D001/D004/D006–D010 in addition to
/// D002/D003/D005.
pub fn analyze_source(file: &str, src: &str, sim_facing: bool) -> Vec<Finding> {
    analyze_source_with_stats(file, src, sim_facing).0
}

/// Like [`analyze_source`], but also reports how many pragmas in the
/// file suppressed at least one finding (for the summary tail).
pub fn analyze_source_with_stats(file: &str, src: &str, sim_facing: bool) -> (Vec<Finding>, usize) {
    let toks = lex(src);
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();

    let mut findings: BTreeSet<(u32, Rule, String)> = BTreeSet::new();
    let (mut pragmas, malformed) = parse_pragmas(&toks, &code);
    for (line, msg) in malformed {
        findings.insert((line, Rule::P001, msg));
    }

    let scopes = ScopeTree::build(&code);
    let symbols = SymbolTable::build(&code, &scopes);
    let paths = collect_paths(&code, &symbols);

    let real_time = REAL_TIME_PATHS.contains(&file);
    if !real_time {
        scan_wall_clock(&paths, &mut findings);
        scan_randomness(&code, &paths, &mut findings);
    }
    scan_unsafe(&code, &mut findings);
    if sim_facing {
        let names = collect_hash_names(&code, &symbols, &scopes);
        scan_hash_iteration(&code, &symbols, &names, &mut findings);
        scan_ambient_env(&paths, &mut findings);
        scan_rc(&code, &symbols, &paths, &mut findings);
        scan_float_cmp(&code, &mut findings);
        scan_unstable_sort(&code, &mut findings);
        if !real_time {
            scan_atomics(&code, &symbols, &mut findings);
            scan_blocking_sync(&code, &symbols, &mut findings);
        }
    }

    // Apply pragmas: a finding survives only if no pragma covering its
    // line allows its rule. Pragma meta-findings (P000/P001) are never
    // suppressible.
    let mut out = Vec::new();
    'finding: for (line, rule, message) in findings {
        if !matches!(rule, Rule::P000 | Rule::P001) {
            for p in pragmas.iter_mut() {
                if p.covers == line && p.rules.contains(&rule) {
                    p.uses += 1;
                    continue 'finding;
                }
            }
        }
        out.push(Finding {
            file: file.to_string(),
            line,
            rule,
            message,
        });
    }
    for p in &pragmas {
        if p.uses == 0 {
            let rules: Vec<&str> = p.rules.iter().map(|r| r.code()).collect();
            out.push(Finding {
                file: file.to_string(),
                line: p.line,
                rule: Rule::P000,
                message: format!(
                    "pragma allow({}) suppressed nothing; remove it",
                    rules.join(",")
                ),
            });
        }
    }
    out.sort_by_key(Finding::sort_key);
    let used = pragmas.iter().filter(|p| p.uses > 0).count();
    (out, used)
}

/// Extracts `decent-lint: allow(Dxxx[,Dyyy]) reason="..."` pragmas from
/// line comments. Returns the well-formed pragmas and `(line, message)`
/// pairs for malformed ones.
fn parse_pragmas(toks: &[Tok], code: &[&Tok]) -> (Vec<Pragma>, Vec<(u32, String)>) {
    const MARKER: &str = "decent-lint:";
    let mut pragmas = Vec::new();
    let mut malformed = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        // Only a plain `// decent-lint: ...` comment is a pragma. Doc
        // comments (`///`, `//!`) merely *describing* the grammar — as
        // this crate's own documentation does — are not.
        let body = t.text.strip_prefix("//").unwrap_or(&t.text);
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let Some(rest) = body.trim_start().strip_prefix(MARKER) else {
            continue;
        };
        let rest = rest.trim();
        match parse_pragma_body(rest) {
            Ok(rules) => {
                // A pragma sharing its line with code covers that line;
                // a standalone pragma covers the next code line.
                let covers = if code.iter().any(|c| c.line == t.line) {
                    t.line
                } else {
                    code.iter()
                        .map(|c| c.line)
                        .find(|&l| l > t.line)
                        .unwrap_or(t.line)
                };
                pragmas.push(Pragma {
                    line: t.line,
                    covers,
                    rules,
                    uses: 0,
                });
            }
            Err(why) => malformed.push((t.line, why)),
        }
    }
    (pragmas, malformed)
}

/// Parses the pragma body after the `decent-lint:` marker.
fn parse_pragma_body(body: &str) -> Result<Vec<Rule>, String> {
    let body = body.trim();
    let inner = body
        .strip_prefix("allow(")
        .ok_or_else(|| format!("expected `allow(...)`, got `{body}`"))?;
    let close = inner
        .find(')')
        .ok_or_else(|| "unclosed `allow(`".to_string())?;
    let mut rules = Vec::new();
    for id in inner[..close].split(',') {
        let id = id.trim();
        let rule = Rule::parse_allowable(id)
            .ok_or_else(|| format!("unknown or non-allowable rule id `{id}`"))?;
        rules.push(rule);
    }
    if rules.is_empty() {
        return Err("empty rule list".to_string());
    }
    let after = inner[close + 1..].trim();
    let reason = after
        .strip_prefix("reason=")
        .ok_or_else(|| "missing `reason=\"...\"`".to_string())?
        .trim();
    let quoted = reason.len() >= 2 && reason.starts_with('"') && reason.ends_with('"');
    if !quoted || reason.len() == 2 {
        return Err("reason must be a non-empty quoted string".to_string());
    }
    Ok(rules)
}

/// Collects every canonical multi-segment path use-site: each leading
/// identifier (one not preceded by `::` or `.`) is resolved through the
/// symbol table, then extended with the literal `::segment` tail that
/// follows it in the source.
fn collect_paths(code: &[&Tok], symbols: &SymbolTable) -> Vec<PathUse> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if i > 0 && (code[i - 1].is_punct("::") || code[i - 1].is_punct(".")) {
            continue; // mid-path segment or method/field name
        }
        let (resolved, mut segs) = match symbols.resolve(&t.text, i) {
            Some(s) => (true, s.to_vec()),
            None => (false, vec![t.text.clone()]),
        };
        let mut j = i + 1;
        while matches!(code.get(j), Some(p) if p.is_punct("::"))
            && matches!(code.get(j + 1), Some(n) if n.kind == TokKind::Ident)
        {
            segs.push(code[j + 1].text.clone());
            j += 2;
        }
        if segs.len() >= 2 {
            out.push(PathUse {
                line: t.line,
                raw_first: t.text.clone(),
                resolved,
                segs,
            });
        }
    }
    out
}

/// D002: `Instant::now` and member access on `SystemTime`, matched on
/// canonical paths so renamed imports still trip the rule.
fn scan_wall_clock(paths: &[PathUse], findings: &mut BTreeSet<(u32, Rule, String)>) {
    for p in paths {
        for w in p.segs.windows(2) {
            if w[0] == "Instant" && w[1] == "now" {
                findings.insert((p.line, Rule::D002, format!("`Instant::now()`{}", p.note())));
            }
            if w[0] == "SystemTime" {
                findings.insert((
                    p.line,
                    Rule::D002,
                    format!("`SystemTime::{}`{}", w[1], p.note()),
                ));
            }
        }
    }
}

/// D003: `thread_rng`, `from_entropy`, `rand::random` — raw tokens plus
/// canonical paths (so `use rand::thread_rng as tr;` is still caught).
fn scan_randomness(code: &[&Tok], paths: &[PathUse], findings: &mut BTreeSet<(u32, Rule, String)>) {
    for t in code {
        if t.is_ident("thread_rng") {
            findings.insert((t.line, Rule::D003, "`thread_rng`".to_string()));
        }
        if t.is_ident("from_entropy") {
            findings.insert((t.line, Rule::D003, "`from_entropy`".to_string()));
        }
    }
    for p in paths {
        for name in ["thread_rng", "from_entropy"] {
            if p.segs.iter().any(|s| s == name) {
                findings.insert((p.line, Rule::D003, format!("`{name}`{}", p.note())));
            }
        }
        if p.segs
            .windows(2)
            .any(|w| w[0] == "rand" && w[1] == "random")
        {
            findings.insert((p.line, Rule::D003, format!("`rand::random`{}", p.note())));
        }
    }
}

/// D006: `std::rc::Rc` in a sim-facing crate. Flags the `std::rc`
/// canonical path (imports and fully-qualified uses) plus any
/// identifier *resolving* to `Rc` in constructor (`Rc::...`) or type
/// (`Rc<...>`) position. `Arc` is a distinct identifier and never
/// matches.
fn scan_rc(
    code: &[&Tok],
    symbols: &SymbolTable,
    paths: &[PathUse],
    findings: &mut BTreeSet<(u32, Rule, String)>,
) {
    for p in paths {
        // Only paths *written* through std::rc (imports, fully
        // qualified uses): sites that merely resolve there are already
        // reported once by the canonical `Rc` check below.
        if !p.resolved && p.segs.windows(2).any(|w| w[0] == "std" && w[1] == "rc") {
            findings.insert((p.line, Rule::D006, "`std::rc`".to_string()));
        }
    }
    for i in 0..code.len() {
        if code[i].kind != TokKind::Ident || symbols.canonical_last(code[i], i) != "Rc" {
            continue;
        }
        let note = if code[i].text != "Rc" {
            format!(" (via `{}`)", code[i].text)
        } else {
            String::new()
        };
        match code.get(i + 1) {
            Some(t) if t.is_punct("::") => {
                let member = code.get(i + 2).map(|t| t.text.clone()).unwrap_or_default();
                findings.insert((code[i].line, Rule::D006, format!("`Rc::{member}`{note}")));
            }
            Some(t) if t.is_punct("<") => {
                findings.insert((code[i].line, Rule::D006, format!("`Rc<...>`{note}")));
            }
            _ => {}
        }
    }
}

/// D005: any `unsafe` keyword.
fn scan_unsafe(code: &[&Tok], findings: &mut BTreeSet<(u32, Rule, String)>) {
    for t in code {
        if t.is_ident("unsafe") {
            findings.insert((t.line, Rule::D005, "`unsafe`".to_string()));
        }
    }
}

/// D004: any canonical path through `std::env` — which covers direct
/// `std::env::var` uses, `use std::env;` imports, and member calls on
/// any alias of the module (`env::var`, `environ::var`, ...).
fn scan_ambient_env(paths: &[PathUse], findings: &mut BTreeSet<(u32, Rule, String)>) {
    for p in paths {
        if p.segs.windows(2).any(|w| w[0] == "std" && w[1] == "env") {
            findings.insert((p.line, Rule::D004, format!("`std::env`{}", p.note())));
        }
    }
}

/// D007: shared-atomic mutation. Flags (a) non-commutative atomic
/// methods, (b) commutative RMWs without distinguishing — both carry an
/// `Ordering` argument, which is what disambiguates them from
/// `slice::swap` and friends — and (c) `Ordering::{Acquire, Release,
/// AcqRel, SeqCst}` paths, which advertise cross-thread happens-before
/// edges the window-barrier merge protocol does not honour.
fn scan_atomics(
    code: &[&Tok],
    symbols: &SymbolTable,
    findings: &mut BTreeSet<(u32, Rule, String)>,
) {
    for i in 0..code.len() {
        if !code[i].is_punct(".") {
            continue;
        }
        let Some(m) = code.get(i + 1) else { continue };
        if m.kind != TokKind::Ident {
            continue;
        }
        let name = m.text.as_str();
        let noncomm = ATOMIC_NONCOMMUTATIVE.contains(&name);
        if !noncomm && !ATOMIC_COMMUTATIVE.contains(&name) {
            continue;
        }
        let (after_tf, _) = skip_turbofish(code, i + 2);
        if !matches!(code.get(after_tf), Some(t) if t.is_punct("(")) {
            continue;
        }
        let end = skip_parens(code, after_tf);
        // An atomic call always names a memory ordering; `slice.swap(i, j)`
        // and other same-named methods never do.
        let has_ordering = (after_tf..end.min(code.len())).any(|k| {
            let c = symbols.canonical_last(code[k], k);
            c == "Ordering" || c == "Relaxed" || STRONG_ORDERINGS.contains(&c)
        });
        if !has_ordering {
            continue;
        }
        let msg = if noncomm {
            format!("non-commutative atomic `.{name}(..)`")
        } else {
            format!("merge-only counter `.{name}(..)` requires a documented pragma")
        };
        findings.insert((m.line, Rule::D007, msg));
    }
    for i in 0..code.len() {
        if code[i].kind != TokKind::Ident || symbols.canonical_last(code[i], i) != "Ordering" {
            continue;
        }
        if !matches!(code.get(i + 1), Some(t) if t.is_punct("::")) {
            continue;
        }
        let Some(v) = code.get(i + 2) else { continue };
        if STRONG_ORDERINGS.contains(&v.text.as_str()) {
            findings.insert((
                code[i].line,
                Rule::D007,
                format!(
                    "`Ordering::{}` (only `Relaxed` is merge-compatible)",
                    v.text
                ),
            ));
        }
    }
}

/// D008: `.partial_cmp(..)` in call position. Float `PartialOrd` is not
/// a total order, so comparators built on it can panic (NaN) or hand
/// the sort an inconsistent ordering; `total_cmp` is required. `fn
/// partial_cmp` *definitions* are not call sites and do not match.
fn scan_float_cmp(code: &[&Tok], findings: &mut BTreeSet<(u32, Rule, String)>) {
    for i in 0..code.len() {
        if code[i].is_punct(".")
            && matches!(code.get(i + 1), Some(t) if t.is_ident("partial_cmp"))
            && matches!(code.get(i + 2), Some(t) if t.is_punct("("))
        {
            findings.insert((
                code[i + 1].line,
                Rule::D008,
                "`.partial_cmp(..)` is not a total order; use `total_cmp`".to_string(),
            ));
        }
    }
}

/// D009: keyed unstable sorts. The output permutation is unspecified
/// whenever the key ties distinct elements, so each site must carry a
/// pragma arguing the key is injective over the slice (or switch to the
/// stable sort). Plain `sort_unstable()` is exempt — see
/// [`UNSTABLE_KEYED_SORTS`].
fn scan_unstable_sort(code: &[&Tok], findings: &mut BTreeSet<(u32, Rule, String)>) {
    for i in 0..code.len() {
        if !code[i].is_punct(".") {
            continue;
        }
        let Some(m) = code.get(i + 1) else { continue };
        if !UNSTABLE_KEYED_SORTS.contains(&m.text.as_str()) {
            continue;
        }
        if !matches!(code.get(i + 2), Some(t) if t.is_punct("(")) {
            continue;
        }
        findings.insert((
            m.line,
            Rule::D009,
            format!(
                "`.{}(..)` requires a pragma-documented injective key",
                m.text
            ),
        ));
    }
}

/// D010: blocking synchronization primitives, matched on the canonical
/// final path segment (so `use std::sync::Mutex as Lock;` still trips).
/// One finding per line per primitive: the import line and every use
/// site each need a pragma or a redesign.
fn scan_blocking_sync(
    code: &[&Tok],
    symbols: &SymbolTable,
    findings: &mut BTreeSet<(u32, Rule, String)>,
) {
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let c = symbols.canonical_last(tok, i);
        if !BLOCKING_SYNC.contains(&c) {
            continue;
        }
        let msg = if tok.text == c {
            format!("`{c}`")
        } else {
            format!("`{c}` (via `{}`)", tok.text)
        };
        findings.insert((tok.line, Rule::D010, msg));
    }
}

/// A tracked hash-collection name and the code-token span in which it
/// is visible.
struct NameSpan {
    name: String,
    start: usize,
    end: usize,
}

/// Whether a tracked name is visible at code index `idx`.
fn name_visible(names: &[NameSpan], text: &str, idx: usize) -> bool {
    names
        .iter()
        .any(|n| n.name == text && n.start <= idx && idx < n.end)
}

/// The span of the innermost enclosing `fn` scope at `idx`, or the
/// whole file when the declaration is an item (struct field, static,
/// fn param in the header before the body's `{`) — those stay visible
/// file-wide, since methods elsewhere access them through `self`.
fn enclosing_fn_span(scopes: &ScopeTree, idx: usize) -> (usize, usize) {
    let mut id = scopes.innermost(idx);
    loop {
        let s = scopes.scopes()[id];
        if s.kind == ScopeKind::Fn {
            return (s.open, s.close);
        }
        if id == 0 {
            return (0, usize::MAX);
        }
        id = s.parent;
    }
}

/// Names (fields, locals, params) declared with a `HashMap`/`HashSet`
/// type annotation or initialized from a `HashMap`/`HashSet`
/// constructor — where the type name is matched through symbol
/// resolution, so `FastMap<..>` under a rename and `type T = HashMap<..>`
/// aliases register too. Function-local declarations are visible only
/// inside their enclosing `fn`; item-level ones (fields, statics)
/// file-wide. Still coarse — no per-block shadowing — but suppressions
/// exist precisely for the cases a file-local analysis cannot prove.
fn collect_hash_names(code: &[&Tok], symbols: &SymbolTable, scopes: &ScopeTree) -> Vec<NameSpan> {
    let mut names: Vec<NameSpan> = Vec::new();
    for i in 0..code.len() {
        if code[i].kind != TokKind::Ident {
            continue;
        }
        let canon = symbols.canonical_last(code[i], i);
        if canon != "HashMap" && canon != "HashSet" {
            continue;
        }
        let next = code.get(i + 1);
        let in_type_position = matches!(next, Some(t) if t.is_punct("<"));
        let in_ctor_position = matches!(next, Some(t) if t.is_punct("::"))
            && matches!(
                code.get(i + 2),
                Some(t) if ["new", "with_capacity", "default", "from", "from_iter"]
                    .contains(&t.text.as_str())
            );
        if !in_type_position && !in_ctor_position {
            continue; // imports, turbofish targets, bare mentions
        }
        // Walk back over a `std::collections::` style path prefix.
        let mut j = i;
        while j >= 2 && code[j - 1].is_punct("::") && code[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        match &code[j - 1] {
            // `name: HashMap<...>` (field/param/let annotation) or
            // `name: HashMap::new()` (struct literal init).
            t if t.is_punct(":") || t.is_punct("&") => {
                let mut k = j - 1;
                // Skip reference/mut/lifetime noise between `:` and the type.
                while k > 0
                    && (code[k].is_punct("&")
                        || code[k].is_ident("mut")
                        || code[k].kind == TokKind::Lifetime)
                {
                    k -= 1;
                }
                if k > 0 && code[k].is_punct(":") && code[k - 1].kind == TokKind::Ident {
                    let (start, end) = enclosing_fn_span(scopes, i);
                    names.push(NameSpan {
                        name: code[k - 1].text.clone(),
                        start,
                        end,
                    });
                }
            }
            // `name = HashMap::new()` / `let mut name = HashMap::new()`.
            t if t.is_punct("=") && j >= 2 && code[j - 2].kind == TokKind::Ident => {
                let cand = &code[j - 2].text;
                if cand != "let" && cand != "mut" {
                    let (start, end) = enclosing_fn_span(scopes, i);
                    names.push(NameSpan {
                        name: cand.clone(),
                        start,
                        end,
                    });
                }
            }
            _ => {}
        }
    }
    names
}

/// Skips an optional `::<...>` turbofish starting at `i`, returning the
/// index after it (or `i` unchanged) and the code indices of the idents
/// seen inside (for resolution by the caller).
fn skip_turbofish(code: &[&Tok], i: usize) -> (usize, Vec<usize>) {
    if !(matches!(code.get(i), Some(t) if t.is_punct("::"))
        && matches!(code.get(i + 1), Some(t) if t.is_punct("<")))
    {
        return (i, Vec::new());
    }
    let mut depth = 0i32;
    let mut idents = Vec::new();
    let mut j = i + 1;
    while j < code.len() {
        match &code[j] {
            t if t.is_punct("<") => depth += 1,
            t if t.is_punct(">") => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, idents);
                }
            }
            t if t.kind == TokKind::Ident => idents.push(j),
            _ => {}
        }
        j += 1;
    }
    (j, idents)
}

/// Skips a balanced `( ... )` group starting at `i` (which must be the
/// opening paren), returning the index after the closing paren.
fn skip_parens(code: &[&Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < code.len() {
        if code[j].is_punct("(") {
            depth += 1;
        } else if code[j].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Outcome of scanning a method chain forward from an iteration site.
enum ChainVerdict {
    /// Ends in a commutative terminator or a sorted collect.
    OrderSafe,
    /// Order can escape (or cannot be proven not to).
    Unproven,
}

/// Scans the `.method(...)` chain starting at `i` (the token right
/// after the iteration call's closing paren).
fn scan_chain(code: &[&Tok], symbols: &SymbolTable, mut i: usize) -> ChainVerdict {
    loop {
        if !matches!(code.get(i), Some(t) if t.is_punct(".")) {
            return ChainVerdict::Unproven; // chain ends without proof
        }
        let Some(m) = code.get(i + 1) else {
            return ChainVerdict::Unproven;
        };
        if m.kind != TokKind::Ident {
            return ChainVerdict::Unproven;
        }
        let name = m.text.clone();
        let (after_tf, tf_idents) = skip_turbofish(code, i + 2);
        if !matches!(code.get(after_tf), Some(t) if t.is_punct("(")) {
            return ChainVerdict::Unproven; // field access etc.
        }
        let after_call = skip_parens(code, after_tf);
        if ORDER_INSENSITIVE.contains(&name.as_str()) {
            return ChainVerdict::OrderSafe;
        }
        if name == "collect" {
            // Resolve turbofish targets so `collect::<Sorted<..>>()`
            // under `type Sorted = BTreeMap<..>` counts as sorted (and
            // a renamed HashMap does not).
            let sorted = tf_idents.iter().any(|&ix| {
                let c = symbols.canonical_last(code[ix], ix);
                c == "BTreeMap" || c == "BTreeSet"
            });
            return if sorted {
                ChainVerdict::OrderSafe
            } else {
                ChainVerdict::Unproven
            };
        }
        if NEUTRAL_ADAPTERS.contains(&name.as_str()) {
            i = after_call;
            continue;
        }
        return ChainVerdict::Unproven;
    }
}

/// D001: iteration over hash-ordered collections.
fn scan_hash_iteration(
    code: &[&Tok],
    symbols: &SymbolTable,
    names: &[NameSpan],
    findings: &mut BTreeSet<(u32, Rule, String)>,
) {
    // Method-call sites: `name.iter()...`, `self.name.keys()...`.
    for i in 0..code.len() {
        if code[i].kind != TokKind::Ident || !name_visible(names, &code[i].text, i) {
            continue;
        }
        if !matches!(code.get(i + 1), Some(t) if t.is_punct(".")) {
            continue;
        }
        let Some(m) = code.get(i + 2) else { continue };
        if !ITER_METHODS.contains(&m.text.as_str()) {
            continue;
        }
        let (after_tf, _) = skip_turbofish(code, i + 3);
        if !matches!(code.get(after_tf), Some(t) if t.is_punct("(")) {
            continue; // e.g. a field named `keys`
        }
        let after_call = skip_parens(code, after_tf);
        if let ChainVerdict::Unproven = scan_chain(code, symbols, after_call) {
            findings.insert((
                code[i].line,
                Rule::D001,
                format!(
                    "`{}.{}()` iterates a hash-ordered collection",
                    code[i].text, m.text
                ),
            ));
        }
    }
    // Bare `for x in [&] name {` headers (no method call to anchor on).
    for i in 0..code.len() {
        if !code[i].is_ident("for") {
            continue;
        }
        // Find the `in` keyword, then scan the iterable expression up
        // to the loop body's `{` at nesting depth zero.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut in_at = None;
        while j < code.len() && j < i + 64 {
            match &code[j] {
                t if t.is_punct("(") || t.is_punct("[") => depth += 1,
                t if t.is_punct(")") || t.is_punct("]") => depth -= 1,
                t if depth == 0 && t.is_ident("in") => {
                    in_at = Some(j);
                    break;
                }
                t if depth == 0 && (t.is_punct("{") || t.is_punct(";")) => break,
                _ => {}
            }
            j += 1;
        }
        let Some(start) = in_at else { continue };
        let mut k = start + 1;
        let mut depth = 0i32;
        while k < code.len() {
            match &code[k] {
                t if t.is_punct("(") || t.is_punct("[") => depth += 1,
                t if t.is_punct(")") || t.is_punct("]") => depth -= 1,
                t if depth == 0 && t.is_punct("{") => break,
                t if t.kind == TokKind::Ident && name_visible(names, &t.text, k) => {
                    // A name followed by `.` is handled by the
                    // method-site scanner; `::` means it is a path
                    // segment, not the collection.
                    let followed = code.get(k + 1);
                    let is_bare = !matches!(
                        followed,
                        Some(n) if n.is_punct(".") || n.is_punct("::") || n.is_punct("(")
                    );
                    if is_bare {
                        findings.insert((
                            t.line,
                            Rule::D001,
                            format!("`for` over hash-ordered collection `{}`", t.text),
                        ));
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_at(src: &str, sim: bool) -> Vec<(u32, &'static str)> {
        analyze_source("t.rs", src, sim)
            .into_iter()
            .map(|f| (f.line, f.rule.code()))
            .collect()
    }

    #[test]
    fn order_insensitive_chains_pass() {
        let src = "struct S { m: HashMap<u64, u32> }\n\
                   impl S {\n\
                   fn a(&self) -> usize { self.m.values().filter(|v| **v > 0).count() }\n\
                   fn b(&self) -> u64 { self.m.keys().copied().sum::<u64>() }\n\
                   fn c(&self) -> bool { self.m.values().any(|v| *v == 0) }\n\
                   fn d(&self) -> Vec<u64> { self.m.keys().copied().collect::<BTreeSet<u64>>().into_iter().collect() }\n\
                   }";
        assert_eq!(rules_at(src, true), vec![]);
    }

    #[test]
    fn unproven_chains_and_bare_for_are_flagged() {
        let src = "struct S { m: HashMap<u64, u32> }\n\
                   impl S {\n\
                   fn a(&self) -> Vec<u64> { self.m.keys().copied().collect() }\n\
                   fn b(&self) { for (_k, _v) in &self.m {} }\n\
                   fn c(&mut self) { let _v: Vec<_> = self.m.drain().collect(); }\n\
                   }";
        assert_eq!(
            rules_at(src, true),
            vec![(3, "D001"), (4, "D001"), (5, "D001")]
        );
    }

    #[test]
    fn point_lookups_stay_legal() {
        let src = "struct S { m: HashMap<u64, u32>, s: HashSet<u64> }\n\
                   impl S {\n\
                   fn a(&self) -> bool { self.s.contains(&1) && self.m.contains_key(&2) }\n\
                   fn b(&self) -> usize { self.m.len() + self.s.len() }\n\
                   fn c(&mut self) { self.m.insert(1, 2); self.m.remove(&1); }\n\
                   }";
        assert_eq!(rules_at(src, true), vec![]);
    }

    #[test]
    fn sim_only_rules_are_off_elsewhere() {
        let src = "fn f(m: &HashMap<u64, u32>) { for _ in m {} let _ = std::env::var(\"X\"); }";
        assert_eq!(rules_at(src, false), vec![]);
        assert_eq!(rules_at(src, true), vec![(1, "D001"), (1, "D004")]);
    }

    #[test]
    fn wall_clock_and_randomness_always_apply() {
        let src = "fn f() { let _t = Instant::now(); let _r = thread_rng(); }";
        assert_eq!(rules_at(src, false), vec![(1, "D002"), (1, "D003")]);
    }

    #[test]
    fn import_aliases_do_not_evade_the_rules() {
        let src = "use std::collections::HashMap as FastMap;\n\
                   use std::rc::Rc as Shared;\n\
                   use std::time::Instant as Clock;\n\
                   fn f() {\n\
                   let m: FastMap<u64, u32> = FastMap::new();\n\
                   let _keys: Vec<u64> = m.keys().copied().collect();\n\
                   let _p = Shared::new(1u64);\n\
                   let _t = Clock::now();\n\
                   }";
        assert_eq!(
            rules_at(src, true),
            vec![(2, "D006"), (6, "D001"), (7, "D006"), (8, "D002")]
        );
        // The messages name the canonical item and the alias used.
        let findings = analyze_source("t.rs", src, true);
        assert!(findings
            .iter()
            .any(|f| f.message == "`Rc::new` (via `Shared`)"));
        assert!(findings
            .iter()
            .any(|f| f.message == "`Instant::now()` (via `Clock`)"));
    }

    #[test]
    fn fn_local_alias_expires_with_its_scope() {
        let src = "fn f() {\n\
                   use std::collections::HashMap as M;\n\
                   let m: M<u64, u32> = M::new();\n\
                   for _ in m.keys() {}\n\
                   }\n\
                   fn g() {\n\
                   let m: M<u64, u32> = M::new();\n\
                   for _ in m.keys() {}\n\
                   }";
        // Inside f the alias resolves to HashMap (flagged); in g the
        // name M is unbound, so nothing registers.
        assert_eq!(rules_at(src, true), vec![(4, "D001")]);
    }

    #[test]
    fn real_time_allowlist_skips_clock_entropy_and_shared_state_rules() {
        // The TCP backend file may use Instant, OS entropy, channels,
        // locks and SeqCst atomics, but every other rule (here: D005)
        // still applies to it.
        let src = "fn f(a: &AtomicU64, m: &Mutex<u32>) {\n\
                   let _t = Instant::now();\n\
                   let _r = thread_rng();\n\
                   a.store(1, Ordering::SeqCst);\n\
                   let _g = m.lock();\n\
                   unsafe { g(); }\n\
                   }";
        let allowed: Vec<(u32, &str)> = analyze_source("crates/net/src/tcp.rs", src, true)
            .into_iter()
            .map(|f| (f.line, f.rule.code()))
            .collect();
        assert_eq!(allowed, vec![(6, "D005")]);
        // The same source under any other sim-facing path keeps the
        // clock, entropy and shared-state rules.
        let elsewhere: Vec<&str> = analyze_source("crates/net/src/sim.rs", src, true)
            .into_iter()
            .map(|f| f.rule.code())
            .collect();
        for code in ["D002", "D003", "D005", "D007", "D010"] {
            assert!(elsewhere.contains(&code), "missing {code}: {elsewhere:?}");
        }
    }

    #[test]
    fn atomics_need_ordering_evidence_to_match() {
        // slice::swap has no Ordering argument and must not trip D007.
        let src = "fn f(v: &mut Vec<u32>) { v.swap(0, 1); }";
        assert_eq!(rules_at(src, true), vec![]);
        let src = "fn g(a: &AtomicU64) {\n\
                   a.store(1, Ordering::Relaxed);\n\
                   a.fetch_add(1, Ordering::Relaxed);\n\
                   let _v = a.load(Ordering::Relaxed);\n\
                   }";
        // store is non-commutative; fetch_add needs a pragma; a Relaxed
        // load is fine.
        assert_eq!(rules_at(src, true), vec![(2, "D007"), (3, "D007")]);
        assert_eq!(rules_at(src, false), vec![]);
    }

    #[test]
    fn strong_orderings_are_flagged_even_on_loads() {
        let src = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::SeqCst) }";
        assert_eq!(rules_at(src, true), vec![(1, "D007")]);
    }

    #[test]
    fn partial_cmp_calls_flagged_but_definitions_are_not() {
        let src = "impl PartialOrd for T {\n\
                   fn partial_cmp(&self, other: &T) -> Option<Ordering> { Some(self.cmp(other)) }\n\
                   }\n\
                   fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(rules_at(src, true), vec![(4, "D008")]);
        assert_eq!(rules_at(src, false), vec![]);
    }

    #[test]
    fn keyed_unstable_sorts_flagged_plain_sort_unstable_exempt() {
        let src = "fn f(xs: &mut Vec<(u64, u64)>) {\n\
                   xs.sort_unstable();\n\
                   xs.sort_unstable_by_key(|x| x.0);\n\
                   xs.sort_unstable_by(|a, b| a.0.cmp(&b.0));\n\
                   }";
        assert_eq!(rules_at(src, true), vec![(3, "D009"), (4, "D009")]);
        assert_eq!(rules_at(src, false), vec![]);
    }

    #[test]
    fn blocking_sync_flagged_in_sim_facing_code_only() {
        let src = "use std::sync::Mutex;\n\
                   use std::sync::mpsc;\n\
                   fn f() -> Mutex<u64> { Mutex::new(0) }\n\
                   fn g() { let (_tx, _rx) = mpsc::channel::<u32>(); }";
        assert_eq!(
            rules_at(src, true),
            vec![(1, "D010"), (2, "D010"), (3, "D010"), (4, "D010")]
        );
        assert_eq!(rules_at(src, false), vec![]);
    }

    #[test]
    fn renamed_mutex_still_trips_d010() {
        let src = "use std::sync::Mutex as Lock;\n\
                   fn f() -> Lock<u64> { Lock::new(0) }";
        let findings = analyze_source("t.rs", src, true);
        assert!(findings
            .iter()
            .any(|f| f.line == 2 && f.message == "`Mutex` (via `Lock`)"));
    }

    #[test]
    fn pragma_suppresses_and_unused_pragma_reports() {
        let src = "// decent-lint: allow(D002) reason=\"test fixture\"\n\
                   fn f() { let _t = Instant::now(); }\n\
                   // decent-lint: allow(D003) reason=\"nothing here\"\n\
                   fn g() {}";
        assert_eq!(rules_at(src, false), vec![(3, "P000")]);
    }

    #[test]
    fn same_line_pragma_covers_its_own_line() {
        let src = "fn f() { let _t = Instant::now(); } // decent-lint: allow(D002) reason=\"shim\"";
        assert_eq!(rules_at(src, false), vec![]);
    }

    #[test]
    fn malformed_pragmas_are_findings() {
        let src = "// decent-lint: allow(D9) reason=\"x\"\n\
                   // decent-lint: allow(D001)\n\
                   fn f() {}";
        assert_eq!(rules_at(src, false), vec![(1, "P001"), (2, "P001")]);
    }

    #[test]
    fn rc_flagged_only_in_sim_facing_code() {
        let src = "use std::rc::Rc;\n\
                   struct S { v: Rc<u64>, a: std::sync::Arc<u64> }\n\
                   fn f() -> Rc<u64> { Rc::new(1) }";
        assert_eq!(rules_at(src, false), vec![]);
        assert_eq!(
            rules_at(src, true),
            vec![(1, "D006"), (2, "D006"), (3, "D006"), (3, "D006")]
        );
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let src = "// uses Instant::now() and thread_rng in prose\n\
                   fn f() -> &'static str { \"unsafe std::env thread_rng\" }";
        assert_eq!(rules_at(src, true), vec![]);
    }
}
