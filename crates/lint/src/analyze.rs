//! Per-file rule engine: runs the determinism rules over a token
//! stream, applies `decent-lint: allow(...)` pragmas, and reports
//! pragmas that suppressed nothing.

use std::collections::BTreeSet;

use crate::lex::{lex, Tok, TokKind};
use crate::rules::{Finding, Rule};

/// Iteration methods on `HashMap`/`HashSet` whose visit order is the
/// hasher's (D001 trigger set).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Commutative / order-insensitive chain terminators: an iteration that
/// ends in one of these produces the same value under any visit order.
const ORDER_INSENSITIVE: &[&str] = &[
    "count",
    "sum",
    "product",
    "min",
    "max",
    "all",
    "any",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
];

/// Order-preserving adapters the chain scanner may look through on its
/// way to a terminator. Deliberately conservative: anything not listed
/// here (e.g. `take`, `fold`, `for_each`, `enumerate`) ends the scan
/// and the site is reported.
const NEUTRAL_ADAPTERS: &[&str] = &[
    "filter",
    "map",
    "flat_map",
    "flatten",
    "cloned",
    "copied",
    "filter_map",
    "inspect",
];

/// Crates whose code feeds simulations (D001/D004 apply). Everything in
/// the workspace gets D002/D003/D005.
pub const SIM_FACING_CRATES: &[&str] = &[
    "decent-sim",
    "decent-overlay",
    "decent-chain",
    "decent-bft",
    "decent-edge",
    "decent-core",
    "decent-net",
];

/// Files that legitimately touch wall-clock time and OS entropy: the
/// real-network backends behind the transport facade (DESIGN.md §4h).
/// D002/D003 are skipped here — and ONLY here — so the deterministic
/// sim side of `decent-net` stays fully enforced while the TCP side
/// can use `Instant`, sockets and threads. Paths are workspace-relative
/// and must be listed file-by-file; no globs, so the allowlist cannot
/// silently grow.
pub const REAL_TIME_PATHS: &[&str] = &["crates/net/src/tcp.rs"];

/// A parsed suppression pragma.
#[derive(Debug)]
struct Pragma {
    /// Line of the pragma comment itself.
    line: u32,
    /// Line whose findings it suppresses.
    covers: u32,
    /// Rules it allows.
    rules: Vec<Rule>,
    /// How many findings it suppressed.
    uses: usize,
}

/// Analyzes one file's source. `file` is used verbatim in findings;
/// `sim_facing` switches on D001/D004 in addition to D002/D003/D005.
pub fn analyze_source(file: &str, src: &str, sim_facing: bool) -> Vec<Finding> {
    analyze_source_with_stats(file, src, sim_facing).0
}

/// Like [`analyze_source`], but also reports how many pragmas in the
/// file suppressed at least one finding (for the summary tail).
pub fn analyze_source_with_stats(file: &str, src: &str, sim_facing: bool) -> (Vec<Finding>, usize) {
    let toks = lex(src);
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();

    let mut findings: BTreeSet<(u32, Rule, String)> = BTreeSet::new();
    let (mut pragmas, malformed) = parse_pragmas(&toks, &code);
    for (line, msg) in malformed {
        findings.insert((line, Rule::P001, msg));
    }

    let real_time = REAL_TIME_PATHS.contains(&file);
    if !real_time {
        scan_wall_clock(&code, &mut findings);
        scan_randomness(&code, &mut findings);
    }
    scan_unsafe(&code, &mut findings);
    if sim_facing {
        let names = collect_hash_names(&code);
        scan_hash_iteration(&code, &names, &mut findings);
        scan_ambient_env(&code, &mut findings);
        scan_rc(&code, &mut findings);
    }

    // Apply pragmas: a finding survives only if no pragma covering its
    // line allows its rule. Pragma meta-findings (P000/P001) are never
    // suppressible.
    let mut out = Vec::new();
    'finding: for (line, rule, message) in findings {
        if !matches!(rule, Rule::P000 | Rule::P001) {
            for p in pragmas.iter_mut() {
                if p.covers == line && p.rules.contains(&rule) {
                    p.uses += 1;
                    continue 'finding;
                }
            }
        }
        out.push(Finding {
            file: file.to_string(),
            line,
            rule,
            message,
        });
    }
    for p in &pragmas {
        if p.uses == 0 {
            let rules: Vec<&str> = p.rules.iter().map(|r| r.code()).collect();
            out.push(Finding {
                file: file.to_string(),
                line: p.line,
                rule: Rule::P000,
                message: format!(
                    "pragma allow({}) suppressed nothing; remove it",
                    rules.join(",")
                ),
            });
        }
    }
    out.sort_by_key(Finding::sort_key);
    let used = pragmas.iter().filter(|p| p.uses > 0).count();
    (out, used)
}

/// Extracts `decent-lint: allow(Dxxx[,Dyyy]) reason="..."` pragmas from
/// line comments. Returns the well-formed pragmas and `(line, message)`
/// pairs for malformed ones.
fn parse_pragmas(toks: &[Tok], code: &[&Tok]) -> (Vec<Pragma>, Vec<(u32, String)>) {
    const MARKER: &str = "decent-lint:";
    let mut pragmas = Vec::new();
    let mut malformed = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        // Only a plain `// decent-lint: ...` comment is a pragma. Doc
        // comments (`///`, `//!`) merely *describing* the grammar — as
        // this crate's own documentation does — are not.
        let body = t.text.strip_prefix("//").unwrap_or(&t.text);
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let Some(rest) = body.trim_start().strip_prefix(MARKER) else {
            continue;
        };
        let rest = rest.trim();
        match parse_pragma_body(rest) {
            Ok(rules) => {
                // A pragma sharing its line with code covers that line;
                // a standalone pragma covers the next code line.
                let covers = if code.iter().any(|c| c.line == t.line) {
                    t.line
                } else {
                    code.iter()
                        .map(|c| c.line)
                        .find(|&l| l > t.line)
                        .unwrap_or(t.line)
                };
                pragmas.push(Pragma {
                    line: t.line,
                    covers,
                    rules,
                    uses: 0,
                });
            }
            Err(why) => malformed.push((t.line, why)),
        }
    }
    (pragmas, malformed)
}

/// Parses the pragma body after the `decent-lint:` marker.
fn parse_pragma_body(body: &str) -> Result<Vec<Rule>, String> {
    let body = body.trim();
    let inner = body
        .strip_prefix("allow(")
        .ok_or_else(|| format!("expected `allow(...)`, got `{body}`"))?;
    let close = inner
        .find(')')
        .ok_or_else(|| "unclosed `allow(`".to_string())?;
    let mut rules = Vec::new();
    for id in inner[..close].split(',') {
        let id = id.trim();
        let rule = Rule::parse_allowable(id)
            .ok_or_else(|| format!("unknown or non-allowable rule id `{id}`"))?;
        rules.push(rule);
    }
    if rules.is_empty() {
        return Err("empty rule list".to_string());
    }
    let after = inner[close + 1..].trim();
    let reason = after
        .strip_prefix("reason=")
        .ok_or_else(|| "missing `reason=\"...\"`".to_string())?
        .trim();
    let quoted = reason.len() >= 2 && reason.starts_with('"') && reason.ends_with('"');
    if !quoted || reason.len() == 2 {
        return Err("reason must be a non-empty quoted string".to_string());
    }
    Ok(rules)
}

/// D002: `Instant::now` and any `SystemTime::` member access.
fn scan_wall_clock(code: &[&Tok], findings: &mut BTreeSet<(u32, Rule, String)>) {
    for i in 0..code.len() {
        if code[i].is_ident("Instant")
            && matches!(code.get(i + 1), Some(t) if t.is_punct("::"))
            && matches!(code.get(i + 2), Some(t) if t.is_ident("now"))
        {
            findings.insert((code[i].line, Rule::D002, "`Instant::now()`".to_string()));
        }
        if code[i].is_ident("SystemTime") && matches!(code.get(i + 1), Some(t) if t.is_punct("::"))
        {
            let member = code.get(i + 2).map(|t| t.text.clone()).unwrap_or_default();
            findings.insert((code[i].line, Rule::D002, format!("`SystemTime::{member}`")));
        }
    }
}

/// D003: `thread_rng`, `rand::random`, `from_entropy`.
fn scan_randomness(code: &[&Tok], findings: &mut BTreeSet<(u32, Rule, String)>) {
    for i in 0..code.len() {
        if code[i].is_ident("thread_rng") {
            findings.insert((code[i].line, Rule::D003, "`thread_rng`".to_string()));
        }
        if code[i].is_ident("from_entropy") {
            findings.insert((code[i].line, Rule::D003, "`from_entropy`".to_string()));
        }
        if code[i].is_ident("rand")
            && matches!(code.get(i + 1), Some(t) if t.is_punct("::"))
            && matches!(code.get(i + 2), Some(t) if t.is_ident("random"))
        {
            findings.insert((code[i].line, Rule::D003, "`rand::random`".to_string()));
        }
    }
}

/// D006: `std::rc::Rc` in a sim-facing crate. Flags the `std::rc`
/// path itself (imports and fully-qualified uses) plus any `Rc` in
/// constructor (`Rc::...`) or type (`Rc<...>`) position. `Arc` is a
/// distinct identifier and never matches.
fn scan_rc(code: &[&Tok], findings: &mut BTreeSet<(u32, Rule, String)>) {
    for i in 0..code.len() {
        if code[i].is_ident("rc")
            && i >= 2
            && code[i - 1].is_punct("::")
            && code[i - 2].is_ident("std")
        {
            findings.insert((code[i].line, Rule::D006, "`std::rc`".to_string()));
        }
        if !code[i].is_ident("Rc") {
            continue;
        }
        match code.get(i + 1) {
            Some(t) if t.is_punct("::") => {
                let member = code.get(i + 2).map(|t| t.text.clone()).unwrap_or_default();
                findings.insert((code[i].line, Rule::D006, format!("`Rc::{member}`")));
            }
            Some(t) if t.is_punct("<") => {
                findings.insert((code[i].line, Rule::D006, "`Rc<...>`".to_string()));
            }
            _ => {}
        }
    }
}

/// D005: any `unsafe` keyword.
fn scan_unsafe(code: &[&Tok], findings: &mut BTreeSet<(u32, Rule, String)>) {
    for t in code {
        if t.is_ident("unsafe") {
            findings.insert((t.line, Rule::D005, "`unsafe`".to_string()));
        }
    }
}

/// D004: `std::env` paths, plus `env::...` when `std::env` is imported.
fn scan_ambient_env(code: &[&Tok], findings: &mut BTreeSet<(u32, Rule, String)>) {
    let mut env_imported = false;
    for i in 0..code.len() {
        if code[i].is_ident("std")
            && matches!(code.get(i + 1), Some(t) if t.is_punct("::"))
            && matches!(code.get(i + 2), Some(t) if t.is_ident("env"))
        {
            if i > 0 && code[i - 1].is_ident("use") {
                env_imported = true;
            }
            findings.insert((code[i].line, Rule::D004, "`std::env`".to_string()));
        }
    }
    if env_imported {
        for i in 0..code.len() {
            if code[i].is_ident("env")
                && matches!(code.get(i + 1), Some(t) if t.is_punct("::"))
                && !(i > 0 && code[i - 1].is_punct("::"))
            {
                let member = code.get(i + 2).map(|t| t.text.clone()).unwrap_or_default();
                findings.insert((code[i].line, Rule::D004, format!("`env::{member}`")));
            }
        }
    }
}

/// Names (fields, locals, params) declared with a `HashMap`/`HashSet`
/// type annotation or initialized from a `HashMap`/`HashSet`
/// constructor. Tracking is per-file and purely lexical: that is
/// coarse, but suppressions exist precisely for the cases a lexer
/// cannot prove.
fn collect_hash_names(code: &[&Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..code.len() {
        if !(code[i].is_ident("HashMap") || code[i].is_ident("HashSet")) {
            continue;
        }
        let next = code.get(i + 1);
        let in_type_position = matches!(next, Some(t) if t.is_punct("<"));
        let in_ctor_position = matches!(next, Some(t) if t.is_punct("::"))
            && matches!(
                code.get(i + 2),
                Some(t) if ["new", "with_capacity", "default", "from", "from_iter"]
                    .contains(&t.text.as_str())
            );
        if !in_type_position && !in_ctor_position {
            continue; // imports, turbofish targets, bare mentions
        }
        // Walk back over a `std::collections::` style path prefix.
        let mut j = i;
        while j >= 2 && code[j - 1].is_punct("::") && code[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        match &code[j - 1] {
            // `name: HashMap<...>` (field/param/let annotation) or
            // `name: HashMap::new()` (struct literal init).
            t if t.is_punct(":") || t.is_punct("&") => {
                let mut k = j - 1;
                // Skip reference/mut/lifetime noise between `:` and the type.
                while k > 0
                    && (code[k].is_punct("&")
                        || code[k].is_ident("mut")
                        || code[k].kind == TokKind::Lifetime)
                {
                    k -= 1;
                }
                if k > 0 && code[k].is_punct(":") && code[k - 1].kind == TokKind::Ident {
                    names.insert(code[k - 1].text.clone());
                }
            }
            // `name = HashMap::new()` / `let mut name = HashMap::new()`.
            t if t.is_punct("=") && j >= 2 && code[j - 2].kind == TokKind::Ident => {
                let cand = &code[j - 2].text;
                if cand != "let" && cand != "mut" {
                    names.insert(cand.clone());
                }
            }
            _ => {}
        }
    }
    names
}

/// Skips an optional `::<...>` turbofish starting at `i`, returning the
/// index after it (or `i` unchanged) and the idents seen inside.
fn skip_turbofish(code: &[&Tok], i: usize) -> (usize, Vec<String>) {
    if !(matches!(code.get(i), Some(t) if t.is_punct("::"))
        && matches!(code.get(i + 1), Some(t) if t.is_punct("<")))
    {
        return (i, Vec::new());
    }
    let mut depth = 0i32;
    let mut idents = Vec::new();
    let mut j = i + 1;
    while j < code.len() {
        match &code[j] {
            t if t.is_punct("<") => depth += 1,
            t if t.is_punct(">") => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, idents);
                }
            }
            t if t.kind == TokKind::Ident => idents.push(t.text.clone()),
            _ => {}
        }
        j += 1;
    }
    (j, idents)
}

/// Skips a balanced `( ... )` group starting at `i` (which must be the
/// opening paren), returning the index after the closing paren.
fn skip_parens(code: &[&Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < code.len() {
        if code[j].is_punct("(") {
            depth += 1;
        } else if code[j].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Outcome of scanning a method chain forward from an iteration site.
enum ChainVerdict {
    /// Ends in a commutative terminator or a sorted collect.
    OrderSafe,
    /// Order can escape (or cannot be proven not to).
    Unproven,
}

/// Scans the `.method(...)` chain starting at `i` (the token right
/// after the iteration call's closing paren).
fn scan_chain(code: &[&Tok], mut i: usize) -> ChainVerdict {
    loop {
        if !matches!(code.get(i), Some(t) if t.is_punct(".")) {
            return ChainVerdict::Unproven; // chain ends without proof
        }
        let Some(m) = code.get(i + 1) else {
            return ChainVerdict::Unproven;
        };
        if m.kind != TokKind::Ident {
            return ChainVerdict::Unproven;
        }
        let name = m.text.clone();
        let (after_tf, tf_idents) = skip_turbofish(code, i + 2);
        if !matches!(code.get(after_tf), Some(t) if t.is_punct("(")) {
            return ChainVerdict::Unproven; // field access etc.
        }
        let after_call = skip_parens(code, after_tf);
        if ORDER_INSENSITIVE.contains(&name.as_str()) {
            return ChainVerdict::OrderSafe;
        }
        if name == "collect" {
            let sorted = tf_idents.iter().any(|t| t == "BTreeMap" || t == "BTreeSet");
            return if sorted {
                ChainVerdict::OrderSafe
            } else {
                ChainVerdict::Unproven
            };
        }
        if NEUTRAL_ADAPTERS.contains(&name.as_str()) {
            i = after_call;
            continue;
        }
        return ChainVerdict::Unproven;
    }
}

/// D001: iteration over hash-ordered collections.
fn scan_hash_iteration(
    code: &[&Tok],
    names: &BTreeSet<String>,
    findings: &mut BTreeSet<(u32, Rule, String)>,
) {
    // Method-call sites: `name.iter()...`, `self.name.keys()...`.
    for i in 0..code.len() {
        if code[i].kind != TokKind::Ident || !names.contains(&code[i].text) {
            continue;
        }
        if !matches!(code.get(i + 1), Some(t) if t.is_punct(".")) {
            continue;
        }
        let Some(m) = code.get(i + 2) else { continue };
        if !ITER_METHODS.contains(&m.text.as_str()) {
            continue;
        }
        let (after_tf, _) = skip_turbofish(code, i + 3);
        if !matches!(code.get(after_tf), Some(t) if t.is_punct("(")) {
            continue; // e.g. a field named `keys`
        }
        let after_call = skip_parens(code, after_tf);
        if let ChainVerdict::Unproven = scan_chain(code, after_call) {
            findings.insert((
                code[i].line,
                Rule::D001,
                format!(
                    "`{}.{}()` iterates a hash-ordered collection",
                    code[i].text, m.text
                ),
            ));
        }
    }
    // Bare `for x in [&] name {` headers (no method call to anchor on).
    for i in 0..code.len() {
        if !code[i].is_ident("for") {
            continue;
        }
        // Find the `in` keyword, then scan the iterable expression up
        // to the loop body's `{` at nesting depth zero.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut in_at = None;
        while j < code.len() && j < i + 64 {
            match &code[j] {
                t if t.is_punct("(") || t.is_punct("[") => depth += 1,
                t if t.is_punct(")") || t.is_punct("]") => depth -= 1,
                t if depth == 0 && t.is_ident("in") => {
                    in_at = Some(j);
                    break;
                }
                t if depth == 0 && (t.is_punct("{") || t.is_punct(";")) => break,
                _ => {}
            }
            j += 1;
        }
        let Some(start) = in_at else { continue };
        let mut k = start + 1;
        let mut depth = 0i32;
        while k < code.len() {
            match &code[k] {
                t if t.is_punct("(") || t.is_punct("[") => depth += 1,
                t if t.is_punct(")") || t.is_punct("]") => depth -= 1,
                t if depth == 0 && t.is_punct("{") => break,
                t if t.kind == TokKind::Ident && names.contains(&t.text) => {
                    // A name followed by `.` is handled by the
                    // method-site scanner; `::` means it is a path
                    // segment, not the collection.
                    let followed = code.get(k + 1);
                    let is_bare = !matches!(
                        followed,
                        Some(n) if n.is_punct(".") || n.is_punct("::") || n.is_punct("(")
                    );
                    if is_bare {
                        findings.insert((
                            t.line,
                            Rule::D001,
                            format!("`for` over hash-ordered collection `{}`", t.text),
                        ));
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_at(src: &str, sim: bool) -> Vec<(u32, &'static str)> {
        analyze_source("t.rs", src, sim)
            .into_iter()
            .map(|f| (f.line, f.rule.code()))
            .collect()
    }

    #[test]
    fn order_insensitive_chains_pass() {
        let src = "struct S { m: HashMap<u64, u32> }\n\
                   impl S {\n\
                   fn a(&self) -> usize { self.m.values().filter(|v| **v > 0).count() }\n\
                   fn b(&self) -> u64 { self.m.keys().copied().sum::<u64>() }\n\
                   fn c(&self) -> bool { self.m.values().any(|v| *v == 0) }\n\
                   fn d(&self) -> Vec<u64> { self.m.keys().copied().collect::<BTreeSet<u64>>().into_iter().collect() }\n\
                   }";
        assert_eq!(rules_at(src, true), vec![]);
    }

    #[test]
    fn unproven_chains_and_bare_for_are_flagged() {
        let src = "struct S { m: HashMap<u64, u32> }\n\
                   impl S {\n\
                   fn a(&self) -> Vec<u64> { self.m.keys().copied().collect() }\n\
                   fn b(&self) { for (_k, _v) in &self.m {} }\n\
                   fn c(&mut self) { let _v: Vec<_> = self.m.drain().collect(); }\n\
                   }";
        assert_eq!(
            rules_at(src, true),
            vec![(3, "D001"), (4, "D001"), (5, "D001")]
        );
    }

    #[test]
    fn point_lookups_stay_legal() {
        let src = "struct S { m: HashMap<u64, u32>, s: HashSet<u64> }\n\
                   impl S {\n\
                   fn a(&self) -> bool { self.s.contains(&1) && self.m.contains_key(&2) }\n\
                   fn b(&self) -> usize { self.m.len() + self.s.len() }\n\
                   fn c(&mut self) { self.m.insert(1, 2); self.m.remove(&1); }\n\
                   }";
        assert_eq!(rules_at(src, true), vec![]);
    }

    #[test]
    fn sim_only_rules_are_off_elsewhere() {
        let src = "fn f(m: &HashMap<u64, u32>) { for _ in m {} let _ = std::env::var(\"X\"); }";
        assert_eq!(rules_at(src, false), vec![]);
        assert_eq!(rules_at(src, true), vec![(1, "D001"), (1, "D004")]);
    }

    #[test]
    fn wall_clock_and_randomness_always_apply() {
        let src = "fn f() { let _t = Instant::now(); let _r = thread_rng(); }";
        assert_eq!(rules_at(src, false), vec![(1, "D002"), (1, "D003")]);
    }

    #[test]
    fn real_time_allowlist_skips_wall_clock_and_randomness_only() {
        // The TCP backend file may use Instant and OS entropy, but
        // every other rule (here: D005) still applies to it.
        let src = "fn f() { let _t = Instant::now(); let _r = thread_rng(); unsafe { g(); } }";
        let allowed: Vec<(u32, &str)> = analyze_source("crates/net/src/tcp.rs", src, true)
            .into_iter()
            .map(|f| (f.line, f.rule.code()))
            .collect();
        assert_eq!(allowed, vec![(1, "D005")]);
        // The same source under any other path keeps D002/D003.
        let elsewhere: Vec<&str> = analyze_source("crates/net/src/sim.rs", src, true)
            .into_iter()
            .map(|f| f.rule.code())
            .collect();
        assert!(elsewhere.contains(&"D002") && elsewhere.contains(&"D003"));
    }

    #[test]
    fn pragma_suppresses_and_unused_pragma_reports() {
        let src = "// decent-lint: allow(D002) reason=\"test fixture\"\n\
                   fn f() { let _t = Instant::now(); }\n\
                   // decent-lint: allow(D003) reason=\"nothing here\"\n\
                   fn g() {}";
        assert_eq!(rules_at(src, false), vec![(3, "P000")]);
    }

    #[test]
    fn same_line_pragma_covers_its_own_line() {
        let src = "fn f() { let _t = Instant::now(); } // decent-lint: allow(D002) reason=\"shim\"";
        assert_eq!(rules_at(src, false), vec![]);
    }

    #[test]
    fn malformed_pragmas_are_findings() {
        let src = "// decent-lint: allow(D9) reason=\"x\"\n\
                   // decent-lint: allow(D001)\n\
                   fn f() {}";
        assert_eq!(rules_at(src, false), vec![(1, "P001"), (2, "P001")]);
    }

    #[test]
    fn rc_flagged_only_in_sim_facing_code() {
        let src = "use std::rc::Rc;\n\
                   struct S { v: Rc<u64>, a: std::sync::Arc<u64> }\n\
                   fn f() -> Rc<u64> { Rc::new(1) }";
        assert_eq!(rules_at(src, false), vec![]);
        assert_eq!(
            rules_at(src, true),
            vec![(1, "D006"), (2, "D006"), (3, "D006"), (3, "D006")]
        );
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let src = "// uses Instant::now() and thread_rng in prose\n\
                   fn f() -> &'static str { \"unsafe std::env thread_rng\" }";
        assert_eq!(rules_at(src, true), vec![]);
    }
}
