//! Per-file symbol resolution: `use`-tree aliases and `type` aliases.
//!
//! This is the layer that closes the import-alias soundness hole the
//! flat token scanner shipped with (PR 5–9): under
//!
//! ```text
//! use std::collections::HashMap as FastMap;
//! ```
//!
//! every later `FastMap<..>` / `FastMap::new()` evaded D001 because the
//! rules matched the literal identifier `HashMap`. The symbol table
//! records every name a `use` declaration (including nested trees like
//! `use std::{collections::HashMap as FastMap, rc::Rc as Shared}`) or a
//! `type Alias = Path<..>;` alias binds, together with the *canonical
//! path* it denotes and the scope span in which the binding is visible
//! (via [`crate::scope::ScopeTree`]). Rules then resolve identifiers
//! through [`SymbolTable::resolve`] before matching, so the canonical
//! name is what gets checked no matter what the file calls it.
//!
//! Deliberate limits, in the spirit of the rest of the crate: `use
//! path::*` globs bind nothing (a glob cannot *rename*, so the literal
//! matcher still sees the canonical identifier); re-exports across
//! files are not chased (each file is analyzed standalone); and macro
//! expansion does not exist here. Suppressions exist precisely for what
//! a file-local analysis cannot prove.

use crate::lex::{Tok, TokKind};
use crate::scope::ScopeTree;

/// One name binding: `name` denotes the canonical path `canon` for code
/// tokens in `[start, end)`.
#[derive(Clone, Debug)]
pub struct Binding {
    /// The locally visible identifier.
    pub name: String,
    /// Canonical path segments, e.g. `["std", "collections", "HashMap"]`.
    pub canon: Vec<String>,
    /// First code-token index at which the binding is visible.
    pub start: usize,
    /// Exclusive end of visibility (close of the declaring scope).
    pub end: usize,
}

/// All bindings of one file, in declaration order.
#[derive(Debug, Default)]
pub struct SymbolTable {
    bindings: Vec<Binding>,
}

impl SymbolTable {
    /// Builds the table from the code-token stream and its scope tree.
    pub fn build(code: &[&Tok], scopes: &ScopeTree) -> SymbolTable {
        let mut table = SymbolTable::default();
        let mut i = 0usize;
        while i < code.len() {
            let t = code[i];
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "use" if at_statement_start(code, i) => {
                    let end = scopes.visibility_end(i);
                    i = parse_use_tree(code, i + 1, &[], i, end, &mut table.bindings);
                }
                "type" if at_statement_start(code, i) => {
                    i = parse_type_alias(code, i, scopes, &mut table);
                }
                _ => i += 1,
            }
        }
        table
    }

    /// Resolves `name` at code-token index `idx` to its canonical path,
    /// if any visible binding matches. The latest matching binding wins,
    /// so a function-local alias shadows a file-level one.
    pub fn resolve(&self, name: &str, idx: usize) -> Option<&[String]> {
        self.bindings
            .iter()
            .rev()
            .find(|b| b.name == name && b.start <= idx && idx < b.end)
            .map(|b| b.canon.as_slice())
    }

    /// The canonical *final segment* for the identifier token at `idx`:
    /// the last segment of the resolved path when a binding is visible,
    /// the literal token text otherwise. This is what rules match
    /// against for type-name triggers (`HashMap`, `Rc`, `Instant`, ...).
    pub fn canonical_last<'a>(&'a self, tok: &'a Tok, idx: usize) -> &'a str {
        if tok.kind != TokKind::Ident {
            return "";
        }
        match self.resolve(&tok.text, idx) {
            Some(segs) => segs.last().map(String::as_str).unwrap_or(&tok.text),
            None => &tok.text,
        }
    }

    /// All bindings (for reporting/tests).
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }
}

/// Whether the ident at `i` begins a statement/item, so that a raw
/// identifier or field merely *named* `use`/`type` in expression
/// position binds nothing. `)` admits `pub(crate) use`, `]` admits an
/// attribute line right above the declaration.
fn at_statement_start(code: &[&Tok], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = code[i - 1];
    prev.is_punct(";")
        || prev.is_punct("{")
        || prev.is_punct("}")
        || prev.is_punct(")")
        || prev.is_punct("]")
        || prev.is_ident("pub")
}

/// Parses one use-(sub)tree starting at code index `i`, under the fixed
/// path `prefix`, appending bindings. Returns the index of the token
/// that terminated the subtree (`;`, `,` or `}` — left for the caller),
/// or just past a parsed group.
fn parse_use_tree(
    code: &[&Tok],
    mut i: usize,
    prefix: &[String],
    decl_at: usize,
    vis_end: usize,
    out: &mut Vec<Binding>,
) -> usize {
    let mut path: Vec<String> = prefix.to_vec();
    let mut bind_on_end = true;
    while let Some(t) = code.get(i) {
        if t.is_punct(";") || t.is_punct(",") || t.is_punct("}") {
            break;
        }
        if t.is_punct("{") {
            // Group: each comma-separated subtree extends the path
            // accumulated so far. The group is the subtree's tail, so
            // nothing binds at this level.
            i += 1;
            loop {
                i = parse_use_tree(code, i, &path, decl_at, vis_end, out);
                match code.get(i) {
                    Some(t) if t.is_punct(",") => i += 1,
                    Some(t) if t.is_punct("}") => return i + 1,
                    _ => return i,
                }
            }
        }
        if t.is_punct("*") {
            // Glob: binds nothing (a glob cannot rename, so the literal
            // matcher still sees canonical identifiers).
            bind_on_end = false;
            i += 1;
            continue;
        }
        if t.is_ident("as") {
            if let Some(name) = code.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                if !path.is_empty() {
                    out.push(Binding {
                        name: name.text.clone(),
                        canon: path.clone(),
                        start: decl_at,
                        end: vis_end,
                    });
                }
            }
            bind_on_end = false;
            i += 2;
            continue;
        }
        if t.kind == TokKind::Ident {
            if t.text == "self" && path.len() == prefix.len() && path.len() >= 2 {
                // `use a::b::{self, ..}`: binds `b` to the prefix.
                out.push(Binding {
                    name: path.last().expect("len >= 2").clone(),
                    canon: path.clone(),
                    start: decl_at,
                    end: vis_end,
                });
                bind_on_end = false;
            } else {
                path.push(t.text.clone());
            }
            i += 1;
            continue;
        }
        if t.is_punct("::") {
            i += 1;
            continue;
        }
        break; // stray token ends the tree
    }
    // A path tail without `as`/glob binds its own last segment —
    // provided it grew beyond the group prefix and is a real path
    // (single-segment `use foo;` renames nothing observable).
    if bind_on_end && path.len() > prefix.len() && path.len() >= 2 {
        let name = path.last().expect("len >= 2").clone();
        if name != "self" && name != "crate" && name != "super" {
            out.push(Binding {
                name,
                canon: path,
                start: decl_at,
                end: vis_end,
            });
        }
    }
    i
}

/// Parses `type Alias = Head<..>;`, binding `Alias` to the canonical
/// path of `Head` (itself resolved through earlier bindings, so `use
/// std::collections::HashMap as FM; type T = FM<..>;` canonicalizes `T`
/// all the way to `std::collections::HashMap`). Returns the index to
/// continue scanning from.
fn parse_type_alias(code: &[&Tok], i: usize, scopes: &ScopeTree, table: &mut SymbolTable) -> usize {
    let Some(name) = code.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
        return i + 1;
    };
    // Skip generics on the alias itself: `type T<K> = ...`.
    let mut j = i + 2;
    if matches!(code.get(j), Some(t) if t.is_punct("<")) {
        let mut depth = 0i32;
        while j < code.len() {
            if code[j].is_punct("<") {
                depth += 1;
            } else if code[j].is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    if !matches!(code.get(j), Some(t) if t.is_punct("=")) {
        return i + 1; // associated type declaration, not an alias
    }
    j += 1;
    // Read the RHS head path: `a::b::Head` up to `<`, `;` or `(`.
    let mut segs: Vec<String> = Vec::new();
    while let Some(t) = code.get(j) {
        if t.kind == TokKind::Ident {
            segs.push(t.text.clone());
            j += 1;
        } else if t.is_punct("::") {
            j += 1;
        } else {
            break;
        }
    }
    if segs.is_empty() {
        return j;
    }
    // Canonicalize the head through existing bindings.
    let canon: Vec<String> = match table.resolve(&segs[0], i) {
        Some(base) => {
            let mut c = base.to_vec();
            c.extend(segs[1..].iter().cloned());
            c
        }
        None => segs,
    };
    table.bindings.push(Binding {
        name: name.text.clone(),
        canon,
        start: i,
        end: scopes.visibility_end(i),
    });
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn build(src: &str) -> Vec<Binding> {
        let toks: Vec<crate::lex::Tok> = lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let refs: Vec<&crate::lex::Tok> = toks.iter().collect();
        let scopes = ScopeTree::build(&refs);
        SymbolTable::build(&refs, &scopes).bindings().to_vec()
    }

    fn canon(bindings: &[Binding], name: &str) -> Option<String> {
        bindings
            .iter()
            .rev()
            .find(|b| b.name == name)
            .map(|b| b.canon.join("::"))
    }

    #[test]
    fn plain_use_binds_last_segment() {
        let b = build("use std::collections::HashMap;");
        assert_eq!(
            canon(&b, "HashMap").as_deref(),
            Some("std::collections::HashMap")
        );
    }

    #[test]
    fn renamed_use_binds_alias() {
        let b = build("use std::collections::HashMap as FastMap;");
        assert_eq!(
            canon(&b, "FastMap").as_deref(),
            Some("std::collections::HashMap")
        );
        assert!(canon(&b, "HashMap").is_none());
    }

    #[test]
    fn nested_groups_self_and_siblings() {
        let b = build(
            "use std::{collections::{HashMap as FM, HashSet}, sync::{self, Arc}, rc::Rc as Shared};",
        );
        assert_eq!(
            canon(&b, "FM").as_deref(),
            Some("std::collections::HashMap")
        );
        assert_eq!(
            canon(&b, "HashSet").as_deref(),
            Some("std::collections::HashSet")
        );
        assert_eq!(canon(&b, "sync").as_deref(), Some("std::sync"));
        assert_eq!(canon(&b, "Arc").as_deref(), Some("std::sync::Arc"));
        assert_eq!(canon(&b, "Shared").as_deref(), Some("std::rc::Rc"));
    }

    #[test]
    fn globs_bind_nothing() {
        let b = build("use std::collections::*; use x::{a::*, b::C};");
        assert_eq!(b.len(), 1);
        assert_eq!(canon(&b, "C").as_deref(), Some("x::b::C"));
    }

    #[test]
    fn crate_rename_binds_single_segment() {
        let b = build("use rand as r;");
        assert_eq!(canon(&b, "r").as_deref(), Some("rand"));
    }

    #[test]
    fn type_alias_canonicalizes_through_uses() {
        let b = build(
            "use std::collections::HashMap as FM;\n\
             type Table = FM<u64, u32>;\n\
             type Direct = std::collections::HashSet<u64>;",
        );
        assert_eq!(
            canon(&b, "Table").as_deref(),
            Some("std::collections::HashMap")
        );
        assert_eq!(
            canon(&b, "Direct").as_deref(),
            Some("std::collections::HashSet")
        );
    }

    #[test]
    fn fn_local_use_shadows_and_expires() {
        let src = "use std::collections::HashMap as M;\n\
                   fn f() { use std::collections::BTreeMap as M; let m: M<u8,u8> = M::new(); }\n\
                   fn g() { let m: M<u8,u8> = M::new(); }";
        let toks: Vec<crate::lex::Tok> = lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let refs: Vec<&crate::lex::Tok> = toks.iter().collect();
        let scopes = ScopeTree::build(&refs);
        let table = SymbolTable::build(&refs, &scopes);
        let m_sites: Vec<usize> = refs
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("M"))
            .map(|(i, _)| i)
            .collect();
        // Sites: [file use, f's use, f annotation, f ctor, g annotation, g ctor]
        assert_eq!(m_sites.len(), 6);
        for &s in &m_sites[2..4] {
            assert_eq!(
                table.resolve("M", s).unwrap().join("::"),
                "std::collections::BTreeMap",
                "inside f the local alias shadows"
            );
        }
        for &s in &m_sites[4..6] {
            assert_eq!(
                table.resolve("M", s).unwrap().join("::"),
                "std::collections::HashMap",
                "f's alias must expire at its closing brace"
            );
        }
    }

    #[test]
    fn expression_position_use_is_not_a_declaration() {
        let b = build("fn f(u: U) -> u32 { let used = u.r#use; used.x }");
        assert!(b.is_empty());
    }
}
