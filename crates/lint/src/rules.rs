//! The typed rule set of the determinism contract (DESIGN.md §4e).

use std::fmt;

/// A determinism/hygiene rule, or one of the pragma meta-rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Iteration over `HashMap`/`HashSet` in sim-facing crates, where
    /// `RandomState` iteration order can leak into event order, RNG
    /// draws, or serialized output.
    D001,
    /// Wall-clock reads (`Instant::now`, `SystemTime::now`): simulated
    /// time must come from the engine clock.
    D002,
    /// Unseeded randomness (`thread_rng`, `rand::random`,
    /// `from_entropy`): every stream must derive from the run seed.
    D003,
    /// Ambient process state (`std::env`) in sim-facing crates: runs
    /// must not depend on the invoking environment.
    D004,
    /// `unsafe` blocks (doubly enforced by `#![forbid(unsafe_code)]`).
    D005,
    /// `std::rc::Rc` in a sim-facing crate: node and message state must
    /// be `Send` for the sharded executor — share with `Arc` or the
    /// engine's `Interned` payloads instead.
    D006,
    /// A `decent-lint: allow(...)` pragma that suppressed nothing —
    /// stale suppressions are errors so they cannot rot in place.
    P000,
    /// A pragma that does not parse (unknown rule id, missing or empty
    /// `reason`), which would otherwise silently suppress nothing.
    P001,
}

/// Every rule, in report order.
pub const ALL_RULES: [Rule; 8] = [
    Rule::D001,
    Rule::D002,
    Rule::D003,
    Rule::D004,
    Rule::D005,
    Rule::D006,
    Rule::P000,
    Rule::P001,
];

impl Rule {
    /// The stable rule id (`D001` ... `D006`, `P000`, `P001`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::D005 => "D005",
            Rule::D006 => "D006",
            Rule::P000 => "P000",
            Rule::P001 => "P001",
        }
    }

    /// Parses a rule id as written inside an `allow(...)` pragma. Only
    /// the suppressible rules parse: the pragma meta-rules cannot be
    /// allowed away.
    pub fn parse_allowable(s: &str) -> Option<Rule> {
        match s {
            "D001" => Some(Rule::D001),
            "D002" => Some(Rule::D002),
            "D003" => Some(Rule::D003),
            "D004" => Some(Rule::D004),
            "D005" => Some(Rule::D005),
            "D006" => Some(Rule::D006),
            _ => None,
        }
    }

    /// One-line description used by `--rules` and the findings report.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D001 => "iteration over HashMap/HashSet in a sim-facing crate",
            Rule::D002 => "wall-clock read (Instant::now / SystemTime)",
            Rule::D003 => "unseeded randomness (thread_rng / rand::random / from_entropy)",
            Rule::D004 => "ambient process state (std::env) in a sim-facing crate",
            Rule::D005 => "unsafe block",
            Rule::D006 => "non-Send Rc shared state in a sim-facing crate (use Arc/Interned)",
            Rule::P000 => "unused decent-lint pragma",
            Rule::P001 => "malformed decent-lint pragma",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path as reported (workspace-relative when walking a workspace).
    pub file: String,
    /// 1-indexed source line.
    pub line: u32,
    /// Violated rule.
    pub rule: Rule,
    /// Human-oriented detail (what was matched, and on what).
    pub message: String,
}

impl Finding {
    /// Sort key giving the stable file/line/rule report order.
    pub fn sort_key(&self) -> (String, u32, Rule, String) {
        (
            self.file.clone(),
            self.line,
            self.rule,
            self.message.clone(),
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}: {}",
            self.file,
            self.line,
            self.rule,
            self.rule.summary(),
            self.message
        )
    }
}
