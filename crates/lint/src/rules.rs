//! The typed rule set of the determinism contract (DESIGN.md §4e, §4j).

use std::fmt;

/// A determinism/hygiene rule, or one of the pragma meta-rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Iteration over `HashMap`/`HashSet` in sim-facing crates, where
    /// `RandomState` iteration order can leak into event order, RNG
    /// draws, or serialized output.
    D001,
    /// Wall-clock reads (`Instant::now`, `SystemTime::now`): simulated
    /// time must come from the engine clock.
    D002,
    /// Unseeded randomness (`thread_rng`, `rand::random`,
    /// `from_entropy`): every stream must derive from the run seed.
    D003,
    /// Ambient process state (`std::env`) in sim-facing crates: runs
    /// must not depend on the invoking environment.
    D004,
    /// `unsafe` blocks (doubly enforced by `#![forbid(unsafe_code)]`).
    D005,
    /// `std::rc::Rc` in a sim-facing crate: node and message state must
    /// be `Send` for the sharded executor — share with `Arc` or the
    /// engine's `Interned` payloads instead.
    D006,
    /// Shared-atomic mutation in a sim-facing crate. The sharded
    /// executor's window-barrier merge protocol tolerates *only*
    /// merge-only commutative counters read after the barrier:
    /// non-commutative operations (`store`, `swap`,
    /// `compare_exchange`) and non-`Relaxed` orderings make the final
    /// value depend on thread interleaving, and even commutative RMWs
    /// (`fetch_add` & co.) must carry a pragma documenting the
    /// merge-only discipline.
    D007,
    /// `partial_cmp(..).unwrap()`-style float comparison in sort
    /// comparators: `PartialOrd` on floats is not a total order, so the
    /// comparator can panic (NaN) or — worse — let the sort produce an
    /// implementation-defined permutation. Use `f64::total_cmp`.
    D008,
    /// `sort_unstable_by`/`sort_unstable_by_key` in a sim-facing crate
    /// without a pragma-documented injectivity argument: when the key
    /// can tie between distinct elements, the unstable sort's output
    /// permutation is unspecified and may leak into observable order.
    D009,
    /// Blocking synchronization (`Mutex`, `RwLock`, `mpsc`, `Condvar`)
    /// in a sim-facing crate: cross-shard blocking outside the
    /// executor's own window barrier makes the schedule depend on
    /// thread timing.
    D010,
    /// A `decent-lint: allow(...)` pragma that suppressed nothing —
    /// stale suppressions are errors so they cannot rot in place.
    P000,
    /// A pragma that does not parse (unknown rule id, missing or empty
    /// `reason`), which would otherwise silently suppress nothing.
    P001,
}

/// Every rule, in report order.
pub const ALL_RULES: [Rule; 12] = [
    Rule::D001,
    Rule::D002,
    Rule::D003,
    Rule::D004,
    Rule::D005,
    Rule::D006,
    Rule::D007,
    Rule::D008,
    Rule::D009,
    Rule::D010,
    Rule::P000,
    Rule::P001,
];

impl Rule {
    /// The stable rule id (`D001` ... `D010`, `P000`, `P001`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::D005 => "D005",
            Rule::D006 => "D006",
            Rule::D007 => "D007",
            Rule::D008 => "D008",
            Rule::D009 => "D009",
            Rule::D010 => "D010",
            Rule::P000 => "P000",
            Rule::P001 => "P001",
        }
    }

    /// Parses a rule id as written inside an `allow(...)` pragma. Only
    /// the suppressible rules parse: the pragma meta-rules cannot be
    /// allowed away.
    pub fn parse_allowable(s: &str) -> Option<Rule> {
        match s {
            "D001" => Some(Rule::D001),
            "D002" => Some(Rule::D002),
            "D003" => Some(Rule::D003),
            "D004" => Some(Rule::D004),
            "D005" => Some(Rule::D005),
            "D006" => Some(Rule::D006),
            "D007" => Some(Rule::D007),
            "D008" => Some(Rule::D008),
            "D009" => Some(Rule::D009),
            "D010" => Some(Rule::D010),
            _ => None,
        }
    }

    /// Parses any rule id, including the pragma meta-rules (used by
    /// `--explain`, which must be able to explain P000/P001 too).
    pub fn parse_any(s: &str) -> Option<Rule> {
        match s {
            "P000" => Some(Rule::P000),
            "P001" => Some(Rule::P001),
            other => Rule::parse_allowable(other),
        }
    }

    /// One-line description used by `--rules` and the findings report.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D001 => "iteration over HashMap/HashSet in a sim-facing crate",
            Rule::D002 => "wall-clock read (Instant::now / SystemTime)",
            Rule::D003 => "unseeded randomness (thread_rng / rand::random / from_entropy)",
            Rule::D004 => "ambient process state (std::env) in a sim-facing crate",
            Rule::D005 => "unsafe block",
            Rule::D006 => "non-Send Rc shared state in a sim-facing crate (use Arc/Interned)",
            Rule::D007 => "shared-atomic mutation in a sim-facing crate (merge-only Relaxed counters need a pragma; anything else is a violation)",
            Rule::D008 => "partial_cmp in a comparator (floats are not totally ordered; use total_cmp)",
            Rule::D009 => "keyed unstable sort without a pragma-documented injectivity argument",
            Rule::D010 => "blocking synchronization (Mutex/RwLock/mpsc/Condvar) in a sim-facing crate",
            Rule::P000 => "unused decent-lint pragma",
            Rule::P001 => "malformed decent-lint pragma",
        }
    }

    /// The full rationale printed by `decent-lint --explain`.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::D001 => {
                "HashMap/HashSet iterate in RandomState order, which differs per process. \
                 If that order reaches event scheduling, RNG draws, or serialized output, two \
                 runs with the same seed diverge. Iterate BTreeMap/BTreeSet, or end the chain \
                 in a commutative terminator (sum/count/any/...) the analyzer can prove \
                 order-insensitive."
            }
            Rule::D002 => {
                "Simulated time must be a pure function of the event schedule. Instant::now() \
                 and SystemTime readings smuggle host wall-clock into the run, so reports stop \
                 being reproducible byte-for-byte. Use the engine clock (Context::now)."
            }
            Rule::D003 => {
                "thread_rng, rand::random and from_entropy seed from OS entropy, so every run \
                 draws a different stream. All randomness must derive from the run seed \
                 (derive_seed / per-node RNG streams) so a seed fully determines the run."
            }
            Rule::D004 => {
                "std::env reads make a run depend on the invoking shell (variables, cwd, \
                 argv). Sim-facing code must take configuration through typed params so a \
                 scenario is reproducible from its report alone."
            }
            Rule::D005 => {
                "unsafe blocks can introduce data races and uninitialized reads — exactly the \
                 nondeterminism this workspace exists to exclude — and are doubly banned via \
                 #![forbid(unsafe_code)] on every crate."
            }
            Rule::D006 => {
                "Rc is !Send, so any node or message state holding one cannot cross the \
                 sharded executor's worker threads. Share immutable data with Arc or the \
                 engine's Interned payloads instead."
            }
            Rule::D007 => {
                "Cross-thread shared state lives outside the (time, seq) merge order that \
                 makes sharded runs byte-identical to serial. The window-barrier protocol \
                 tolerates exactly one shape: commutative merge-only counters (fetch_add and \
                 friends, Relaxed), read only after the barrier — and even those must carry a \
                 pragma documenting that discipline. store/swap/compare_exchange make the \
                 final value depend on which thread ran last; Acquire/Release/SeqCst \
                 orderings advertise cross-thread happens-before relationships the merge \
                 protocol neither needs nor honours."
            }
            Rule::D008 => {
                "PartialOrd on floats is not a total order: NaN panics the unwrap, and an \
                 inconsistent comparator lets sort_by produce an implementation-defined \
                 permutation (or, since Rust 1.81, panic mid-sort). f64::total_cmp is a total \
                 order over every bit pattern and costs the same."
            }
            Rule::D009 => {
                "sort_unstable_by(_key) gives an unspecified permutation whenever the \
                 comparator ties distinct elements, and 'unspecified' may change across rustc \
                 releases — silently reordering observable output. Either the key is \
                 injective over the slice (document that with a pragma) or the sort must be \
                 stable. Plain sort_unstable() on the element's own Ord is exempt: equal \
                 elements are indistinguishable, so every permutation serializes identically."
            }
            Rule::D010 => {
                "A Mutex/RwLock/Condvar or mpsc channel in sim-facing code means some \
                 schedule depends on which thread wins a race. The only sanctioned blocking \
                 is the sharded executor's own window barrier, where workers park at a \
                 deterministic point and results are merged in (time, seq) order."
            }
            Rule::P000 => {
                "A pragma that suppresses nothing is a stale suppression: the site it \
                 justified was fixed or moved, and leaving it in place would silently allow a \
                 future violation. Remove it (or move it to the line it covers)."
            }
            Rule::P001 => {
                "A pragma that does not parse would silently suppress nothing while looking \
                 like a justification. The grammar is: \
                 // decent-lint: allow(D00x[,D00y]) reason=\"non-empty\"."
            }
        }
    }

    /// A minimal violating example for `--explain`, verified by a unit
    /// test to actually trigger the rule when analyzed as sim-facing.
    pub fn example(self) -> &'static str {
        match self {
            Rule::D001 => "fn f(m: &HashMap<u64, u32>) -> Vec<u64> {\n    m.keys().copied().collect()\n}",
            Rule::D002 => "fn f() {\n    let _t0 = Instant::now();\n}",
            Rule::D003 => "fn f() -> u64 {\n    thread_rng().gen()\n}",
            Rule::D004 => "fn f() -> Option<String> {\n    std::env::var(\"SEED\").ok()\n}",
            Rule::D005 => "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}",
            Rule::D006 => "use std::rc::Rc;\nfn f() -> Rc<u64> {\n    Rc::new(1)\n}",
            Rule::D007 => "fn f(shared: &std::sync::atomic::AtomicU64) {\n    shared.store(7, Ordering::SeqCst);\n    shared.fetch_add(1, Ordering::Relaxed); // needs a merge-only pragma\n}",
            Rule::D008 => "fn f(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}",
            Rule::D009 => "fn f(xs: &mut [(u64, String)]) {\n    xs.sort_unstable_by_key(|x| x.0); // ties between distinct elements\n}",
            Rule::D010 => "use std::sync::Mutex;\nfn f() -> Mutex<u64> {\n    Mutex::new(0)\n}",
            Rule::P000 => "// decent-lint: allow(D002) reason=\"nothing on the next line reads a clock\"\nfn f() {}",
            Rule::P001 => "// decent-lint: allow(D002)\nfn f() {}",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path as reported (workspace-relative when walking a workspace).
    pub file: String,
    /// 1-indexed source line.
    pub line: u32,
    /// Violated rule.
    pub rule: Rule,
    /// Human-oriented detail (what was matched, and on what).
    pub message: String,
}

impl Finding {
    /// Sort key giving the stable file/line/rule report order.
    pub fn sort_key(&self) -> (String, u32, Rule, String) {
        (
            self.file.clone(),
            self.line,
            self.rule,
            self.message.clone(),
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}: {}",
            self.file,
            self.line,
            self.rule,
            self.rule.summary(),
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `--explain` must stay exhaustive: every rule carries a non-empty
    /// rationale and an example that *actually triggers the rule* when
    /// run through the analyzer (sim-facing), so the documentation can
    /// never drift from the implementation.
    #[test]
    fn every_rule_has_a_self_demonstrating_explanation() {
        for rule in ALL_RULES {
            assert!(
                rule.rationale().len() > 40,
                "{rule}: rationale too short to explain anything"
            );
            let example = rule.example();
            assert!(!example.is_empty(), "{rule}: no example");
            let findings = crate::analyze::analyze_source("explain.rs", example, true);
            assert!(
                findings.iter().any(|f| f.rule == rule),
                "{rule}: example does not trigger the rule; findings = {findings:?}"
            );
        }
    }

    #[test]
    fn parse_any_covers_meta_rules_and_rejects_unknown() {
        assert_eq!(Rule::parse_any("P000"), Some(Rule::P000));
        assert_eq!(Rule::parse_any("D010"), Some(Rule::D010));
        assert_eq!(Rule::parse_any("D011"), None);
        assert_eq!(Rule::parse_allowable("P000"), None);
    }

    #[test]
    fn all_rules_have_distinct_codes_in_order() {
        let codes: Vec<&str> = ALL_RULES.iter().map(|r| r.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ALL_RULES.len());
        assert_eq!(codes.first(), Some(&"D001"));
        assert_eq!(codes.last(), Some(&"P001"));
    }
}
