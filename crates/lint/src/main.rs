//! `decent-lint` CLI.
//!
//! ```text
//! cargo run -p decent-lint -- --workspace [--root DIR] [--json PATH] [--quiet]
//! cargo run -p decent-lint -- --rules
//! ```
//!
//! Exit status: 0 when clean, 1 when any finding (including unused or
//! malformed pragmas) survives, 2 on usage or I/O errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use decent_lint::{lint_workspace, report, rules::ALL_RULES};

struct Cli {
    workspace: bool,
    root: PathBuf,
    json: Option<PathBuf>,
    quiet: bool,
    rules: bool,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        workspace: false,
        root: PathBuf::from("."),
        json: None,
        quiet: false,
        rules: false,
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => cli.workspace = true,
            "--rules" => cli.rules = true,
            "--quiet" => cli.quiet = true,
            "--root" => {
                cli.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--json" => {
                cli.json = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !cli.workspace && !cli.rules {
        return Err("nothing to do: pass --workspace (and optionally --json PATH)".to_string());
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("decent-lint: {e}");
            eprintln!(
                "usage: decent-lint --workspace [--root DIR] [--json PATH] [--quiet] | --rules"
            );
            return ExitCode::from(2);
        }
    };
    if cli.rules {
        for r in ALL_RULES {
            println!("{}  {}", r.code(), r.summary());
        }
        if !cli.workspace {
            return ExitCode::SUCCESS;
        }
    }
    let ws = match lint_workspace(&cli.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("decent-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &cli.json {
        let doc = report::to_json(&ws.findings, ws.files_scanned, ws.pragmas_used);
        if let Err(e) = std::fs::write(path, doc + "\n") {
            eprintln!("decent-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !cli.quiet {
        print!(
            "{}",
            report::to_text(&ws.findings, ws.files_scanned, ws.pragmas_used)
        );
    }
    if ws.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
