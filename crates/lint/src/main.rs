//! `decent-lint` CLI.
//!
//! ```text
//! cargo run -p decent-lint -- --workspace [--root DIR] [--json PATH] [--md PATH] [--quiet]
//! cargo run -p decent-lint -- --rules
//! cargo run -p decent-lint -- --explain D007
//! cargo run -p decent-lint -- --schema-check lint-report.json
//! ```
//!
//! Exit status: 0 when clean, 1 when any finding (including unused or
//! malformed pragmas) survives, 2 on usage or I/O errors.
//! `--schema-check` exits 0 on a valid report regardless of how many
//! findings it records — it validates the document, not the tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use decent_lint::{
    lint_workspace, report,
    rules::{Rule, ALL_RULES},
    schema,
};

struct Cli {
    workspace: bool,
    root: PathBuf,
    json: Option<PathBuf>,
    md: Option<PathBuf>,
    quiet: bool,
    rules: bool,
    explain: Option<String>,
    schema_check: Option<PathBuf>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        workspace: false,
        root: PathBuf::from("."),
        json: None,
        md: None,
        quiet: false,
        rules: false,
        explain: None,
        schema_check: None,
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => cli.workspace = true,
            "--rules" => cli.rules = true,
            "--quiet" => cli.quiet = true,
            "--root" => {
                cli.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--json" => {
                cli.json = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
            }
            "--md" => {
                cli.md = Some(PathBuf::from(args.next().ok_or("--md needs a path")?));
            }
            "--explain" => {
                cli.explain = Some(args.next().ok_or("--explain needs a rule id (e.g. D007)")?);
            }
            "--schema-check" => {
                cli.schema_check = Some(PathBuf::from(
                    args.next().ok_or("--schema-check needs a report path")?,
                ));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !cli.workspace && !cli.rules && cli.explain.is_none() && cli.schema_check.is_none() {
        return Err("nothing to do: pass --workspace (and optionally --json PATH)".to_string());
    }
    Ok(cli)
}

/// Renders the `--explain` page for one rule.
fn explain(rule: Rule) -> String {
    format!(
        "{} — {}\n\n{}\n\nExample (violates {}):\n\n{}\n",
        rule.code(),
        rule.summary(),
        rule.rationale(),
        rule.code(),
        rule.example()
            .lines()
            .map(|l| format!("    {l}"))
            .collect::<Vec<_>>()
            .join("\n"),
    )
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("decent-lint: {e}");
            eprintln!(
                "usage: decent-lint --workspace [--root DIR] [--json PATH] [--md PATH] [--quiet] \
                 | --rules | --explain CODE | --schema-check PATH"
            );
            return ExitCode::from(2);
        }
    };
    if let Some(id) = &cli.explain {
        let Some(rule) = Rule::parse_any(id) else {
            eprintln!("decent-lint: unknown rule id `{id}` (try --rules for the list)");
            return ExitCode::from(2);
        };
        print!("{}", explain(rule));
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &cli.schema_check {
        let doc = match std::fs::read_to_string(path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("decent-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        return match schema::check_report(&doc) {
            Ok(summary) => {
                println!(
                    "decent-lint: {} is a valid {} report ({} finding(s), {} file(s) scanned)",
                    path.display(),
                    report::LINT_REPORT_SCHEMA,
                    summary.findings,
                    summary.files_scanned
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("decent-lint: {}: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }
    if cli.rules {
        for r in ALL_RULES {
            println!("{}  {}", r.code(), r.summary());
        }
        if !cli.workspace {
            return ExitCode::SUCCESS;
        }
    }
    let ws = match lint_workspace(&cli.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("decent-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &cli.json {
        let doc = report::to_json(&ws.findings, ws.files_scanned, ws.pragmas_used);
        if let Err(e) = std::fs::write(path, doc + "\n") {
            eprintln!("decent-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &cli.md {
        let doc = report::to_markdown(&ws.findings, ws.files_scanned, ws.pragmas_used);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("decent-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !cli.quiet {
        print!(
            "{}",
            report::to_text(&ws.findings, ws.files_scanned, ws.pragmas_used)
        );
    }
    if ws.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
