//! Schema validation for `decent.lint-report/2` JSON documents.
//!
//! CI writes the lint report with `--json` and then re-reads it with
//! `--schema-check` before publishing, so a malformed writer (or a
//! hand-edited artifact) fails the job instead of shipping a report
//! downstream tooling cannot parse. The validator carries its own
//! minimal JSON reader — same dependency-free discipline as the rest of
//! the crate — and checks structure, not just well-formedness: the
//! schema tag, the field types, one `rule_totals` key per rule in
//! report order, and totals consistent with the findings list.

use crate::report::LINT_REPORT_SCHEMA;
use crate::rules::{Rule, ALL_RULES};

/// A parsed JSON value. Object keys keep their document order so the
/// validator can check `rule_totals` ordering determinism.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (reports only use non-negative integers).
    Num(f64),
    /// String
    Str(String),
    /// Array
    Arr(Vec<Value>),
    /// Object, in document key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// What a validated report contains, for the CLI's confirmation line.
#[derive(Debug, PartialEq, Eq)]
pub struct ReportSummary {
    /// Number of findings in the document.
    pub findings: usize,
    /// `files_scanned` field.
    pub files_scanned: u64,
}

/// Parses a JSON document (strict enough for lint reports: no trailing
/// garbage, standard escapes).
///
/// # Errors
///
/// Returns a position-annotated message on malformed input.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

/// Validates a `decent.lint-report/2` document.
///
/// # Errors
///
/// Returns the first structural problem found, as a human-readable
/// message.
pub fn check_report(src: &str) -> Result<ReportSummary, String> {
    let doc = parse(src)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing string field `schema`")?;
    if schema != LINT_REPORT_SCHEMA {
        return Err(format!(
            "schema mismatch: expected `{LINT_REPORT_SCHEMA}`, found `{schema}`"
        ));
    }
    let files_scanned = doc
        .get("files_scanned")
        .and_then(Value::as_u64)
        .ok_or("missing integer field `files_scanned`")?;
    doc.get("pragmas_used")
        .and_then(Value::as_u64)
        .ok_or("missing integer field `pragmas_used`")?;

    let Some(Value::Obj(totals)) = doc.get("rule_totals") else {
        return Err("missing object field `rule_totals`".to_string());
    };
    let expected: Vec<&str> = ALL_RULES.iter().map(|r| r.code()).collect();
    let got: Vec<&str> = totals.iter().map(|(k, _)| k.as_str()).collect();
    if got != expected {
        return Err(format!(
            "rule_totals keys must be exactly {expected:?} in order, found {got:?}"
        ));
    }

    let Some(Value::Arr(findings)) = doc.get("findings") else {
        return Err("missing array field `findings`".to_string());
    };
    for (i, f) in findings.iter().enumerate() {
        f.get("file")
            .and_then(Value::as_str)
            .ok_or(format!("finding {i}: missing string field `file`"))?;
        f.get("line")
            .and_then(Value::as_u64)
            .ok_or(format!("finding {i}: missing integer field `line`"))?;
        let rule = f
            .get("rule")
            .and_then(Value::as_str)
            .ok_or(format!("finding {i}: missing string field `rule`"))?;
        if Rule::parse_any(rule).is_none() {
            return Err(format!("finding {i}: unknown rule id `{rule}`"));
        }
        f.get("message")
            .and_then(Value::as_str)
            .ok_or(format!("finding {i}: missing string field `message`"))?;
    }

    // Totals must agree with the findings list.
    for rule in ALL_RULES {
        let total = totals
            .iter()
            .find(|(k, _)| k == rule.code())
            .and_then(|(_, v)| v.as_u64())
            .ok_or(format!("rule_totals.{rule} is not an integer"))?;
        let counted = findings
            .iter()
            .filter(|f| f.get("rule").and_then(Value::as_str) == Some(rule.code()))
            .count() as u64;
        if total != counted {
            return Err(format!(
                "rule_totals.{rule} = {total}, but the findings list holds {counted}"
            ));
        }
    }

    Ok(ReportSummary {
        findings: findings.len(),
        files_scanned,
    })
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key at byte {pos} is not a string")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape `{hex}`: {e}"))?;
                        // Reports only escape control characters, so
                        // surrogate pairs never occur; reject them
                        // rather than mis-decode.
                        let ch =
                            char::from_u32(cp).ok_or(format!("\\u{hex} is not a scalar value"))?;
                        out.push(ch);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            _ => {
                // Copy the full UTF-8 sequence starting here.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or("empty string tail".to_string())?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    if start == *pos {
        return Err(format!("unexpected byte at {start}"));
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number `{text}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::to_json;
    use crate::rules::Finding;

    fn sample() -> String {
        let findings = vec![Finding {
            file: "crates/x/src/a.rs".to_string(),
            line: 7,
            rule: Rule::D002,
            message: "`Instant::now()`".to_string(),
        }];
        to_json(&findings, 3, 1)
    }

    #[test]
    fn real_reports_validate() {
        let summary = check_report(&sample()).expect("valid");
        assert_eq!(
            summary,
            ReportSummary {
                findings: 1,
                files_scanned: 3
            }
        );
        // The empty report validates too.
        assert!(check_report(&to_json(&[], 0, 0)).is_ok());
    }

    #[test]
    fn schema_tag_is_enforced() {
        let doc = sample().replace("decent.lint-report/2", "decent.lint-report/1");
        let err = check_report(&doc).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn inconsistent_totals_are_rejected() {
        let doc = sample().replace("\"D002\":1", "\"D002\":2");
        let err = check_report(&doc).unwrap_err();
        assert!(err.contains("rule_totals.D002"), "{err}");
    }

    #[test]
    fn missing_and_reordered_total_keys_are_rejected() {
        let doc = sample().replace("\"D001\":0,\"D002\":1", "\"D002\":1,\"D001\":0");
        assert!(check_report(&doc).unwrap_err().contains("in order"));
    }

    #[test]
    fn unknown_rule_ids_are_rejected() {
        let doc = sample().replace("\"rule\":\"D002\"", "\"rule\":\"D099\"");
        assert!(check_report(&doc).unwrap_err().contains("unknown rule id"));
    }

    #[test]
    fn parser_round_trips_escapes_and_rejects_garbage() {
        let v = parse("{\"a\":\"x\\n\\\"y\\u0007\",\"b\":[1,2.5,true,null]}").expect("parses");
        assert_eq!(v.get("a").unwrap(), &Value::Str("x\n\"y\u{7}".to_string()));
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("").is_err());
    }
}
