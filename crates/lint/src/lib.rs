//! # decent-lint — the determinism contract, machine-checked
//!
//! The `decent` workspace's entire value proposition is bit-for-bit
//! determinism: claim baselines, golden traces, serial-vs-parallel JSON
//! byte-identity and sweep reproducibility all assume there is no
//! hidden nondeterminism anywhere in sim-facing code. This crate turns
//! that convention into a machine-checked contract (DESIGN.md §4e):
//!
//! - **D001** — iteration over `HashMap`/`HashSet` in sim-facing
//!   crates, unless the chain is provably order-insensitive (a
//!   commutative terminator such as `.sum()`/`.count()`/`.any()`, or a
//!   `collect::<BTreeMap/BTreeSet<_>>()`). Point lookups, `len()`,
//!   `contains` stay legal.
//! - **D002** — wall-clock reads (`Instant::now`, `SystemTime::...`).
//! - **D003** — unseeded randomness (`thread_rng`, `rand::random`,
//!   `from_entropy`).
//! - **D004** — ambient process state (`std::env`) in sim-facing
//!   crates.
//! - **D005** — `unsafe` blocks (doubly enforced by
//!   `#![forbid(unsafe_code)]` on every workspace crate).
//! - **D006** — `std::rc::Rc` in sim-facing crates: node/message state
//!   must be `Send` for the sharded executor.
//! - **D007** — shared-atomic mutation in sim-facing crates: the
//!   window-barrier merge protocol tolerates only merge-only
//!   commutative `Relaxed` counters, and those only under a pragma
//!   documenting the discipline.
//! - **D008** — `.partial_cmp(..)` comparators (floats are not totally
//!   ordered; `total_cmp` is).
//! - **D009** — keyed unstable sorts (`sort_unstable_by(_key)`) without
//!   a pragma-documented injectivity argument.
//! - **D010** — blocking synchronization (`Mutex`, `RwLock`, `mpsc`,
//!   `Condvar`) in sim-facing crates.
//!
//! Rules match through a scope-aware symbol layer ([`scope`],
//! [`symbols`]): per-scope `use`-tree aliases and `type` aliases are
//! resolved to canonical paths before matching, so
//! `use std::collections::HashMap as FastMap;` cannot evade D001.
//!
//! Findings are suppressible only via an inline pragma
//!
//! ```text
//! // decent-lint: allow(D002) reason="harness timing; never serialized"
//! ```
//!
//! and unused pragmas are themselves errors (**P000**, with malformed
//! pragmas reported as **P001**), so suppressions cannot rot.
//!
//! Everything is hand-rolled in the same spirit as `decent_sim::json`:
//! a small Rust lexer, no syn, no serde, no dependencies — the tool
//! must build in the offline CI container before anything else does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod lex;
pub mod report;
pub mod rules;
pub mod schema;
pub mod scope;
pub mod symbols;
pub mod workspace;

pub use analyze::{analyze_source, analyze_source_with_stats, SIM_FACING_CRATES};
pub use rules::{Finding, Rule};

/// Outcome of linting a whole workspace.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// All surviving findings in stable file/line/rule order.
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_scanned: usize,
    /// Number of pragma suppressions that were actually exercised.
    pub pragmas_used: usize,
}

/// Lints every workspace member under `root`.
///
/// # Errors
///
/// Returns a message when the workspace cannot be enumerated or a
/// source file cannot be read.
pub fn lint_workspace(root: &std::path::Path) -> Result<WorkspaceReport, String> {
    let files = workspace::workspace_files(root)?;
    let mut findings = Vec::new();
    let mut pragmas_used = 0usize;
    let files_scanned = files.len();
    for f in &files {
        let src = std::fs::read_to_string(&f.path)
            .map_err(|e| format!("cannot read {}: {e}", f.path.display()))?;
        let (file_findings, used) = analyze_source_with_stats(&f.rel, &src, f.sim_facing);
        pragmas_used += used;
        findings.extend(file_findings);
    }
    findings.sort_by_key(Finding::sort_key);
    Ok(WorkspaceReport {
        findings,
        files_scanned,
        pragmas_used,
    })
}
