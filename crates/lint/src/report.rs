//! Findings output: human-readable text, a deterministic JSON document
//! (`decent.lint-report/2`), and a markdown per-rule table for CI step
//! summaries.
//!
//! The JSON is produced by a local writer in the same spirit as
//! `decent_sim::json` — insertion-ordered keys, one canonical string
//! escape — but kept here so the lint crate stays dependency-free and
//! buildable before anything else in the workspace.

use crate::rules::{Finding, ALL_RULES};

/// Schema identifier embedded in the JSON report. Version 2 grew the
/// rule set to D001–D010 (the `rule_totals` object gained keys; the
/// field shapes are unchanged from version 1).
pub const LINT_REPORT_SCHEMA: &str = "decent.lint-report/2";

/// Renders findings as human-readable lines plus a summary tail.
pub fn to_text(findings: &[Finding], files_scanned: usize, pragmas_used: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str(&format!(
            "decent-lint: clean — {files_scanned} files scanned, {pragmas_used} pragma(s) in use\n"
        ));
    } else {
        out.push_str(&format!(
            "decent-lint: {} finding(s) in {files_scanned} files\n",
            findings.len()
        ));
    }
    out
}

/// Renders the deterministic JSON report. Findings must already be in
/// their stable file/line/rule order (the analyzer guarantees this).
pub fn to_json(findings: &[Finding], files_scanned: usize, pragmas_used: usize) -> String {
    let mut s = String::new();
    s.push_str("{\"schema\":");
    write_str(&mut s, LINT_REPORT_SCHEMA);
    s.push_str(&format!(",\"files_scanned\":{files_scanned}"));
    s.push_str(&format!(",\"pragmas_used\":{pragmas_used}"));
    s.push_str(",\"rule_totals\":{");
    let mut first = true;
    for rule in ALL_RULES {
        let n = findings.iter().filter(|f| f.rule == rule).count();
        if !first {
            s.push(',');
        }
        first = false;
        write_str(&mut s, rule.code());
        s.push_str(&format!(":{n}"));
    }
    s.push_str("},\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"file\":");
        write_str(&mut s, &f.file);
        s.push_str(&format!(",\"line\":{}", f.line));
        s.push_str(",\"rule\":");
        write_str(&mut s, f.rule.code());
        s.push_str(",\"message\":");
        write_str(&mut s, &f.message);
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Renders the per-rule finding table as GitHub-flavored markdown, for
/// `$GITHUB_STEP_SUMMARY`. Deterministic: rules in report order, then
/// the findings (if any) as `file:line` detail lines.
pub fn to_markdown(findings: &[Finding], files_scanned: usize, pragmas_used: usize) -> String {
    let mut s = String::new();
    s.push_str("## decent-lint\n\n");
    s.push_str(&format!(
        "{} finding(s) across {files_scanned} file(s); {pragmas_used} pragma(s) in use.\n\n",
        findings.len()
    ));
    s.push_str("| rule | summary | findings |\n|---|---|---:|\n");
    for rule in ALL_RULES {
        let n = findings.iter().filter(|f| f.rule == rule).count();
        s.push_str(&format!("| {} | {} | {n} |\n", rule.code(), rule.summary()));
    }
    if !findings.is_empty() {
        s.push_str("\n### Findings\n\n");
        for f in findings {
            s.push_str(&format!(
                "- `{}:{}` **{}** — {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
    }
    s
}

/// Writes a JSON string literal with the canonical escapes.
fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding() -> Finding {
        Finding {
            file: "crates/x/src/a.rs".to_string(),
            line: 7,
            rule: Rule::D002,
            message: "`Instant::now()`".to_string(),
        }
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let f = vec![finding()];
        let a = to_json(&f, 3, 1);
        let b = to_json(&f, 3, 1);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"decent.lint-report/2\""));
        assert!(a.contains("\"rule\":\"D002\""));
        assert!(a.contains("\"rule_totals\":{\"D001\":0,\"D002\":1"));
        assert!(a.contains("\"D010\":0"));
    }

    #[test]
    fn text_summarizes() {
        assert!(to_text(&[], 10, 2).contains("clean"));
        assert!(to_text(&[finding()], 10, 0).contains("1 finding(s)"));
    }

    #[test]
    fn markdown_has_a_row_per_rule() {
        let md = to_markdown(&[finding()], 10, 1);
        for rule in ALL_RULES {
            assert!(md.contains(&format!("| {} |", rule.code())), "{rule:?}");
        }
        assert!(md.contains("| D002 |"));
        assert!(md.contains("`crates/x/src/a.rs:7`"));
        // Clean reports omit the findings section.
        assert!(!to_markdown(&[], 10, 0).contains("### Findings"));
    }
}
