//! A small hand-rolled Rust lexer — just enough token structure for the
//! determinism rules, in the same spirit as `decent_sim::json`: no syn,
//! no proc-macro machinery, no dependencies.
//!
//! The lexer understands the token shapes that matter for false-positive
//! avoidance — line and (nested) block comments, string/char/byte/raw
//! literals, lifetimes — so that e.g. a doc comment mentioning
//! `HashMap::iter` or a format string containing `unsafe` never reaches
//! the rule engine as code. Everything else degrades to identifiers and
//! one- or two-character punctuation, which is all the rules consume.

/// What kind of lexeme a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `unsafe`, ...).
    Ident,
    /// Punctuation; multi-character operators that the rules care about
    /// (`::`, `->`) are fused into one token, everything else is split
    /// into single characters.
    Punct,
    /// String / char / byte / raw-string literal (contents opaque).
    Literal,
    /// Numeric literal.
    Number,
    /// `// ...` comment, text preserved for pragma parsing.
    LineComment,
    /// `/* ... */` comment (possibly nested), text preserved.
    BlockComment,
    /// Lifetime such as `'a` (kept distinct so it is never confused
    /// with a char literal).
    Lifetime,
}

/// One lexeme with its 1-indexed source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Lexeme kind.
    pub kind: TokKind,
    /// Lexeme text. For comments this is the full comment including the
    /// delimiters; for literals the delimiters are included but the
    /// rules never inspect them.
    pub text: String,
    /// 1-indexed line of the first character.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Tokenizes `src`. Never fails: unterminated literals or comments are
/// closed by end-of-file, which is good enough for a linter that only
/// runs on code rustc already accepted.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let (start, start_line) = (i, line);
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: b[start..i.min(b.len())].iter().collect(),
                    line: start_line,
                });
            }
            '"' => {
                let (start, start_line) = (i, line);
                i += 1;
                while i < b.len() {
                    match b[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: b[start..i.min(b.len())].iter().collect(),
                    line: start_line,
                });
            }
            'r' | 'b' if raw_string_hashes(&b, i).is_some() => {
                let (start, start_line) = (i, line);
                let (body_start, hashes) = raw_string_hashes(&b, i).expect("checked");
                i = body_start;
                let closer: Vec<char> = std::iter::once('"')
                    .chain(std::iter::repeat_n('#', hashes))
                    .collect();
                while i < b.len() {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    if b[i..].starts_with(&closer[..]) {
                        i += closer.len();
                        break;
                    }
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: b[start..i.min(b.len())].iter().collect(),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                let is_lifetime = i + 1 < b.len()
                    && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                    && !(i + 2 < b.len() && b[i + 2] == '\'');
                if is_lifetime {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[start..i].iter().collect(),
                        line,
                    });
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: b[start..i.min(b.len())].iter().collect(),
                        line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len()
                    && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.')
                    && !(b[i] == '.'
                        && i + 1 < b.len()
                        && (b[i + 1] == '.' || b[i + 1].is_alphabetic() || b[i + 1] == '_'))
                {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Number,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            _ => {
                // Fuse the two-character operators the rules consume.
                let two: String = b[i..(i + 2).min(b.len())].iter().collect();
                if two == "::" || two == "->" || two == "=>" {
                    toks.push(Tok {
                        kind: TokKind::Punct,
                        text: two,
                        line,
                    });
                    i += 2;
                } else {
                    toks.push(Tok {
                        kind: TokKind::Punct,
                        text: c.to_string(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    toks
}

/// If position `i` starts a raw (byte) string (`r"`, `r#"`, `br#"`...),
/// returns `(index just past the opening quote, number of hashes)`.
fn raw_string_hashes(b: &[char], mut i: usize) -> Option<(usize, usize)> {
    if b[i] == 'b' {
        i += 1;
        if i >= b.len() || b[i] != 'r' {
            return None;
        }
    }
    if b.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while b.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) == Some(&'"') {
        Some((i + 1, hashes))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = lex("let s = \"HashMap unsafe\"; // HashMap here\n/* unsafe */ fn f() {}");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "fn", "f"]);
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::LineComment)
                .count(),
            1
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
    }

    #[test]
    fn raw_strings_swallow_fake_code() {
        let toks = lex("let s = r#\"thread_rng() \"quoted\" \"#; ok");
        assert!(toks.iter().any(|t| t.is_ident("ok")));
        assert!(!toks.iter().any(|t| t.is_ident("thread_rng")));
    }

    #[test]
    fn nested_block_comments_terminate() {
        let toks = lex("/* outer /* inner */ still */ real");
        assert!(toks.iter().any(|t| t.is_ident("real")));
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::BlockComment)
                .count(),
            1
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = lex("std::env::var");
        assert!(toks[1].is_punct("::"));
        assert!(toks[3].is_punct("::"));
    }
}
