//! Brace-matched scope tracking over the token stream.
//!
//! The lexer ([`crate::lex`]) deliberately knows nothing about nesting;
//! this layer adds just enough structure for scope-sensitive analysis:
//! every `{ ... }` region becomes a [`Scope`] with a classified
//! [`ScopeKind`] (function, impl/trait block, module, or plain block)
//! and parent links, so the symbol table ([`crate::symbols`]) can bound
//! the visibility of `use`-tree aliases and `type` aliases to the
//! region that declares them — a file-level `use x as y` is visible
//! everywhere, a function-local one only inside that function, and an
//! inner alias shadows an outer one.
//!
//! Indices throughout are *code-token* indices (comments filtered out),
//! matching what the rule engine iterates over.

use crate::lex::{Tok, TokKind};

/// What introduced a brace scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScopeKind {
    /// The whole file (the implicit root scope).
    File,
    /// A `fn` body (including closures' enclosing fn — closures do not
    /// open item scopes of their own, their braces classify as
    /// [`ScopeKind::Block`]).
    Fn,
    /// An `impl` or `trait` block.
    Impl,
    /// An inline `mod name { ... }` body.
    Mod,
    /// Any other brace region: plain blocks, match bodies, struct
    /// literals, loop bodies.
    Block,
}

/// One brace-delimited region of the file.
#[derive(Clone, Copy, Debug)]
pub struct Scope {
    /// What kind of item (if any) owns the braces.
    pub kind: ScopeKind,
    /// Code-token index of the opening `{` (0 for the file root).
    pub open: usize,
    /// Code-token index just past the closing `}` (i.e. exclusive end;
    /// `code.len()` for the file root or an unterminated scope).
    pub close: usize,
    /// Index of the enclosing scope in [`ScopeTree::scopes`] (the file
    /// root is its own parent).
    pub parent: usize,
}

/// All scopes of one file, root first, in opening order.
#[derive(Debug)]
pub struct ScopeTree {
    scopes: Vec<Scope>,
}

impl ScopeTree {
    /// Builds the scope tree for a code-token stream (comments already
    /// filtered out). Never fails: unbalanced braces are closed at end
    /// of file, which is all a linter running on rustc-accepted code
    /// needs.
    pub fn build(code: &[&Tok]) -> ScopeTree {
        let mut scopes = vec![Scope {
            kind: ScopeKind::File,
            open: 0,
            close: code.len(),
            parent: 0,
        }];
        let mut stack: Vec<usize> = vec![0];
        for (i, t) in code.iter().enumerate() {
            if t.is_punct("{") {
                let parent = *stack.last().expect("root never pops");
                let kind = classify_open(code, i);
                scopes.push(Scope {
                    kind,
                    open: i,
                    close: code.len(),
                    parent,
                });
                stack.push(scopes.len() - 1);
            } else if t.is_punct("}") && stack.len() > 1 {
                let id = stack.pop().expect("checked");
                scopes[id].close = i + 1;
            }
        }
        ScopeTree { scopes }
    }

    /// The innermost scope containing code-token index `idx`.
    pub fn innermost(&self, idx: usize) -> usize {
        // Scopes are recorded in opening order, so the *last* scope
        // whose span contains idx is the innermost one.
        let mut best = 0;
        for (id, s) in self.scopes.iter().enumerate() {
            if s.open <= idx && idx < s.close {
                best = id;
            }
        }
        best
    }

    /// Exclusive end (code-token index) of the innermost scope
    /// containing `idx` — the horizon up to which a declaration at
    /// `idx` stays visible.
    pub fn visibility_end(&self, idx: usize) -> usize {
        self.scopes[self.innermost(idx)].close
    }

    /// All scopes, root first.
    pub fn scopes(&self) -> &[Scope] {
        &self.scopes
    }

    /// Whether `idx` sits (transitively) inside a scope of `kind`.
    pub fn within(&self, idx: usize, kind: ScopeKind) -> bool {
        let mut id = self.innermost(idx);
        loop {
            if self.scopes[id].kind == kind {
                return true;
            }
            if id == 0 {
                return false;
            }
            id = self.scopes[id].parent;
        }
    }
}

/// Classifies the brace at code index `open` by scanning back to the
/// start of the introducing item: the nearest earlier `;`, `{`, `}` (or
/// the file start) bounds the header, and the first item keyword inside
/// the header decides the kind. `fn` wins over `impl` so that a method
/// body inside an `impl` block classifies as [`ScopeKind::Fn`] (its
/// header starts after the impl's own `{`).
fn classify_open(code: &[&Tok], open: usize) -> ScopeKind {
    let mut j = open;
    let mut depth = 0i32; // paren/bracket nesting inside the header
    while j > 0 {
        j -= 1;
        let t = code[j];
        if t.is_punct(")") || t.is_punct("]") {
            depth += 1;
        } else if t.is_punct("(") || t.is_punct("[") {
            depth -= 1;
        } else if depth == 0 && (t.is_punct(";") || t.is_punct("{") || t.is_punct("}")) {
            j += 1;
            break;
        }
    }
    let header = &code[j..open];
    for t in header {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "fn" => return ScopeKind::Fn,
            "impl" | "trait" => return ScopeKind::Impl,
            "mod" => return ScopeKind::Mod,
            // `match x { ... }`, `if let ... { }` etc. are expression
            // blocks; `struct`/`enum`/`union` bodies hold no `use`
            // declarations but classify as Block harmlessly.
            _ => {}
        }
    }
    ScopeKind::Block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn code(src: &str) -> Vec<crate::lex::Tok> {
        lex(src)
            .into_iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    crate::lex::TokKind::LineComment | crate::lex::TokKind::BlockComment
                )
            })
            .collect()
    }

    #[test]
    fn classifies_fn_impl_mod_block() {
        let toks = code("mod m { impl S { fn f(&self) { let x = { 1 }; } } }");
        let refs: Vec<&crate::lex::Tok> = toks.iter().collect();
        let tree = ScopeTree::build(&refs);
        let kinds: Vec<ScopeKind> = tree.scopes().iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            [
                ScopeKind::File,
                ScopeKind::Mod,
                ScopeKind::Impl,
                ScopeKind::Fn,
                ScopeKind::Block
            ]
        );
    }

    #[test]
    fn innermost_and_visibility() {
        let toks = code("fn f() { use a::b; } fn g() {}");
        let refs: Vec<&crate::lex::Tok> = toks.iter().collect();
        let tree = ScopeTree::build(&refs);
        // Find the `use` token.
        let use_at = refs.iter().position(|t| t.is_ident("use")).unwrap();
        let inner = tree.innermost(use_at);
        assert_eq!(tree.scopes()[inner].kind, ScopeKind::Fn);
        // Visibility of the use ends before `fn g` starts.
        let g_at = refs.iter().position(|t| t.is_ident("g")).unwrap();
        assert!(tree.visibility_end(use_at) <= g_at);
        assert!(tree.within(use_at, ScopeKind::Fn));
        assert!(!tree.within(use_at, ScopeKind::Impl));
    }

    #[test]
    fn unbalanced_braces_close_at_eof() {
        let toks = code("fn f() { if x { ");
        let refs: Vec<&crate::lex::Tok> = toks.iter().collect();
        let tree = ScopeTree::build(&refs);
        assert!(tree.scopes().iter().all(|s| s.close <= refs.len()));
        assert_eq!(tree.innermost(refs.len() - 1), tree.scopes().len() - 1);
    }

    #[test]
    fn struct_literal_is_a_block_not_an_item() {
        let toks = code("fn f() { let s = S { a: 1 }; }");
        let refs: Vec<&crate::lex::Tok> = toks.iter().collect();
        let tree = ScopeTree::build(&refs);
        let kinds: Vec<ScopeKind> = tree.scopes().iter().map(|s| s.kind).collect();
        assert_eq!(kinds, [ScopeKind::File, ScopeKind::Fn, ScopeKind::Block]);
    }
}
