//! Workspace discovery: which files to lint, and under which crate.
//!
//! The walker reads `members` from the root `Cargo.toml` and lints only
//! those crates (plus the root package, which Cargo makes an implicit
//! member). Everything else — `vendor/` stubs, `target/`, stray
//! checkouts — is never touched, so vendored proptest/rand/criterion
//! sources cannot pollute the findings. Within a member, the walker
//! visits `src/`, `tests/`, `benches/` and `examples/`, skipping any
//! `fixtures` directory (the lint's own golden corpus is deliberately
//! full of violations).

use std::fs;
use std::path::{Path, PathBuf};

use crate::analyze::SIM_FACING_CRATES;

/// One `.rs` file scheduled for analysis.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute (or root-joined) path on disk.
    pub path: PathBuf,
    /// Workspace-relative path used in findings.
    pub rel: String,
    /// Owning crate's package name.
    pub package: String,
    /// Whether D001/D004 apply.
    pub sim_facing: bool,
}

/// Directories walked inside each member crate.
const MEMBER_DIRS: &[&str] = &["src", "tests", "benches", "examples"];

/// Enumerates every lintable `.rs` file under the workspace at `root`,
/// in deterministic (sorted) order.
///
/// # Errors
///
/// Returns a human-readable message when the root manifest is missing
/// or unreadable.
pub fn workspace_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    let manifest = root.join("Cargo.toml");
    let text = fs::read_to_string(&manifest)
        .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
    let mut member_dirs: Vec<PathBuf> = Vec::new();
    for pattern in parse_members(&text) {
        if let Some(prefix) = pattern.strip_suffix("/*") {
            let dir = root.join(prefix);
            let mut subdirs: Vec<PathBuf> = fs::read_dir(&dir)
                .map_err(|e| format!("cannot list {}: {e}", dir.display()))?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect();
            subdirs.sort();
            member_dirs.extend(subdirs);
        } else {
            let dir = root.join(&pattern);
            if dir.join("Cargo.toml").is_file() {
                member_dirs.push(dir);
            }
        }
    }
    // The root package is an implicit workspace member.
    if text.contains("[package]") {
        member_dirs.push(root.to_path_buf());
    }

    let mut files = Vec::new();
    for dir in member_dirs {
        let name = package_name(&dir.join("Cargo.toml"))
            .ok_or_else(|| format!("no package name in {}", dir.display()))?;
        let sim_facing = SIM_FACING_CRATES.contains(&name.as_str());
        for sub in MEMBER_DIRS {
            let d = dir.join(sub);
            if d.is_dir() {
                collect_rs(&d, &mut |p| {
                    let rel = p
                        .strip_prefix(root)
                        .unwrap_or(p)
                        .to_string_lossy()
                        .replace('\\', "/");
                    files.push(SourceFile {
                        path: p.to_path_buf(),
                        rel,
                        package: name.clone(),
                        sim_facing,
                    });
                });
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

/// Recursively collects `.rs` files under `dir` (sorted), skipping
/// `fixtures` directories.
fn collect_rs(dir: &Path, push: &mut dyn FnMut(&Path)) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&p, push);
        } else if p.extension().is_some_and(|e| e == "rs") {
            push(&p);
        }
    }
}

/// Extracts the `members = [...]` entries from a workspace manifest.
/// Hand-rolled like everything else here: scan for the key, then pull
/// the quoted strings out of the bracketed list.
fn parse_members(manifest: &str) -> Vec<String> {
    let Some(at) = manifest.find("members") else {
        return Vec::new();
    };
    let rest = &manifest[at..];
    let Some(open) = rest.find('[') else {
        return Vec::new();
    };
    let Some(close) = rest[open..].find(']') else {
        return Vec::new();
    };
    rest[open..open + close]
        .split('"')
        .skip(1)
        .step_by(2)
        .map(str::to_string)
        .collect()
}

/// The `name = "..."` of a member's `[package]` section.
fn package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    let pkg = &text[text.find("[package]")?..];
    for line in pkg.lines().skip(1) {
        let line = line.trim();
        if line.starts_with('[') {
            break;
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return Some(rest.trim().trim_matches('"').to_string());
            }
        }
    }
    // A workspace-only root manifest with `[package]` later is not
    // expected; fall back to the directory name.
    manifest
        .parent()
        .and_then(|d| d.file_name())
        .map(|n| n.to_string_lossy().into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse_globs_and_literals() {
        let toml = "[workspace]\nmembers = [\"crates/*\", \"tools/x\"]\n";
        assert_eq!(parse_members(toml), ["crates/*", "tools/x"]);
    }

    #[test]
    fn missing_members_is_empty() {
        assert!(parse_members("[package]\nname = \"x\"\n").is_empty());
    }

    #[test]
    fn own_workspace_enumerates_and_classifies() {
        // The test binary runs from the crate dir; the workspace root
        // is two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let files = workspace_files(root).expect("workspace walks");
        assert!(files
            .iter()
            .any(|f| f.rel == "crates/simcore/src/engine.rs"));
        assert!(
            files.iter().all(|f| !f.rel.contains("vendor/")),
            "vendored crates must never be linted"
        );
        assert!(
            files.iter().all(|f| !f.rel.contains("/fixtures/")),
            "lint fixtures must never be linted"
        );
        let sim = files
            .iter()
            .find(|f| f.rel == "crates/overlay/src/kademlia.rs")
            .expect("kademlia present");
        assert!(sim.sim_facing);
        let lint = files
            .iter()
            .find(|f| f.rel == "crates/lint/src/lib.rs")
            .expect("lint present");
        assert!(!lint.sim_facing);
        assert_eq!(lint.package, "decent-lint");
        // decent-net is sim-facing (its sim backend feeds the engine);
        // only the explicit REAL_TIME_PATHS allowlist relaxes the
        // wall-clock/entropy rules, and that happens per-file in the
        // analyzer, not here.
        let net = files
            .iter()
            .find(|f| f.rel == "crates/net/src/tcp.rs")
            .expect("decent-net present");
        assert!(net.sim_facing);
        assert_eq!(net.package, "decent-net");
    }
}
