//! Mining-market economics: centralization dynamics and energy.
//!
//! Section III-C (Problem 1) argues that Bitcoin's incentives drive
//! mining into a few industrial farms — "in 2013 six mining pools
//! controlled 75% of overall Bitcoin hashing power. Nowadays it is
//! almost impossible for a normal user to mine bitcoins with a normal
//! desktop computer" — and Section III-B cites ~70 TWh/yr of energy.
//!
//! This module is a stylized agent-based model of the mining market:
//! agents differ in electricity price and economies of scale, hardware
//! generations improve over time, and agents expand when profitable and
//! exit when they bleed cash. Concentration (top-k share, Gini) and
//! energy consumption are emergent outputs. Constants are documented
//! inline; absolute values are calibrated to the 2013–2018 period, and
//! the claims being reproduced are about *shape* (concentration rises,
//! desktops are priced out, energy reaches tens of TWh/yr).

use rand::Rng;

use decent_sim::metrics::{gini, top_k_share};
use decent_sim::rng::rng_from_seed;

/// A class of mining agent.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MinerClass {
    /// A desktop/GPU user: tiny hashrate, retail electricity, cannot expand.
    Hobbyist,
    /// A small dedicated operation: modest hashrate, can expand slowly.
    SmallFarm,
    /// An industrial BitFarm: cheap power, strong economies of scale.
    Industrial,
}

/// One mining agent.
#[derive(Clone, Debug)]
pub struct Miner {
    /// Behaviour class.
    pub class: MinerClass,
    /// Current hashrate in GH/s.
    pub hashrate_ghs: f64,
    /// Electricity price in $/kWh.
    pub electricity: f64,
    /// Fleet efficiency in J/GH (improves when expanding).
    pub efficiency_j_per_gh: f64,
    /// Consecutive unprofitable months.
    pub losing_months: u32,
    /// Whether the agent has left the market.
    pub exited: bool,
    /// Cumulative profit in $.
    pub cumulative_profit: f64,
}

/// Market-wide parameters.
#[derive(Clone, Debug)]
pub struct MarketConfig {
    /// Number of hobbyists at start.
    pub hobbyists: usize,
    /// Number of small farms at start.
    pub small_farms: usize,
    /// Number of industrial farms at start.
    pub industrials: usize,
    /// Months to simulate.
    pub months: usize,
    /// BTC price at month 0 in $.
    pub initial_price: f64,
    /// Monthly price growth factor (deterministic trend).
    pub price_growth: f64,
    /// Volatility of the monthly price multiplier (log-normal sigma).
    pub price_volatility: f64,
    /// Block subsidy in BTC at month 0.
    pub subsidy: f64,
    /// Months between halvings (Bitcoin: 48).
    pub halving_months: usize,
    /// Fraction of profit an expanding agent reinvests in hardware.
    pub reinvest_fraction: f64,
    /// Hardware cost in $ per GH/s at month 0 (falls over time).
    pub capex_per_ghs: f64,
    /// Monthly decay of hardware cost and of the frontier J/GH.
    pub tech_improvement: f64,
    /// Months of losses before an agent exits.
    pub exit_after: u32,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            hobbyists: 2000,
            small_farms: 120,
            industrials: 25,
            months: 60, // 2013–2018
            initial_price: 100.0,
            price_growth: 1.06,
            price_volatility: 0.15,
            subsidy: 25.0,
            halving_months: 48,
            reinvest_fraction: 0.6,
            capex_per_ghs: 2.0,
            tech_improvement: 0.97,
            exit_after: 3,
        }
    }
}

/// A monthly market snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct MarketSnapshot {
    /// Month index.
    pub month: usize,
    /// BTC price in $.
    pub price: f64,
    /// Total network hashrate in GH/s.
    pub total_hashrate_ghs: f64,
    /// Combined share of the six largest miners.
    pub top6_share: f64,
    /// Gini coefficient of hashrate across active miners.
    pub gini: f64,
    /// Active hobbyists still mining profitably.
    pub profitable_hobbyists: usize,
    /// Active miners of any class.
    pub active_miners: usize,
    /// Annualized energy consumption in TWh/yr.
    pub energy_twh_per_year: f64,
}

/// The evolving mining market.
///
/// # Examples
///
/// ```
/// use decent_chain::economics::{Market, MarketConfig};
///
/// let mut market = Market::new(MarketConfig::default(), 1);
/// let snapshots = market.run();
/// let last = snapshots.last().unwrap();
/// assert!(last.top6_share > snapshots[0].top6_share);
/// ```
#[derive(Clone, Debug)]
pub struct Market {
    cfg: MarketConfig,
    miners: Vec<Miner>,
    month: usize,
    price: f64,
    frontier_j_per_gh: f64,
    capex_per_ghs: f64,
    seed: u64,
}

/// Blocks mined per month (6 per hour).
const BLOCKS_PER_MONTH: f64 = 6.0 * 24.0 * 30.0;
/// Converts J/GH at a given GH/s into kWh per month.
fn kwh_per_month(hashrate_ghs: f64, j_per_gh: f64) -> f64 {
    // J/s = GH/s * J/GH; kWh = W * hours / 1000.
    hashrate_ghs * j_per_gh * 24.0 * 30.0 / 1000.0
}

impl Market {
    /// Creates a market with the configured initial population.
    pub fn new(cfg: MarketConfig, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let mut miners = Vec::new();
        for _ in 0..cfg.hobbyists {
            miners.push(Miner {
                class: MinerClass::Hobbyist,
                // A GPU rig: ~1 GH/s of SHA-256 in 2013 terms.
                hashrate_ghs: 0.5 + rng.gen::<f64>(),
                electricity: 0.10 + 0.06 * rng.gen::<f64>(), // retail $/kWh
                efficiency_j_per_gh: 1.5,                    // GPU-era J/GH
                losing_months: 0,
                exited: false,
                cumulative_profit: 0.0,
            });
        }
        for _ in 0..cfg.small_farms {
            miners.push(Miner {
                class: MinerClass::SmallFarm,
                hashrate_ghs: 200.0 + 300.0 * rng.gen::<f64>(),
                electricity: 0.06 + 0.04 * rng.gen::<f64>(),
                efficiency_j_per_gh: 0.8,
                losing_months: 0,
                exited: false,
                cumulative_profit: 0.0,
            });
        }
        for _ in 0..cfg.industrials {
            miners.push(Miner {
                class: MinerClass::Industrial,
                hashrate_ghs: 2_000.0 + 8_000.0 * rng.gen::<f64>(),
                electricity: 0.02 + 0.04 * rng.gen::<f64>(), // hydro/flat-rate
                efficiency_j_per_gh: 0.7,
                losing_months: 0,
                exited: false,
                cumulative_profit: 0.0,
            });
        }
        Market {
            price: cfg.initial_price,
            frontier_j_per_gh: 0.7,
            capex_per_ghs: cfg.capex_per_ghs,
            cfg,
            miners,
            month: 0,
            seed,
        }
    }

    /// Active (non-exited) miners.
    pub fn active(&self) -> impl Iterator<Item = &Miner> {
        self.miners.iter().filter(|m| !m.exited)
    }

    /// Advances the market by one month and returns the snapshot.
    pub fn step(&mut self) -> MarketSnapshot {
        self.month += 1;
        let mut rng = rng_from_seed(self.seed ^ (self.month as u64) << 13);
        // Price: deterministic growth with log-normal noise.
        let noise = (self.cfg.price_volatility * decent_sim::dist::standard_normal(&mut rng)).exp();
        self.price *= self.cfg.price_growth * noise;
        // Technology frontier improves.
        self.frontier_j_per_gh *= self.cfg.tech_improvement;
        self.capex_per_ghs *= self.cfg.tech_improvement;
        let subsidy =
            self.cfg.subsidy / f64::powi(2.0, (self.month / self.cfg.halving_months) as i32);
        let total: f64 = self.active().map(|m| m.hashrate_ghs).sum();
        let monthly_revenue_per_ghs = if total > 0.0 {
            BLOCKS_PER_MONTH * subsidy * self.price / total
        } else {
            0.0
        };
        for m in &mut self.miners {
            if m.exited {
                continue;
            }
            let revenue = m.hashrate_ghs * monthly_revenue_per_ghs;
            // Economies of scale: big operations amortize facilities and
            // negotiate hardware discounts; hobbyists pay full retail.
            let (opex_overhead, capex_discount, can_expand) = match m.class {
                MinerClass::Hobbyist => (1.3, 1.0, false),
                MinerClass::SmallFarm => (1.1, 0.9, true),
                MinerClass::Industrial => (1.0, 0.7, true),
            };
            let energy_cost = kwh_per_month(m.hashrate_ghs, m.efficiency_j_per_gh) * m.electricity;
            let profit = revenue - energy_cost * opex_overhead;
            m.cumulative_profit += profit;
            if profit <= 0.0 {
                m.losing_months += 1;
                if m.losing_months >= self.cfg.exit_after {
                    m.exited = true;
                }
                continue;
            }
            m.losing_months = 0;
            if can_expand {
                // Reinvest: buy frontier hardware, which also pulls the
                // fleet efficiency toward the frontier. Hardware gets
                // cheaper with scale (volume discounts, early access to
                // new ASIC runs) — the economies-of-scale term that
                // drives winner-take-most concentration.
                let budget = profit * self.cfg.reinvest_fraction;
                let scale_discount =
                    (1.0 - 0.09 * (1.0 + m.hashrate_ghs / 1000.0).log10()).clamp(0.4, 1.0);
                let unit_cost = self.capex_per_ghs * capex_discount * scale_discount;
                let added = budget / unit_cost;
                let new_total = m.hashrate_ghs + added;
                m.efficiency_j_per_gh = (m.efficiency_j_per_gh * m.hashrate_ghs
                    + self.frontier_j_per_gh * added)
                    / new_total;
                m.hashrate_ghs = new_total;
            }
        }
        self.snapshot()
    }

    /// Runs the configured number of months, returning all snapshots.
    pub fn run(&mut self) -> Vec<MarketSnapshot> {
        (0..self.cfg.months).map(|_| self.step()).collect()
    }

    /// The current market snapshot.
    pub fn snapshot(&self) -> MarketSnapshot {
        let rates: Vec<f64> = self.active().map(|m| m.hashrate_ghs).collect();
        let total = rates.iter().sum::<f64>();
        let energy_w: f64 = self
            .active()
            .map(|m| m.hashrate_ghs * m.efficiency_j_per_gh)
            .sum();
        MarketSnapshot {
            month: self.month,
            price: self.price,
            total_hashrate_ghs: total,
            top6_share: top_k_share(&rates, 6),
            gini: gini(&rates),
            profitable_hobbyists: self
                .active()
                .filter(|m| m.class == MinerClass::Hobbyist && m.losing_months == 0)
                .count(),
            active_miners: rates.len(),
            energy_twh_per_year: energy_w * 24.0 * 365.0 / 1e12,
        }
    }
}

/// Distributes miner hashrates across mining pools.
///
/// Miners join pools to reduce payout variance, and bigger pools reduce
/// variance more, so pool choice is super-linear preferential
/// attachment: in each round a fraction of miners re-evaluates and joins
/// a pool with probability proportional to `size^1.4` (plus a small
/// floor so that fees/ideology keep minor pools alive). This urn
/// dynamic is what concentrated ~75% of Bitcoin hashrate into six pools
/// by 2013, the figure the paper cites.
///
/// Returns the final pool hashrates (length `n_pools`).
///
/// # Panics
///
/// Panics if `n_pools == 0`.
pub fn form_pools(
    hashrates: &[f64],
    n_pools: usize,
    rounds: usize,
    switch_prob: f64,
    seed: u64,
) -> Vec<f64> {
    assert!(n_pools > 0, "need at least one pool");
    let mut rng = rng_from_seed(seed);
    let n = hashrates.len();
    let mut assignment: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n_pools)).collect();
    let mut pool: Vec<f64> = vec![0.0; n_pools];
    for (i, &h) in hashrates.iter().enumerate() {
        pool[assignment[i]] += h;
    }
    const BETA: f64 = 1.4;
    for _ in 0..rounds {
        for i in 0..n {
            if rng.gen::<f64>() >= switch_prob {
                continue;
            }
            let h = hashrates[i];
            pool[assignment[i]] -= h;
            let total_hash: f64 = pool.iter().sum::<f64>().max(1e-12);
            let floor = 0.05 * total_hash / n_pools as f64;
            let weights: Vec<f64> = pool.iter().map(|&p| (p + floor).powf(BETA)).collect();
            let wsum: f64 = weights.iter().sum();
            let mut u = rng.gen::<f64>() * wsum;
            let mut chosen = n_pools - 1;
            for (p, &w) in weights.iter().enumerate() {
                u -= w;
                if u <= 0.0 {
                    chosen = p;
                    break;
                }
            }
            assignment[i] = chosen;
            pool[chosen] += h;
        }
    }
    pool
}

/// Annualized energy (TWh/yr) of a network at `hashrate` hashes/s with a
/// fleet of the given `(share, j_per_gh)` hardware mix.
///
/// With the 2018 figures — ~40 EH/s and a fleet mixing Antminer S9-class
/// (0.1 J/GH) with older hardware — this lands in the tens of TWh/yr,
/// the "roughly what Austria consumes" range the paper cites.
///
/// # Panics
///
/// Panics if shares do not sum to ~1.
pub fn network_energy_twh_per_year(hashrate_hs: f64, fleet: &[(f64, f64)]) -> f64 {
    let total_share: f64 = fleet.iter().map(|(s, _)| s).sum();
    assert!(
        (total_share - 1.0).abs() < 1e-6,
        "fleet shares must sum to 1"
    );
    let ghs = hashrate_hs / 1e9;
    let watts: f64 = fleet.iter().map(|(share, eff)| ghs * share * eff).sum();
    watts * 24.0 * 365.0 / 1e12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concentration_rises_over_time() {
        let mut market = Market::new(MarketConfig::default(), 10);
        let snaps = market.run();
        let first = &snaps[2];
        let last = snaps.last().unwrap();
        assert!(
            last.top6_share > first.top6_share,
            "top-6 share should grow: {} -> {}",
            first.top6_share,
            last.top6_share
        );
        assert!(
            last.top6_share > 0.4,
            "industrial farms should dominate: {}",
            last.top6_share
        );
        assert!(
            last.gini > 0.8,
            "hashrate should be very unequal: {}",
            last.gini
        );
    }

    #[test]
    fn hobbyists_are_priced_out() {
        let mut market = Market::new(MarketConfig::default(), 6);
        let snaps = market.run();
        let last = snaps.last().unwrap();
        assert!(
            (last.profitable_hobbyists as f64) < 0.05 * MarketConfig::default().hobbyists as f64,
            "desktop mining should die: {} hobbyists left",
            last.profitable_hobbyists
        );
    }

    #[test]
    fn hashrate_grows_with_price() {
        let mut market = Market::new(MarketConfig::default(), 7);
        let snaps = market.run();
        assert!(
            snaps.last().unwrap().total_hashrate_ghs > 10.0 * snaps[0].total_hashrate_ghs,
            "bull market should multiply hashrate"
        );
    }

    #[test]
    fn energy_scale_matches_2018_estimates() {
        // 40 EH/s, fleet of 60% S9-class (0.098 J/GH), 40% older (0.25).
        let twh = network_energy_twh_per_year(40e18, &[(0.6, 0.098), (0.4, 0.25)]);
        assert!(
            (20.0..120.0).contains(&twh),
            "2018 Bitcoin should burn tens of TWh/yr, got {twh}"
        );
        // All-frontier fleet burns materially less.
        let efficient = network_energy_twh_per_year(40e18, &[(1.0, 0.098)]);
        assert!(efficient < twh);
    }

    #[test]
    fn pools_concentrate_like_2013() {
        // Hashrates from the evolved market, pooled by variance-seeking
        // miners: six pools should end up with ~75% of the power.
        let mut market = Market::new(MarketConfig::default(), 8);
        let snaps = market.run();
        let rates: Vec<f64> = market.active().map(|m| m.hashrate_ghs).collect();
        let pools = form_pools(&rates, 20, 30, 0.2, 88);
        let six = top_k_share(&pools, 6);
        assert!(
            six > 0.65,
            "six pools should hold most hashrate, got {six} (market months {})",
            snaps.len()
        );
    }

    #[test]
    fn pooling_is_preferential() {
        // Equal miners, many rounds: shares must be very unequal.
        let rates = vec![1.0; 2000];
        let pools = form_pools(&rates, 20, 50, 0.2, 99);
        assert!(gini(&pools) > 0.4, "gini {}", gini(&pools));
    }

    #[test]
    fn deterministic_runs() {
        let a = Market::new(MarketConfig::default(), 9).run();
        let b = Market::new(MarketConfig::default(), 9).run();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "shares must sum to 1")]
    fn fleet_shares_validated() {
        network_energy_twh_per_year(1e18, &[(0.5, 0.1)]);
    }
}
