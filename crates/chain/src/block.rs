//! Blocks and the fork tree (block DAG restricted to a tree).
//!
//! Every node keeps a [`ChainView`] — the set of blocks it has accepted,
//! the parent links between them, and the current best tip under the
//! most-work rule (ties broken by first arrival, as in Bitcoin).

use decent_sim::payload::Interned;
use std::collections::{BTreeMap, HashMap};

use decent_sim::engine::NodeId;
use decent_sim::time::SimTime;

/// Unique identifier of a block (stands in for its hash).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

/// Unique identifier of a transaction.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u64);

/// A mined block.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// This block's id.
    pub id: BlockId,
    /// Parent block id (`None` only for the genesis block).
    pub parent: Option<BlockId>,
    /// Distance from genesis.
    pub height: u64,
    /// Simulation node that mined it.
    pub miner: NodeId,
    /// Simulated time of creation.
    pub mined_at: SimTime,
    /// Transactions included.
    pub txs: Vec<TxId>,
    /// Serialized size in bytes (drives propagation delay).
    pub size_bytes: u64,
    /// Difficulty (expected hashes) this block was mined at.
    pub difficulty: f64,
}

impl Block {
    /// The conventional genesis block.
    pub fn genesis(difficulty: f64) -> Interned<Block> {
        Interned::new(Block {
            id: BlockId(0),
            parent: None,
            height: 0,
            miner: usize::MAX,
            mined_at: SimTime::ZERO,
            txs: Vec::new(),
            size_bytes: 285,
            difficulty,
        })
    }
}

/// A node's local view of the block tree and its best chain.
///
/// Fork choice follows Bitcoin's actual rule: the chain with the most
/// cumulative *work* (sum of per-block difficulty) wins, with ties
/// broken by first arrival. At constant difficulty this coincides with
/// the longest chain; across retarget boundaries it does not, and the
/// work rule is what prevents low-difficulty fork spam.
#[derive(Clone, Debug, Default)]
pub struct ChainView {
    /// Accepted blocks by id. A `BTreeMap` so that id-keyed walks
    /// (e.g. [`ChainView::stale_blocks`]) observe a deterministic order
    /// — hasher state must never leak into anything a caller iterates.
    blocks: BTreeMap<BlockId, Interned<Block>>,
    /// Arrival time of each block at this node.
    arrivals: HashMap<BlockId, SimTime>,
    /// Cumulative work (sum of difficulties) from genesis to each block.
    work: HashMap<BlockId, f64>,
    tip: Option<BlockId>,
}

impl ChainView {
    /// Creates a view containing only `genesis`.
    pub fn new(genesis: Interned<Block>) -> Self {
        let id = genesis.id;
        let mut blocks = BTreeMap::new();
        let mut work = HashMap::new();
        work.insert(id, genesis.difficulty.max(0.0));
        blocks.insert(id, genesis);
        let mut arrivals = HashMap::new();
        arrivals.insert(id, SimTime::ZERO);
        ChainView {
            blocks,
            arrivals,
            work,
            tip: Some(id),
        }
    }

    /// Whether `id` has been accepted.
    pub fn contains(&self, id: BlockId) -> bool {
        self.blocks.contains_key(&id)
    }

    /// The block with the given id, if accepted.
    pub fn get(&self, id: BlockId) -> Option<&Interned<Block>> {
        self.blocks.get(&id)
    }

    /// When `id` arrived at this node, if accepted.
    pub fn arrival(&self, id: BlockId) -> Option<SimTime> {
        self.arrivals.get(&id).copied()
    }

    /// The current best tip (most cumulative work, first-seen tie-break).
    ///
    /// # Panics
    ///
    /// Panics on an empty view (construct with [`ChainView::new`]).
    pub fn tip(&self) -> &Interned<Block> {
        let id = self.tip.expect("view always holds genesis");
        &self.blocks[&id]
    }

    /// Height of the best tip.
    pub fn height(&self) -> u64 {
        self.tip().height
    }

    /// Total number of accepted blocks (including stale forks).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns true if the view holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Accepts a block whose parent is already known. Returns `true` if
    /// the best tip changed (chain extension or reorg).
    ///
    /// # Panics
    ///
    /// Panics if the parent is unknown (buffer orphans at the caller) or
    /// the block is a duplicate.
    pub fn accept(&mut self, block: Interned<Block>, now: SimTime) -> bool {
        let parent = block
            .parent
            .expect("only genesis lacks a parent; accept() is for mined blocks");
        assert!(
            self.blocks.contains_key(&parent),
            "parent must be accepted first"
        );
        assert!(
            !self.blocks.contains_key(&block.id),
            "duplicate block {:?}",
            block.id
        );
        let id = block.id;
        let cumulative = self.work[&parent] + block.difficulty.max(0.0);
        self.blocks.insert(id, block);
        self.arrivals.insert(id, now);
        self.work.insert(id, cumulative);
        // Most cumulative work, first-seen wins ties (strictly greater).
        if cumulative > self.tip_work() {
            self.tip = Some(id);
            true
        } else {
            false
        }
    }

    /// Cumulative work of the current best tip.
    pub fn tip_work(&self) -> f64 {
        self.work[&self.tip.expect("view always holds genesis")]
    }

    /// Cumulative work from genesis to `id`, if accepted.
    pub fn work_of(&self, id: BlockId) -> Option<f64> {
        self.work.get(&id).copied()
    }

    /// Iterates the best chain from the tip back to genesis.
    pub fn best_chain(&self) -> Vec<&Interned<Block>> {
        let mut out = Vec::new();
        let mut cur = Some(self.tip().id);
        while let Some(id) = cur {
            let b = &self.blocks[&id];
            out.push(b);
            cur = b.parent;
        }
        out
    }

    /// Ids of blocks not on the best chain (stale/orphaned forks).
    pub fn stale_blocks(&self) -> Vec<BlockId> {
        let main: std::collections::HashSet<BlockId> =
            self.best_chain().iter().map(|b| b.id).collect();
        self.blocks
            .keys()
            .filter(|id| !main.contains(id))
            .copied()
            .collect()
    }

    /// Fraction of accepted blocks that are stale (excluding genesis).
    pub fn stale_rate(&self) -> f64 {
        let total = self.blocks.len().saturating_sub(1);
        if total == 0 {
            return 0.0;
        }
        self.stale_blocks().len() as f64 / total as f64
    }

    /// The block `depth` levels below the tip on the best chain, if the
    /// chain is that long.
    pub fn confirmed(&self, depth: u64) -> Option<&Interned<Block>> {
        let chain = self.best_chain();
        chain.get(depth as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(id: u64, parent: BlockId, height: u64) -> Interned<Block> {
        mk_d(id, parent, height, 1.0)
    }

    fn mk_d(id: u64, parent: BlockId, height: u64, difficulty: f64) -> Interned<Block> {
        Interned::new(Block {
            id: BlockId(id),
            parent: Some(parent),
            height,
            miner: 0,
            mined_at: SimTime::from_secs(height as f64),
            txs: Vec::new(),
            size_bytes: 100,
            difficulty,
        })
    }

    #[test]
    fn accepts_linear_chain() {
        let g = Block::genesis(1.0);
        let mut v = ChainView::new(g.clone());
        assert!(v.accept(mk(1, g.id, 1), SimTime::from_secs(1.0)));
        assert!(v.accept(mk(2, BlockId(1), 2), SimTime::from_secs(2.0)));
        assert_eq!(v.height(), 2);
        assert_eq!(v.best_chain().len(), 3);
        assert_eq!(v.stale_rate(), 0.0);
    }

    #[test]
    fn fork_resolution_prefers_first_seen_then_longer() {
        let g = Block::genesis(1.0);
        let mut v = ChainView::new(g.clone());
        v.accept(mk(1, g.id, 1), SimTime::from_secs(1.0));
        // Competing block at the same height does not displace the tip.
        assert!(!v.accept(mk(2, g.id, 1), SimTime::from_secs(1.1)));
        assert_eq!(v.tip().id, BlockId(1));
        // Extending the competitor triggers a reorg.
        assert!(v.accept(mk(3, BlockId(2), 2), SimTime::from_secs(2.0)));
        assert_eq!(v.tip().id, BlockId(3));
        assert_eq!(v.stale_blocks(), vec![BlockId(1)]);
        assert!((v.stale_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn confirmed_depth() {
        let g = Block::genesis(1.0);
        let mut v = ChainView::new(g.clone());
        let mut parent = g.id;
        for h in 1..=10 {
            v.accept(mk(h, parent, h), SimTime::from_secs(h as f64));
            parent = BlockId(h);
        }
        assert_eq!(v.confirmed(0).unwrap().id, BlockId(10));
        assert_eq!(v.confirmed(6).unwrap().id, BlockId(4));
        assert!(v.confirmed(11).is_none());
    }

    #[test]
    fn fork_choice_follows_work_not_height() {
        let g = Block::genesis(1.0);
        let mut v = ChainView::new(g.clone());
        // A two-block low-difficulty branch...
        v.accept(mk_d(1, g.id, 1, 1.0), SimTime::from_secs(1.0));
        v.accept(mk_d(2, BlockId(1), 2, 1.0), SimTime::from_secs(2.0));
        assert_eq!(v.tip().id, BlockId(2));
        // ...loses to a single block carrying more total work.
        assert!(v.accept(mk_d(3, g.id, 1, 5.0), SimTime::from_secs(3.0)));
        assert_eq!(v.tip().id, BlockId(3));
        assert_eq!(v.height(), 1, "the work winner is shorter");
        assert!(v.work_of(BlockId(3)).unwrap() > v.work_of(BlockId(2)).unwrap());
    }

    #[test]
    #[should_panic(expected = "parent must be accepted first")]
    fn orphan_rejected() {
        let g = Block::genesis(1.0);
        let mut v = ChainView::new(g);
        v.accept(mk(5, BlockId(99), 1), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "duplicate block")]
    fn duplicate_rejected() {
        let g = Block::genesis(1.0);
        let mut v = ChainView::new(g.clone());
        v.accept(mk(1, g.id, 1), SimTime::ZERO);
        v.accept(mk(1, g.id, 1), SimTime::ZERO);
    }
}
