//! UTXO ledger with double-spend detection.
//!
//! The decentralized-verification core the paper describes in Section
//! III-A: every full node replays every transaction against its UTXO set
//! to "intercept and avoid double spending". Amounts are in integer
//! satoshis so value conservation is exact.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A public-key stand-in identifying an owner.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Address(pub u64);

/// Reference to an unspent output: `(creating tx, output index)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OutPoint {
    /// Id of the transaction that created the output.
    pub tx: u64,
    /// Index of the output within that transaction.
    pub index: u32,
}

/// A transaction output.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TxOut {
    /// Receiving address.
    pub to: Address,
    /// Amount in satoshis.
    pub amount: u64,
}

/// A transaction: consumes outpoints, creates outputs.
///
/// A coinbase transaction has no inputs and may create up to
/// `subsidy + fees` of new value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// Unique id (stands in for the tx hash).
    pub id: u64,
    /// Outpoints consumed (empty for coinbase).
    pub inputs: Vec<OutPoint>,
    /// Outputs created.
    pub outputs: Vec<TxOut>,
}

impl Transaction {
    /// Total value created by the outputs.
    pub fn output_value(&self) -> u64 {
        self.outputs.iter().map(|o| o.amount).sum()
    }

    /// Whether this is a coinbase (no inputs).
    pub fn is_coinbase(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// Why a transaction or block was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LedgerError {
    /// An input references an output that does not exist or was spent.
    MissingInput(OutPoint),
    /// The same output is consumed twice (within or across transactions).
    DoubleSpend(OutPoint),
    /// Outputs exceed inputs for a non-coinbase transaction.
    ValueCreated {
        /// Transaction at fault.
        tx: u64,
        /// Total input value.
        input: u64,
        /// Total output value.
        output: u64,
    },
    /// Coinbase exceeds subsidy plus collected fees.
    ExcessCoinbase {
        /// Maximum allowed value.
        allowed: u64,
        /// Claimed value.
        claimed: u64,
    },
    /// Duplicate transaction id.
    DuplicateTx(u64),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::MissingInput(op) => {
                write!(f, "input {}:{} missing or already spent", op.tx, op.index)
            }
            LedgerError::DoubleSpend(op) => {
                write!(f, "output {}:{} spent twice", op.tx, op.index)
            }
            LedgerError::ValueCreated { tx, input, output } => write!(
                f,
                "transaction {tx} creates value ({output} out of {input} in)"
            ),
            LedgerError::ExcessCoinbase { allowed, claimed } => {
                write!(f, "coinbase claims {claimed}, allowed {allowed}")
            }
            LedgerError::DuplicateTx(id) => write!(f, "duplicate transaction id {id}"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// The UTXO set and validation rules.
///
/// # Examples
///
/// ```
/// use decent_chain::ledger::{Address, Ledger, OutPoint, Transaction, TxOut};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ledger = Ledger::new(50_0000_0000); // 50 BTC subsidy
/// let coinbase = Transaction {
///     id: 1,
///     inputs: vec![],
///     outputs: vec![TxOut { to: Address(7), amount: 50_0000_0000 }],
/// };
/// ledger.apply_block(&[coinbase], 0)?;
/// assert_eq!(ledger.balance(Address(7)), 50_0000_0000);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    /// Ordered by outpoint per the determinism contract: supply and
    /// balance scans walk the whole set, and ordered iteration keeps
    /// any future fold or serialization hasher-independent.
    utxos: BTreeMap<OutPoint, TxOut>,
    seen_txs: BTreeSet<u64>,
    subsidy: u64,
    /// Total value ever minted via coinbases.
    pub minted: u64,
}

impl Ledger {
    /// Creates an empty ledger with the given block subsidy.
    pub fn new(subsidy: u64) -> Self {
        Ledger {
            subsidy,
            ..Ledger::default()
        }
    }

    /// Number of unspent outputs.
    pub fn utxo_count(&self) -> usize {
        self.utxos.len()
    }

    /// Sum of all unspent values (total circulating supply).
    pub fn total_supply(&self) -> u64 {
        self.utxos.values().map(|o| o.amount).sum()
    }

    /// Balance of `addr` across all unspent outputs.
    pub fn balance(&self, addr: Address) -> u64 {
        self.utxos
            .values()
            .filter(|o| o.to == addr)
            .map(|o| o.amount)
            .sum()
    }

    /// Validates a single non-coinbase transaction against the current
    /// set, without applying it. Returns the fee on success.
    ///
    /// # Errors
    ///
    /// Returns a [`LedgerError`] describing the first violated rule.
    pub fn validate(&self, tx: &Transaction) -> Result<u64, LedgerError> {
        if self.seen_txs.contains(&tx.id) {
            return Err(LedgerError::DuplicateTx(tx.id));
        }
        let mut input_value = 0u64;
        let mut used = std::collections::HashSet::new();
        for op in &tx.inputs {
            if !used.insert(*op) {
                return Err(LedgerError::DoubleSpend(*op));
            }
            match self.utxos.get(op) {
                Some(out) => input_value += out.amount,
                None => return Err(LedgerError::MissingInput(*op)),
            }
        }
        let output_value = tx.output_value();
        if output_value > input_value {
            return Err(LedgerError::ValueCreated {
                tx: tx.id,
                input: input_value,
                output: output_value,
            });
        }
        Ok(input_value - output_value)
    }

    /// Validates and applies a block of transactions. The first
    /// transaction may be a coinbase claiming `subsidy + fees`.
    ///
    /// On error the ledger is left unchanged.
    ///
    /// # Errors
    ///
    /// Returns the first rule violated by any transaction, including
    /// cross-transaction double spends within the block.
    pub fn apply_block(&mut self, txs: &[Transaction], _height: u64) -> Result<(), LedgerError> {
        // Two-phase: validate everything against a scratch copy, then
        // commit. Blocks are small enough that cloning the diff is cheap
        // relative to clarity.
        let mut scratch = self.clone();
        let mut fees = 0u64;
        let mut coinbase: Option<&Transaction> = None;
        for (i, tx) in txs.iter().enumerate() {
            if tx.is_coinbase() {
                if i != 0 {
                    return Err(LedgerError::DuplicateTx(tx.id));
                }
                coinbase = Some(tx);
                continue;
            }
            let fee = scratch.validate(tx)?;
            fees += fee;
            scratch.apply_unchecked(tx);
        }
        if let Some(cb) = coinbase {
            let allowed = self.subsidy + fees;
            if cb.output_value() > allowed {
                return Err(LedgerError::ExcessCoinbase {
                    allowed,
                    claimed: cb.output_value(),
                });
            }
            if scratch.seen_txs.contains(&cb.id) {
                return Err(LedgerError::DuplicateTx(cb.id));
            }
            scratch.apply_unchecked(cb);
            scratch.minted += cb.output_value().min(self.subsidy);
        }
        *self = scratch;
        Ok(())
    }

    fn apply_unchecked(&mut self, tx: &Transaction) {
        for op in &tx.inputs {
            self.utxos.remove(op);
        }
        for (i, out) in tx.outputs.iter().enumerate() {
            self.utxos.insert(
                OutPoint {
                    tx: tx.id,
                    index: i as u32,
                },
                *out,
            );
        }
        self.seen_txs.insert(tx.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COIN: u64 = 100_000_000;

    fn coinbase(id: u64, to: u64, amount: u64) -> Transaction {
        Transaction {
            id,
            inputs: vec![],
            outputs: vec![TxOut {
                to: Address(to),
                amount,
            }],
        }
    }

    fn spend(
        id: u64,
        from: OutPoint,
        to: u64,
        amount: u64,
        change_to: u64,
        change: u64,
    ) -> Transaction {
        Transaction {
            id,
            inputs: vec![from],
            outputs: vec![
                TxOut {
                    to: Address(to),
                    amount,
                },
                TxOut {
                    to: Address(change_to),
                    amount: change,
                },
            ],
        }
    }

    #[test]
    fn mint_and_spend() {
        let mut l = Ledger::new(50 * COIN);
        l.apply_block(&[coinbase(1, 10, 50 * COIN)], 0).unwrap();
        let op = OutPoint { tx: 1, index: 0 };
        let tx = spend(2, op, 11, 30 * COIN, 10, 20 * COIN);
        l.apply_block(&[coinbase(3, 12, 50 * COIN), tx], 1).unwrap();
        assert_eq!(l.balance(Address(11)), 30 * COIN);
        assert_eq!(l.balance(Address(10)), 20 * COIN);
        assert_eq!(l.total_supply(), 100 * COIN);
    }

    #[test]
    fn double_spend_across_blocks_rejected() {
        let mut l = Ledger::new(50 * COIN);
        l.apply_block(&[coinbase(1, 10, 50 * COIN)], 0).unwrap();
        let op = OutPoint { tx: 1, index: 0 };
        l.apply_block(&[spend(2, op, 11, 50 * COIN, 10, 0)], 1)
            .unwrap();
        let err = l
            .apply_block(&[spend(3, op, 12, 50 * COIN, 10, 0)], 2)
            .unwrap_err();
        assert_eq!(err, LedgerError::MissingInput(op));
    }

    #[test]
    fn double_spend_within_block_rejected() {
        let mut l = Ledger::new(50 * COIN);
        l.apply_block(&[coinbase(1, 10, 50 * COIN)], 0).unwrap();
        let op = OutPoint { tx: 1, index: 0 };
        let a = spend(2, op, 11, 50 * COIN, 10, 0);
        let b = spend(3, op, 12, 50 * COIN, 10, 0);
        let err = l.apply_block(&[a, b], 1).unwrap_err();
        assert_eq!(err, LedgerError::MissingInput(op));
        // Ledger unchanged: the first spend was rolled back too.
        assert_eq!(l.balance(Address(11)), 0);
        assert_eq!(l.balance(Address(10)), 50 * COIN);
    }

    #[test]
    fn same_outpoint_twice_in_one_tx() {
        let mut l = Ledger::new(50 * COIN);
        l.apply_block(&[coinbase(1, 10, 50 * COIN)], 0).unwrap();
        let op = OutPoint { tx: 1, index: 0 };
        let tx = Transaction {
            id: 2,
            inputs: vec![op, op],
            outputs: vec![TxOut {
                to: Address(11),
                amount: 100 * COIN,
            }],
        };
        assert_eq!(l.validate(&tx), Err(LedgerError::DoubleSpend(op)));
    }

    #[test]
    fn value_creation_rejected() {
        let mut l = Ledger::new(50 * COIN);
        l.apply_block(&[coinbase(1, 10, 50 * COIN)], 0).unwrap();
        let op = OutPoint { tx: 1, index: 0 };
        let tx = spend(2, op, 11, 60 * COIN, 10, 0);
        assert!(matches!(
            l.validate(&tx),
            Err(LedgerError::ValueCreated { .. })
        ));
    }

    #[test]
    fn coinbase_bounded_by_subsidy_plus_fees() {
        let mut l = Ledger::new(50 * COIN);
        l.apply_block(&[coinbase(1, 10, 50 * COIN)], 0).unwrap();
        let op = OutPoint { tx: 1, index: 0 };
        // Spend paying a 1-coin fee.
        let tx = spend(2, op, 11, 49 * COIN, 10, 0);
        // Coinbase claiming subsidy + fee is fine.
        l.apply_block(&[coinbase(3, 12, 51 * COIN), tx], 1).unwrap();
        // Claiming more than allowed is not.
        let mut l2 = Ledger::new(50 * COIN);
        l2.apply_block(&[coinbase(1, 10, 50 * COIN)], 0).unwrap();
        let tx2 = spend(2, OutPoint { tx: 1, index: 0 }, 11, 49 * COIN, 10, 0);
        let err = l2.apply_block(&[coinbase(3, 12, 52 * COIN), tx2], 1);
        assert!(matches!(err, Err(LedgerError::ExcessCoinbase { .. })));
    }

    #[test]
    fn replayed_tx_rejected() {
        let mut l = Ledger::new(50 * COIN);
        l.apply_block(&[coinbase(1, 10, 50 * COIN)], 0).unwrap();
        let err = l.apply_block(&[coinbase(1, 10, 50 * COIN)], 1);
        // A repeated coinbase id is a duplicate.
        assert!(matches!(err, Err(LedgerError::DuplicateTx(1))));
    }

    #[test]
    fn errors_display() {
        let msg = LedgerError::DoubleSpend(OutPoint { tx: 5, index: 1 }).to_string();
        assert!(msg.contains("spent twice"));
    }
}
