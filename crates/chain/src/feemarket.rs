//! The fee market under congestion: the CryptoKitties incident.
//!
//! Paper (III-C Problem 3): "in 2017, a game called CryptoKitties
//! (built using smart contracts) went viral and traffic on Ethereum's
//! network rose sixfold provoking the failure of many transactions" —
//! and (Problem 4) "storing state in a smart contract may be extremely
//! expensive due to the inherent costs of the Ethereum network".
//!
//! The model: a block-by-block auction. Users bid fees drawn from a
//! log-normal; blocks take the highest bids up to capacity; a
//! transaction not included within its deadline fails. A viral dapp
//! multiplies demand for a window of blocks; we track the clearing fee
//! and the failure rate before, during and after.

use decent_sim::dist::{LogNormal, Sample};
use decent_sim::metrics::Histogram;
use decent_sim::rng::{rng_from_seed, SimRng};

/// Fee-market parameters.
#[derive(Clone, Debug)]
pub struct FeeMarketConfig {
    /// Baseline transaction demand per block.
    pub base_demand_per_block: usize,
    /// Block capacity in transactions.
    pub block_capacity: usize,
    /// Demand multiplier while the dapp is viral (the paper's "sixfold").
    pub viral_multiplier: f64,
    /// Blocks before the viral window starts.
    pub warmup_blocks: usize,
    /// Length of the viral window in blocks.
    pub viral_blocks: usize,
    /// Blocks after the window (recovery phase).
    pub cooldown_blocks: usize,
    /// Median fee users are willing to pay (arbitrary units).
    pub median_fee: f64,
    /// Log-normal sigma of willingness to pay.
    pub fee_sigma: f64,
    /// A transaction fails if not mined within this many blocks.
    pub deadline_blocks: usize,
}

impl Default for FeeMarketConfig {
    fn default() -> Self {
        FeeMarketConfig {
            base_demand_per_block: 150,
            block_capacity: 200,
            viral_multiplier: 6.0,
            warmup_blocks: 100,
            viral_blocks: 200,
            cooldown_blocks: 100,
            median_fee: 1.0,
            fee_sigma: 1.0,
            deadline_blocks: 10,
        }
    }
}

/// Per-phase statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseStats {
    /// Transactions submitted.
    pub submitted: u64,
    /// Transactions mined before their deadline.
    pub mined: u64,
    /// Transactions that expired unmined.
    pub failed: u64,
    /// Fees actually paid by mined transactions.
    pub paid_fees: Histogram,
}

impl PhaseStats {
    /// Fraction of submitted transactions that failed.
    pub fn failure_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.failed as f64 / self.submitted as f64
        }
    }

    /// Median fee paid by the transactions that made it in.
    pub fn median_paid_fee(&mut self) -> f64 {
        self.paid_fees.percentile(0.5)
    }
}

/// Result of a congestion run: before / during / after the viral window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CongestionReport {
    /// Stats before the dapp goes viral.
    pub before: PhaseStats,
    /// Stats during the viral window.
    pub during: PhaseStats,
    /// Stats after demand subsides.
    pub after: PhaseStats,
}

#[derive(Clone, Copy, Debug)]
struct PendingTx {
    fee: f64,
    submitted_at: usize,
    phase: usize,
}

/// Runs the block-auction simulation.
pub fn simulate_congestion(cfg: &FeeMarketConfig, seed: u64) -> CongestionReport {
    let mut rng: SimRng = rng_from_seed(seed);
    let fee_dist = LogNormal::with_mean(
        cfg.median_fee * (cfg.fee_sigma * cfg.fee_sigma / 2.0).exp(),
        cfg.fee_sigma,
    );
    let total_blocks = cfg.warmup_blocks + cfg.viral_blocks + cfg.cooldown_blocks;
    let mut mempool: Vec<PendingTx> = Vec::new();
    let mut report = CongestionReport::default();
    for block in 0..total_blocks {
        let phase = if block < cfg.warmup_blocks {
            0
        } else if block < cfg.warmup_blocks + cfg.viral_blocks {
            1
        } else {
            2
        };
        let demand = if phase == 1 {
            (cfg.base_demand_per_block as f64 * cfg.viral_multiplier) as usize
        } else {
            cfg.base_demand_per_block
        };
        for _ in 0..demand {
            let fee = fee_dist.sample(&mut rng);
            mempool.push(PendingTx {
                fee,
                submitted_at: block,
                phase,
            });
            report.phase_mut(phase).submitted += 1;
        }
        // Miners take the highest-fee transactions.
        mempool.sort_by(|a, b| b.fee.total_cmp(&a.fee));
        let take = mempool.len().min(cfg.block_capacity);
        for tx in mempool.drain(..take) {
            let stats = report.phase_mut(tx.phase);
            stats.mined += 1;
            stats.paid_fees.record(tx.fee);
        }
        // Expire transactions past their deadline.
        mempool.retain(|tx| {
            let expired = block - tx.submitted_at >= cfg.deadline_blocks;
            if expired {
                report.phase_mut(tx.phase).failed += 1;
            }
            !expired
        });
    }
    // Whatever is still pending at the end counts as failed.
    for tx in mempool.drain(..) {
        report.phase_mut(tx.phase).failed += 1;
    }
    report
}

impl CongestionReport {
    fn phase_mut(&mut self, phase: usize) -> &mut PhaseStats {
        match phase {
            0 => &mut self.before,
            1 => &mut self.during,
            _ => &mut self.after,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn viral_load_spikes_fees_and_failures() {
        let mut r = simulate_congestion(&FeeMarketConfig::default(), 1);
        let calm_fail = r.before.failure_rate();
        let viral_fail = r.during.failure_rate();
        assert!(calm_fail < 0.02, "calm failure rate {calm_fail}");
        assert!(
            viral_fail > 0.5,
            "6x demand on a 1.33x-provisioned chain must fail most txs: {viral_fail}"
        );
        let calm_fee = r.before.median_paid_fee();
        let viral_fee = r.during.median_paid_fee();
        assert!(
            viral_fee > 2.0 * calm_fee,
            "congestion must move the clearing fee: {calm_fee} -> {viral_fee}"
        );
    }

    #[test]
    fn market_recovers_after_the_fad() {
        let mut r = simulate_congestion(&FeeMarketConfig::default(), 2);
        // Recovery is not instant (backlog drains), but the cooldown
        // phase is far healthier than the viral one.
        assert!(r.after.failure_rate() < r.during.failure_rate() / 2.0);
        assert!(r.after.median_paid_fee() < r.during.median_paid_fee());
    }

    #[test]
    fn capacity_headroom_prevents_the_incident() {
        let cfg = FeeMarketConfig {
            block_capacity: 1200, // provisioned for the spike
            ..FeeMarketConfig::default()
        };
        let r = simulate_congestion(&cfg, 3);
        assert!(
            r.during.failure_rate() < 0.01,
            "with headroom nothing fails: {}",
            r.during.failure_rate()
        );
    }

    #[test]
    fn accounting_is_conserved() {
        let r = simulate_congestion(&FeeMarketConfig::default(), 4);
        for phase in [&r.before, &r.during, &r.after] {
            assert_eq!(phase.mined + phase.failed, phase.submitted);
        }
    }

    #[test]
    fn deterministic() {
        let a = simulate_congestion(&FeeMarketConfig::default(), 5);
        let b = simulate_congestion(&FeeMarketConfig::default(), 5);
        assert_eq!(a, b);
    }
}
