//! # decent-chain — the permissionless blockchain of Section III
//!
//! Blocks and fork resolution, a UTXO ledger with double-spend
//! detection, proof-of-work as a stochastic race with difficulty
//! retargeting, full/miner/light nodes relaying over a random overlay,
//! selfish mining, and the mining-market economics behind pool
//! centralization and energy consumption.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod channels;
pub mod economics;
pub mod feemarket;
pub mod ledger;
pub mod node;
pub mod pos;
pub mod pow;
pub mod selfish;
