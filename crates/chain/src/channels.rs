//! Layer-2 payment channels (Lightning-style off-chain scaling).
//!
//! Paper (III-C Problem 2): "many of the new and existing networks are
//! proposing more centralized designs to increase the overall
//! performance. The so-called layer 2 or off-chain solutions like
//! Lightning network (Bitcoin), Plasma (Ethereum) or EOS follow this
//! trend. In these cases, transactions are processed by a much smaller
//! set of peers (outside the core network) to increase performance."
//!
//! The model: a channel graph with directional balances; payments route
//! along shortest capacity-feasible paths, shifting balances hop by
//! hop. Opening/closing a channel costs an on-chain transaction. Two
//! effects are measured: the off-chain **amplification** (payments per
//! on-chain transaction) and the **routing centralization** the paper
//! points at — traffic concentrates on a few well-funded hubs.

use std::collections::{BinaryHeap, HashMap};

use rand::Rng;

use decent_sim::metrics::{gini, top_k_share};
use decent_sim::rng::{rng_from_seed, SimRng};

/// A directional channel balance pair.
#[derive(Clone, Copy, Debug, PartialEq)]
struct ChannelState {
    /// Balance spendable from the lower-indexed endpoint.
    lo_to_hi: f64,
    /// Balance spendable from the higher-indexed endpoint.
    hi_to_lo: f64,
}

/// The payment-channel network.
///
/// # Examples
///
/// ```
/// use decent_chain::channels::ChannelNet;
///
/// let mut net = ChannelNet::new(3);
/// net.open_channel(0, 1, 100.0);
/// net.open_channel(1, 2, 100.0);
/// assert!(net.pay(0, 2, 25.0)); // routed through node 1
/// assert_eq!(net.amplification(), 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct ChannelNet {
    n: usize,
    channels: HashMap<(usize, usize), ChannelState>,
    adjacency: Vec<Vec<usize>>,
    /// On-chain transactions spent opening channels.
    pub onchain_txs: u64,
    /// Successful off-chain payments.
    pub payments_ok: u64,
    /// Failed payments (no feasible route).
    pub payments_failed: u64,
    /// Per-node forwarding counts (routing load).
    pub forwards: Vec<u64>,
}

impl ChannelNet {
    /// Creates an empty network over `n` participants.
    pub fn new(n: usize) -> Self {
        ChannelNet {
            n,
            channels: HashMap::new(),
            adjacency: vec![Vec::new(); n],
            onchain_txs: 0,
            payments_ok: 0,
            payments_failed: 0,
            forwards: vec![0; n],
        }
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true if the network has no participants.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of open channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    fn key(a: usize, b: usize) -> (usize, usize) {
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Opens a channel funded with `amount` on each side; costs one
    /// on-chain transaction.
    ///
    /// # Panics
    ///
    /// Panics on self-channels or out-of-range endpoints.
    pub fn open_channel(&mut self, a: usize, b: usize, amount: f64) {
        assert!(a != b && a < self.n && b < self.n, "bad endpoints");
        let key = Self::key(a, b);
        let entry = self.channels.entry(key).or_insert_with(|| {
            self.adjacency[a].push(b);
            self.adjacency[b].push(a);
            ChannelState {
                lo_to_hi: 0.0,
                hi_to_lo: 0.0,
            }
        });
        entry.lo_to_hi += amount;
        entry.hi_to_lo += amount;
        self.onchain_txs += 1;
    }

    fn capacity(&self, from: usize, to: usize) -> f64 {
        let key = Self::key(from, to);
        match self.channels.get(&key) {
            Some(st) if from < to => st.lo_to_hi,
            Some(st) => st.hi_to_lo,
            None => 0.0,
        }
    }

    fn shift(&mut self, from: usize, to: usize, amount: f64) {
        let key = Self::key(from, to);
        let st = self.channels.get_mut(&key).expect("channel exists");
        if from < to {
            st.lo_to_hi -= amount;
            st.hi_to_lo += amount;
        } else {
            st.hi_to_lo -= amount;
            st.lo_to_hi += amount;
        }
    }

    /// Dijkstra over hop count among edges with enough capacity.
    fn route(&self, from: usize, to: usize, amount: f64) -> Option<Vec<usize>> {
        let mut dist = vec![usize::MAX; self.n];
        let mut prev = vec![usize::MAX; self.n];
        let mut heap = BinaryHeap::new();
        dist[from] = 0;
        heap.push(std::cmp::Reverse((0usize, from)));
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            if v == to {
                break;
            }
            if d > dist[v] {
                continue;
            }
            for &w in &self.adjacency[v] {
                if self.capacity(v, w) + 1e-12 < amount {
                    continue;
                }
                if d + 1 < dist[w] {
                    dist[w] = d + 1;
                    prev[w] = v;
                    heap.push(std::cmp::Reverse((d + 1, w)));
                }
            }
        }
        if dist[to] == usize::MAX {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Attempts an off-chain payment; returns true on success.
    pub fn pay(&mut self, from: usize, to: usize, amount: f64) -> bool {
        match self.route(from, to, amount) {
            Some(path) => {
                for hop in path.windows(2) {
                    self.shift(hop[0], hop[1], amount);
                }
                for &mid in &path[1..path.len() - 1] {
                    self.forwards[mid] += 1;
                }
                self.payments_ok += 1;
                true
            }
            None => {
                self.payments_failed += 1;
                false
            }
        }
    }

    /// Off-chain payments per on-chain transaction (the scaling win).
    pub fn amplification(&self) -> f64 {
        self.payments_ok as f64 / self.onchain_txs.max(1) as f64
    }

    /// Share of all forwards handled by the `k` busiest routing nodes.
    pub fn hub_share(&self, k: usize) -> f64 {
        let f: Vec<f64> = self.forwards.iter().map(|&x| x as f64).collect();
        top_k_share(&f, k)
    }

    /// Gini coefficient of the forwarding load.
    pub fn routing_gini(&self) -> f64 {
        let f: Vec<f64> = self.forwards.iter().map(|&x| x as f64).collect();
        gini(&f)
    }
}

/// Topology of the channel graph.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Everyone opens channels with random peers (egalitarian).
    Random {
        /// Channels per participant.
        channels_each: usize,
    },
    /// A few well-funded hubs plus one user→hub channel each (what
    /// Lightning converged to in practice).
    HubAndSpoke {
        /// Number of hubs.
        hubs: usize,
    },
}

/// Builds a network and runs a random-payments workload.
///
/// Returns the network after `payments` attempted payments of
/// `amount` between uniformly random pairs.
pub fn run_workload(
    n: usize,
    topology: Topology,
    funding: f64,
    payments: u64,
    amount: f64,
    seed: u64,
) -> ChannelNet {
    let mut rng: SimRng = rng_from_seed(seed);
    let mut net = ChannelNet::new(n);
    match topology {
        Topology::Random { channels_each } => {
            for a in 0..n {
                for _ in 0..channels_each {
                    let b = rng.gen_range(0..n);
                    if b != a {
                        net.open_channel(a, b, funding);
                    }
                }
            }
        }
        Topology::HubAndSpoke { hubs } => {
            // Hubs interconnect with deep funding, users attach to one hub.
            for h1 in 0..hubs {
                for h2 in (h1 + 1)..hubs {
                    net.open_channel(h1, h2, funding * n as f64 / hubs as f64);
                }
            }
            for user in hubs..n {
                let h = rng.gen_range(0..hubs);
                net.open_channel(user, h, funding);
            }
        }
    }
    for _ in 0..payments {
        let from = rng.gen_range(0..n);
        let mut to = rng.gen_range(0..n);
        while to == from {
            to = rng.gen_range(0..n);
        }
        net.pay(from, to, amount);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_channel_payments_shift_balances() {
        let mut net = ChannelNet::new(2);
        net.open_channel(0, 1, 100.0);
        assert!(net.pay(0, 1, 60.0));
        assert!(!net.pay(0, 1, 60.0), "balance exhausted one way");
        // But the other direction now has extra capacity.
        assert!(net.pay(1, 0, 150.0));
        assert_eq!(net.payments_ok, 2);
        assert_eq!(net.payments_failed, 1);
    }

    #[test]
    fn multi_hop_routing_works_and_loads_middlemen() {
        let mut net = ChannelNet::new(3);
        net.open_channel(0, 1, 100.0);
        net.open_channel(1, 2, 100.0);
        assert!(net.pay(0, 2, 50.0));
        assert_eq!(net.forwards[1], 1);
        assert_eq!(net.forwards[0], 0);
    }

    #[test]
    fn no_route_no_payment() {
        let mut net = ChannelNet::new(4);
        net.open_channel(0, 1, 100.0);
        net.open_channel(2, 3, 100.0);
        assert!(!net.pay(0, 3, 10.0));
    }

    #[test]
    fn amplification_exceeds_onchain_throughput() {
        let net = run_workload(
            200,
            Topology::HubAndSpoke { hubs: 5 },
            200.0,
            20_000,
            1.0,
            7,
        );
        assert!(
            net.amplification() > 20.0,
            "thousands of payments per on-chain tx expected: {}",
            net.amplification()
        );
        let ok_rate = net.payments_ok as f64 / (net.payments_ok + net.payments_failed) as f64;
        assert!(ok_rate > 0.9, "hub networks route well: {ok_rate}");
    }

    #[test]
    fn hubs_centralize_routing() {
        let hubby = run_workload(
            200,
            Topology::HubAndSpoke { hubs: 5 },
            200.0,
            10_000,
            1.0,
            8,
        );
        let flat = run_workload(
            200,
            Topology::Random { channels_each: 4 },
            200.0,
            10_000,
            1.0,
            9,
        );
        assert!(
            hubby.hub_share(5) > 0.99,
            "five hubs forward everything: {}",
            hubby.hub_share(5)
        );
        assert!(
            flat.hub_share(5) < 0.5,
            "random graphs spread load: {}",
            flat.hub_share(5)
        );
        assert!(hubby.routing_gini() > flat.routing_gini());
    }

    #[test]
    fn deterministic() {
        let a = run_workload(
            100,
            Topology::Random { channels_each: 3 },
            50.0,
            2000,
            1.0,
            11,
        );
        let b = run_workload(
            100,
            Topology::Random { channels_each: 3 },
            50.0,
            2000,
            1.0,
            11,
        );
        assert_eq!(a.payments_ok, b.payments_ok);
        assert_eq!(a.forwards, b.forwards);
    }
}
