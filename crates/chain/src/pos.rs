//! Proof-of-stake and the nothing-at-stake problem.
//!
//! Paper (III-C Problem 2, citing Houy \[32\]): "Alternative approaches
//! based on proof-of-X, where X could be stake, space, activity, etc.
//! seem not be able to fully address this problem" — Houy's title being
//! *"It will cost you nothing to 'kill' a proof-of-stake
//! crypto-currency"*.
//!
//! The model: slot-based PoS where the slot leader is drawn with
//! probability proportional to stake. Creating a block is free, so a
//! *rational* validator signs **every** fork head (nothing-at-stake),
//! whereas a PoW miner must split real hashpower between branches.
//! We measure how the probability of reversing a k-confirmed payment
//! depends on the fraction of rational (multi-minting) validators — and
//! contrast it with the PoW attacker, who pays for every hash.

use rand::Rng;

use decent_sim::rng::rng_from_seed;

/// Validator behaviour in the fork race.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Discipline {
    /// Follows the protocol: extends only the first-seen longest branch.
    Honest,
    /// Nothing-at-stake: extends every branch head (it costs nothing).
    Rational,
}

/// Parameters of the double-spend race.
#[derive(Clone, Debug)]
pub struct PosAttack {
    /// Attacker's share of total stake (mints only on its own branch).
    pub attacker_stake: f64,
    /// Fraction of the *remaining* stake that multi-mints.
    pub rational_fraction: f64,
    /// Confirmations the victim waits for.
    pub confirmations: u64,
    /// Give up after this many slots past the confirmation point.
    pub horizon_slots: u64,
}

impl Default for PosAttack {
    fn default() -> Self {
        PosAttack {
            attacker_stake: 0.1,
            rational_fraction: 0.5,
            confirmations: 6,
            horizon_slots: 600,
        }
    }
}

/// Outcome of a batch of double-spend attempts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PosOutcome {
    /// Attempts in which the attacker's branch overtook the public one.
    pub reversals: u64,
    /// Total attempts.
    pub attempts: u64,
    /// Mean slots a successful reversal needed.
    pub mean_slots_to_reversal: f64,
}

impl PosOutcome {
    /// Probability that a k-confirmed payment is reversed.
    pub fn reversal_probability(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.reversals as f64 / self.attempts as f64
        }
    }
}

/// Runs `attempts` independent double-spend races under nothing-at-stake.
///
/// Branch A carries the payment; the attacker secretly extends branch B
/// from the fork point. Each slot one staker wins: the attacker extends
/// B, an honest validator extends the currently longer branch (A on
/// ties — first seen), and a rational validator extends *both* (free
/// blocks), which keeps B exactly level with its own A-progress and so
/// only the honest-vs-attacker differential decides the race.
///
/// # Panics
///
/// Panics if `attacker_stake` is not in `(0, 1)` or `rational_fraction`
/// not in `[0, 1]`.
pub fn simulate_pos_attack(cfg: &PosAttack, attempts: u64, seed: u64) -> PosOutcome {
    assert!(
        cfg.attacker_stake > 0.0 && cfg.attacker_stake < 1.0,
        "attacker stake must be in (0,1)"
    );
    assert!((0.0..=1.0).contains(&cfg.rational_fraction));
    let mut rng = rng_from_seed(seed);
    let p_attacker = cfg.attacker_stake;
    let p_rational = (1.0 - cfg.attacker_stake) * cfg.rational_fraction;
    let mut out = PosOutcome::default();
    let mut slots_sum = 0u64;
    for _ in 0..attempts {
        out.attempts += 1;
        // Lengths of the public branch (a) and the attacker branch (b),
        // measured from the fork point.
        let mut a = 0u64;
        let mut b = 0u64;
        let mut slot = 0u64;
        let mut confirmed = false;
        loop {
            slot += 1;
            let u: f64 = rng.gen();
            if u < p_attacker {
                b += 1; // attacker extends its secret branch only
            } else if u < p_attacker + p_rational {
                // Nothing-at-stake: extends every known head. Before the
                // attacker publishes, only A is public — but rational
                // validators also sign the attacker's branch when bribed
                // with a share of the double spend (Houy's argument), so
                // both branches advance.
                a += 1;
                b += 1;
            } else {
                a += 1; // honest: first-seen longest branch = A
            }
            if !confirmed && a >= cfg.confirmations {
                confirmed = true; // victim releases the goods
            }
            if confirmed && b > a {
                out.reversals += 1;
                slots_sum += slot;
                break;
            }
            if slot > cfg.horizon_slots {
                break;
            }
        }
    }
    if out.reversals > 0 {
        out.mean_slots_to_reversal = slots_sum as f64 / out.reversals as f64;
    }
    out
}

/// The PoW comparison: the classic Nakamoto race where an attacker with
/// `alpha` of the hashpower tries to overtake `k` confirmations.
/// Returns the reversal probability from `attempts` Monte Carlo races.
///
/// PoW miners cannot multi-mint: each hash commits to one branch, so
/// the honest majority all works against the attacker.
pub fn simulate_pow_attack(alpha: f64, confirmations: u64, attempts: u64, seed: u64) -> f64 {
    assert!(alpha > 0.0 && alpha < 0.5);
    let mut rng = rng_from_seed(seed);
    let mut reversals = 0u64;
    for _ in 0..attempts {
        let mut deficit: i64 = 0; // b - a
        let mut a = 0u64;
        let mut slot = 0u64;
        loop {
            slot += 1;
            if rng.gen::<f64>() < alpha {
                deficit += 1;
            } else {
                a += 1;
                deficit -= 1;
            }
            if a >= confirmations && deficit > 0 {
                reversals += 1;
                break;
            }
            // The attacker abandons hopeless races (standard analysis).
            if slot > 600 || deficit < -(confirmations as i64 * 4) {
                break;
            }
        }
    }
    reversals as f64 / attempts as f64
}

/// Marginal cost of one attack attempt, in arbitrary energy units:
/// PoW pays for every hash; PoS mints for free.
pub fn attack_cost_units(pow: bool, slots: u64, hashes_per_slot: f64) -> f64 {
    if pow {
        slots as f64 * hashes_per_slot
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rational_stake_makes_small_attackers_win() {
        let honest_only = simulate_pos_attack(
            &PosAttack {
                attacker_stake: 0.1,
                rational_fraction: 0.0,
                ..PosAttack::default()
            },
            4000,
            1,
        );
        let mostly_rational = simulate_pos_attack(
            &PosAttack {
                attacker_stake: 0.1,
                rational_fraction: 0.9,
                ..PosAttack::default()
            },
            4000,
            2,
        );
        assert!(
            honest_only.reversal_probability() < 0.02,
            "10% attacker vs honest validators must fail: {}",
            honest_only.reversal_probability()
        );
        assert!(
            mostly_rational.reversal_probability() > 0.5,
            "with 90% nothing-at-stake, 10% suffices: {}",
            mostly_rational.reversal_probability()
        );
    }

    #[test]
    fn reversal_probability_is_monotone_in_rationality() {
        let mut prev = -1.0;
        for (i, frac) in [0.0, 0.3, 0.6, 0.9].iter().enumerate() {
            let out = simulate_pos_attack(
                &PosAttack {
                    attacker_stake: 0.15,
                    rational_fraction: *frac,
                    ..PosAttack::default()
                },
                4000,
                10 + i as u64,
            );
            assert!(
                out.reversal_probability() >= prev - 0.03,
                "monotonicity violated at {frac}"
            );
            prev = out.reversal_probability();
        }
    }

    #[test]
    fn pow_race_matches_nakamoto_intuition() {
        // 10% attacker vs 6 confirmations: well under 1%.
        let p10 = simulate_pow_attack(0.10, 6, 20_000, 3);
        assert!(p10 < 0.01, "p10 {p10}");
        // 40% attacker: sizable.
        let p40 = simulate_pow_attack(0.40, 6, 20_000, 4);
        assert!(p40 > 0.2, "p40 {p40}");
        assert!(p40 > p10);
    }

    #[test]
    fn pos_attack_is_free_pow_is_not() {
        assert_eq!(attack_cost_units(false, 1000, 1e12), 0.0);
        assert!(attack_cost_units(true, 1000, 1e12) > 0.0);
    }

    #[test]
    fn deterministic() {
        let a = simulate_pos_attack(&PosAttack::default(), 1000, 9);
        let b = simulate_pos_attack(&PosAttack::default(), 1000, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn more_confirmations_help_only_against_disciplined_stake() {
        let deep = |rational: f64, k: u64, seed: u64| {
            simulate_pos_attack(
                &PosAttack {
                    attacker_stake: 0.2,
                    rational_fraction: rational,
                    confirmations: k,
                    ..PosAttack::default()
                },
                3000,
                seed,
            )
            .reversal_probability()
        };
        // Honest validators: 60 confirmations crush the attacker.
        assert!(deep(0.0, 60, 21) < deep(0.0, 3, 22) + 1e-9);
        assert!(deep(0.0, 60, 23) < 0.01);
        // Rational validators: depth barely matters (branches grow in
        // lockstep; the attacker only needs one lucky excursion).
        assert!(
            deep(0.95, 60, 24) > 0.4,
            "nothing-at-stake defeats confirmation depth: {}",
            deep(0.95, 60, 24)
        );
    }
}
