//! Proof-of-work as a stochastic race, plus difficulty retargeting.
//!
//! We do not grind SHA-256: what matters for every claim in the paper is
//! the *race* — block inter-arrival is exponential with rate
//! `hashrate / difficulty`, the winner is hashrate-weighted, and the
//! difficulty is periodically adjusted to hold the target interval.

use decent_sim::dist::{Exp, Sample};
use decent_sim::rng::SimRng;
use decent_sim::time::{SimDuration, SimTime};

/// Difficulty and retargeting rules.
#[derive(Clone, Debug, PartialEq)]
pub struct PowParams {
    /// Target block interval (Bitcoin: 600 s; Ethereum ~13 s).
    pub target_interval: SimDuration,
    /// Blocks between retargets (Bitcoin: 2016).
    pub retarget_window: u64,
    /// Clamp factor per retarget (Bitcoin clamps to 4x either way).
    pub max_adjust: f64,
}

impl Default for PowParams {
    fn default() -> Self {
        PowParams {
            target_interval: SimDuration::from_secs(600.0),
            retarget_window: 2016,
            max_adjust: 4.0,
        }
    }
}

impl PowParams {
    /// Bitcoin mainnet parameters.
    pub fn bitcoin() -> Self {
        PowParams::default()
    }

    /// Ethereum-like parameters (pre-merge PoW).
    pub fn ethereum() -> Self {
        PowParams {
            target_interval: SimDuration::from_secs(13.0),
            retarget_window: 100,
            max_adjust: 2.0,
        }
    }

    /// The difficulty (expected hashes per block) that yields the target
    /// interval at the given total hashrate (hashes/second).
    pub fn difficulty_for(&self, total_hashrate: f64) -> f64 {
        total_hashrate * self.target_interval.as_secs()
    }

    /// New difficulty after a window that took `actual` instead of
    /// `window * target_interval`, clamped to `max_adjust`.
    pub fn retarget(&self, old_difficulty: f64, actual: SimDuration) -> f64 {
        let expected = self.target_interval.as_secs() * self.retarget_window as f64;
        let ratio =
            (expected / actual.as_secs().max(1e-9)).clamp(1.0 / self.max_adjust, self.max_adjust);
        old_difficulty * ratio
    }

    /// Samples the time for a miner with `hashrate` to find the next
    /// block at `difficulty`.
    ///
    /// # Panics
    ///
    /// Panics if `hashrate` or `difficulty` is not positive.
    pub fn sample_block_time(
        &self,
        hashrate: f64,
        difficulty: f64,
        rng: &mut SimRng,
    ) -> SimDuration {
        assert!(hashrate > 0.0 && difficulty > 0.0);
        let rate = hashrate / difficulty;
        SimDuration::from_secs(Exp::new(rate).sample(rng))
    }
}

/// Tracks per-window timing to drive retargets.
#[derive(Clone, Debug, Default)]
pub struct RetargetClock {
    window_start: SimTime,
}

impl RetargetClock {
    /// Creates a clock with the window starting at time zero.
    pub fn new() -> Self {
        RetargetClock::default()
    }

    /// Called when a block at `height` is appended at `now`; returns the
    /// new difficulty if this block closes a retarget window.
    pub fn on_block(
        &mut self,
        params: &PowParams,
        height: u64,
        now: SimTime,
        difficulty: f64,
    ) -> Option<f64> {
        if height == 0 || !height.is_multiple_of(params.retarget_window) {
            return None;
        }
        let actual = now.saturating_since(self.window_start);
        self.window_start = now;
        Some(params.retarget(difficulty, actual))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decent_sim::rng::rng_from_seed;

    #[test]
    fn difficulty_matches_interval() {
        let p = PowParams::bitcoin();
        // 40 EH/s network.
        let d = p.difficulty_for(40e18);
        let mut rng = rng_from_seed(1);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| p.sample_block_time(40e18, d, &mut rng).as_secs())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 600.0).abs() < 15.0, "mean interval {mean}");
    }

    #[test]
    fn retarget_restores_interval_after_hashrate_jump() {
        let p = PowParams::bitcoin();
        let mut d = p.difficulty_for(10e18);
        // Hashrate doubles: the window completes in half the time.
        let actual = SimDuration::from_secs(600.0 * 2016.0 / 2.0);
        d = p.retarget(d, actual);
        assert!((d / p.difficulty_for(20e18) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn retarget_is_clamped() {
        let p = PowParams::bitcoin();
        let d = 100.0;
        let crazy_fast = SimDuration::from_secs(1.0);
        assert_eq!(p.retarget(d, crazy_fast), 400.0);
        let crazy_slow = SimDuration::from_secs(600.0 * 2016.0 * 100.0);
        assert_eq!(p.retarget(d, crazy_slow), 25.0);
    }

    #[test]
    fn retarget_clock_fires_on_window_boundaries() {
        let p = PowParams {
            retarget_window: 10,
            ..PowParams::bitcoin()
        };
        let mut clock = RetargetClock::new();
        let d = 1000.0;
        assert!(clock
            .on_block(&p, 5, SimTime::from_secs(3000.0), d)
            .is_none());
        let new = clock.on_block(&p, 10, SimTime::from_secs(3000.0), d);
        // 10 blocks took 3000 s against a 6000 s target: blocks came
        // twice too fast, so difficulty doubles.
        assert!((new.unwrap() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn winner_is_hashrate_weighted() {
        // With two miners at 3:1 hashrate, the faster one wins ~75%.
        let p = PowParams::bitcoin();
        let d = p.difficulty_for(4.0);
        let mut rng = rng_from_seed(2);
        let mut wins = 0;
        let n = 20_000;
        for _ in 0..n {
            let a = p.sample_block_time(3.0, d, &mut rng);
            let b = p.sample_block_time(1.0, d, &mut rng);
            if a < b {
                wins += 1;
            }
        }
        let share = wins as f64 / n as f64;
        assert!((share - 0.75).abs() < 0.02, "share {share}");
    }
}
