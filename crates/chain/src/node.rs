//! Full nodes, miners and light clients on the simulated network.
//!
//! Implements the Section III-A machinery: an unstructured random
//! overlay where every node validates and relays every block
//! (inv → getblock → block), miners race exponentially on their current
//! tip, forks resolve by longest-chain, and difficulty retargets.
//!
//! Transaction load is modelled at the mempool level: transactions
//! arrive globally at `tx_rate`/s and miners drain the backlog up to the
//! block capacity — the standard simulator shortcut (SimBlock does the
//! same) that preserves throughput, block size, and propagation
//! behaviour without simulating per-transaction gossip.

use decent_sim::payload::Interned;
use std::collections::{HashMap, HashSet, VecDeque};

use decent_sim::prelude::*;

use crate::block::{Block, BlockId, ChainView, TxId};
use crate::pow::{PowParams, RetargetClock};

/// Block-relay messages.
#[derive(Clone, Debug)]
pub enum ChainMsg {
    /// Announcement of a new block id.
    InvBlock(BlockId),
    /// Request for the full block.
    GetBlock(BlockId),
    /// The full block.
    BlockData(Interned<Block>),
}

/// Mining strategy of a node.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum MinerStrategy {
    /// Publish every block immediately.
    #[default]
    Honest,
    /// Eyal-Sirer selfish mining: withhold blocks and publish just in
    /// time to orphan honest work. The race parameter gamma is not an
    /// input here — it emerges from the attacker's network position.
    Selfish,
}

/// Per-node configuration.
#[derive(Clone, Debug)]
pub struct ChainNodeConfig {
    /// Consensus parameters.
    pub params: PowParams,
    /// This node's hashrate in hashes/s (0 = non-mining full node).
    pub hashrate: f64,
    /// Difficulty at genesis (expected hashes per block).
    pub initial_difficulty: f64,
    /// Maximum transactions per block (Bitcoin ≈ 1 MB / 500 B ≈ 2000).
    pub max_block_txs: u32,
    /// Average transaction size in bytes.
    pub tx_bytes: u64,
    /// Block header size in bytes.
    pub header_bytes: u64,
    /// Validation cost per transaction (signature checks etc.).
    pub validation_per_tx: SimDuration,
    /// Global transaction arrival rate (txs/s entering mempools).
    pub tx_rate: f64,
    /// Light client: accepts headers only, neither validates nor serves
    /// block bodies, and does not mine.
    pub light: bool,
    /// Mining strategy (honest by default).
    pub strategy: MinerStrategy,
}

impl Default for ChainNodeConfig {
    fn default() -> Self {
        ChainNodeConfig {
            params: PowParams::bitcoin(),
            hashrate: 0.0,
            initial_difficulty: 1.0,
            max_block_txs: 2000,
            tx_bytes: 500,
            header_bytes: 80,
            validation_per_tx: SimDuration::from_micros(50.0),
            tx_rate: 7.0,
            light: false,
            strategy: MinerStrategy::Honest,
        }
    }
}

const TIMER_VALIDATE: u64 = 1;
const MINING_EPOCH_BASE: u64 = 1_000;

/// A blockchain network participant. Implements [`Node`].
#[derive(Debug)]
pub struct ChainNode {
    cfg: ChainNodeConfig,
    neighbors: Vec<NodeId>,
    /// The node's view of the block tree.
    pub view: ChainView,
    orphans: HashMap<BlockId, Vec<Interned<Block>>>,
    requested: HashSet<BlockId>,
    validating: VecDeque<Interned<Block>>,
    mining_epoch: u64,
    difficulty: f64,
    retarget: RetargetClock,
    /// Mempool backlog estimate (txs waiting for inclusion).
    backlog: f64,
    backlog_updated: SimTime,
    next_block_seq: u64,
    next_tx_seq: u64,
    /// Withheld own blocks (selfish mining), oldest first.
    unpublished: Vec<Interned<Block>>,
    /// Height of the best block known to the public network.
    public_height: u64,
    /// Bytes of block data received (bandwidth accounting).
    pub bytes_received: u64,
    /// Blocks this node mined.
    pub blocks_mined: u64,
}

impl ChainNode {
    /// Creates a node; all nodes must share the same `genesis`.
    pub fn new(cfg: ChainNodeConfig, neighbors: Vec<NodeId>, genesis: Interned<Block>) -> Self {
        let difficulty = cfg.initial_difficulty;
        ChainNode {
            cfg,
            neighbors,
            view: ChainView::new(genesis),
            orphans: HashMap::new(),
            requested: HashSet::new(),
            validating: VecDeque::new(),
            mining_epoch: 0,
            difficulty,
            retarget: RetargetClock::new(),
            backlog: 0.0,
            backlog_updated: SimTime::ZERO,
            next_block_seq: 0,
            next_tx_seq: 0,
            unpublished: Vec::new(),
            public_height: 0,
            bytes_received: 0,
            blocks_mined: 0,
        }
    }

    /// Current difficulty at this node's tip.
    pub fn difficulty(&self) -> f64 {
        self.difficulty
    }

    /// Whether this node mines.
    pub fn is_miner(&self) -> bool {
        self.cfg.hashrate > 0.0 && !self.cfg.light
    }

    /// Storage consumed by the node's copy of the chain, in bytes
    /// (headers only for light clients).
    pub fn storage_bytes(&self) -> u64 {
        self.view
            .best_chain()
            .iter()
            .map(|b| {
                if self.cfg.light {
                    self.cfg.header_bytes
                } else {
                    b.size_bytes
                }
            })
            .sum()
    }

    fn refresh_backlog(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.backlog_updated).as_secs();
        self.backlog += self.cfg.tx_rate * dt;
        self.backlog_updated = now;
    }

    fn schedule_mining(&mut self, ctx: &mut Context<'_, ChainMsg>) {
        if !self.is_miner() {
            return;
        }
        self.mining_epoch += 1;
        let dt = self
            .cfg
            .params
            .sample_block_time(self.cfg.hashrate, self.difficulty, ctx.rng());
        ctx.set_timer(dt, MINING_EPOCH_BASE + self.mining_epoch);
    }

    fn mine_block(&mut self, ctx: &mut Context<'_, ChainMsg>) {
        self.refresh_backlog(ctx.now());
        let tx_count = (self.backlog.floor() as u64).min(self.cfg.max_block_txs as u64);
        self.backlog -= tx_count as f64;
        let txs: Vec<TxId> = (0..tx_count)
            .map(|_| {
                self.next_tx_seq += 1;
                // Namespace tx ids by miner so blocks never share ids.
                TxId((ctx.id() as u64) << 40 | self.next_tx_seq)
            })
            .collect();
        self.next_block_seq += 1;
        let parent = self.view.tip().clone();
        let block = Interned::new(Block {
            // Block ids are namespaced by miner id: unique network-wide.
            id: BlockId((ctx.id() as u64) << 40 | self.next_block_seq),
            parent: Some(parent.id),
            height: parent.height + 1,
            miner: ctx.id(),
            mined_at: ctx.now(),
            txs,
            size_bytes: self.cfg.header_bytes + tx_count * self.cfg.tx_bytes,
            difficulty: self.difficulty,
        });
        self.blocks_mined += 1;
        if self.cfg.strategy == MinerStrategy::Selfish {
            self.accept_withheld(block, ctx);
        } else {
            self.accept_block(block, ctx);
        }
    }

    /// Accepts an own block into the local view without announcing it
    /// (the selfish miner's private chain), then keeps mining on it.
    fn accept_withheld(&mut self, block: Interned<Block>, ctx: &mut Context<'_, ChainMsg>) {
        let tip_moved = self.view.accept(block.clone(), ctx.now());
        self.unpublished.push(block);
        if tip_moved {
            self.schedule_mining(ctx);
        }
    }

    /// Announces withheld blocks up to and including `up_to` (1-based
    /// count from the oldest), removing them from the private chain.
    fn publish_withheld(&mut self, up_to: usize, ctx: &mut Context<'_, ChainMsg>) {
        let n = up_to.min(self.unpublished.len());
        for block in self.unpublished.drain(..n) {
            self.public_height = self.public_height.max(block.height);
            for &peer in &self.neighbors.clone() {
                ctx.send_sized(peer, ChainMsg::InvBlock(block.id), 36);
            }
        }
    }

    /// The Eyal-Sirer reaction to the public chain reaching
    /// `public_height`.
    fn react_selfish(&mut self, ctx: &mut Context<'_, ChainMsg>) {
        if self.unpublished.is_empty() {
            return;
        }
        let private_tip = self.unpublished.last().expect("non-empty").height;
        if private_tip < self.public_height {
            // Honest chain won: abandon the private branch.
            self.unpublished.clear();
            return;
        }
        let lead = private_tip - self.public_height;
        match lead {
            // They caught up: publish everything and race head-to-head.
            0 => self.publish_withheld(usize::MAX, ctx),
            // One ahead: publish everything and override their block.
            1 => self.publish_withheld(usize::MAX, ctx),
            // Comfortably ahead: reveal only enough to match them.
            _ => {
                let reveal = self
                    .unpublished
                    .iter()
                    .take_while(|b| b.height <= self.public_height)
                    .count();
                self.publish_withheld(reveal, ctx);
            }
        }
    }

    /// Accepts a validated block whose parent is known, relays it, and
    /// restarts mining if the tip moved.
    fn accept_block(&mut self, block: Interned<Block>, ctx: &mut Context<'_, ChainMsg>) {
        if self.view.contains(block.id) {
            return;
        }
        let id = block.id;
        let height = block.height;
        self.public_height = self.public_height.max(height);
        let tip_moved = self.view.accept(block.clone(), ctx.now());
        if tip_moved {
            self.refresh_backlog(ctx.now());
            self.backlog = (self.backlog - block.txs.len() as f64).max(0.0);
            if let Some(new_d) =
                self.retarget
                    .on_block(&self.cfg.params, height, ctx.now(), self.difficulty)
            {
                self.difficulty = new_d;
            }
        }
        // Relay the announcement to all neighbors.
        for &n in &self.neighbors.clone() {
            ctx.send_sized(n, ChainMsg::InvBlock(id), 36);
        }
        // Unblock any orphans waiting on this block.
        if let Some(children) = self.orphans.remove(&id) {
            for child in children {
                self.accept_block(child, ctx);
            }
        }
        if tip_moved {
            self.schedule_mining(ctx);
        }
        if self.cfg.strategy == MinerStrategy::Selfish {
            self.react_selfish(ctx);
        }
    }
}

impl Node for ChainNode {
    type Msg = ChainMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ChainMsg>) {
        self.backlog_updated = ctx.now();
        self.schedule_mining(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: ChainMsg, ctx: &mut Context<'_, ChainMsg>) {
        match msg {
            ChainMsg::InvBlock(id) => {
                if !self.view.contains(id) && self.requested.insert(id) {
                    ctx.send_sized(from, ChainMsg::GetBlock(id), 36);
                }
            }
            ChainMsg::GetBlock(id) => {
                if let Some(b) = self.view.get(id) {
                    // Light clients hold (and therefore serve) only the
                    // header; full nodes serve the whole body.
                    let bytes = if self.cfg.light {
                        self.cfg.header_bytes
                    } else {
                        b.size_bytes
                    };
                    ctx.send_sized(from, ChainMsg::BlockData(b.clone()), bytes);
                }
            }
            ChainMsg::BlockData(block) => {
                if self.view.contains(block.id) {
                    return;
                }
                self.bytes_received += if self.cfg.light {
                    self.cfg.header_bytes
                } else {
                    block.size_bytes
                };
                // Light clients skip signature validation entirely.
                let delay = if self.cfg.light {
                    SimDuration::from_micros(100.0)
                } else {
                    self.cfg.validation_per_tx * block.txs.len() as f64
                };
                self.validating.push_back(block);
                ctx.set_timer(delay, TIMER_VALIDATE);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, ChainMsg>) {
        if tag == TIMER_VALIDATE {
            let Some(block) = self.validating.pop_front() else {
                return;
            };
            if self.view.contains(block.id) {
                return;
            }
            let parent = block.parent.expect("mined blocks have parents");
            if self.view.contains(parent) {
                self.accept_block(block, ctx);
            } else {
                // Orphan: hold it and fetch the parent from anyone who
                // announces it (we re-request opportunistically).
                if self.requested.insert(parent) {
                    for &n in &self.neighbors.clone() {
                        ctx.send_sized(n, ChainMsg::GetBlock(parent), 36);
                    }
                }
                self.orphans.entry(parent).or_default().push(block);
            }
            return;
        }
        if tag > MINING_EPOCH_BASE && tag == MINING_EPOCH_BASE + self.mining_epoch {
            self.mine_block(ctx);
        }
        // Stale epochs (tip changed since scheduling) are ignored.
    }
}

/// Configuration for a whole mined network.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Fraction of nodes that mine.
    pub miner_fraction: f64,
    /// Total network hashrate (split among miners by `hashrate_skew`).
    pub total_hashrate: f64,
    /// Zipf exponent of the hashrate distribution (0 = equal split).
    pub hashrate_skew: f64,
    /// Outbound connections per node (Bitcoin: 8).
    pub degree: usize,
    /// Fraction of non-miners that are light clients.
    pub light_fraction: f64,
    /// Per-node protocol parameters.
    pub node: ChainNodeConfig,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            nodes: 100,
            miner_fraction: 0.3,
            total_hashrate: 1e6,
            hashrate_skew: 0.0,
            degree: 8,
            light_fraction: 0.0,
            node: ChainNodeConfig::default(),
        }
    }
}

/// Builds a blockchain network over a random overlay; the difficulty is
/// initialized so the configured target interval holds at the configured
/// total hashrate. Returns the node ids.
pub fn build_network<S: SchedulerFor<ChainNode>>(
    sim: &mut Simulation<ChainNode, S>,
    cfg: &NetworkConfig,
    seed: u64,
) -> Vec<NodeId> {
    let mut rng = rng_from_seed(seed);
    let graph = Graph::random_outbound(cfg.nodes, cfg.degree, &mut rng);
    let genesis = Block::genesis(cfg.node.params.difficulty_for(cfg.total_hashrate));
    let n_miners = ((cfg.nodes as f64 * cfg.miner_fraction).round() as usize).max(1);
    // Hashrate shares: Zipf-like rank weights (equal when skew = 0).
    let weights: Vec<f64> = (1..=n_miners)
        .map(|r| 1.0 / (r as f64).powf(cfg.hashrate_skew))
        .collect();
    let wsum: f64 = weights.iter().sum();
    use rand::Rng as _;
    (0..cfg.nodes)
        .map(|i| {
            let mut node_cfg = cfg.node.clone();
            node_cfg.initial_difficulty = cfg.node.params.difficulty_for(cfg.total_hashrate);
            if i < n_miners {
                node_cfg.hashrate = cfg.total_hashrate * weights[i] / wsum;
            } else {
                node_cfg.hashrate = 0.0;
                node_cfg.light = rng.gen::<f64>() < cfg.light_fraction;
            }
            sim.add_node(ChainNode::new(
                node_cfg,
                graph.neighbors(i).to_vec(),
                genesis.clone(),
            ))
        })
        .collect()
}

/// Chain-level measurements taken from one observer node's view.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainReport {
    /// Best-chain height.
    pub height: u64,
    /// Transactions on the best chain.
    pub total_txs: u64,
    /// Transactions per second over the observation span.
    pub tps: f64,
    /// Mean block interval on the best chain.
    pub mean_interval_secs: f64,
    /// Fraction of known blocks that are stale.
    pub stale_rate: f64,
    /// Mean block size on the best chain, bytes.
    pub mean_block_bytes: f64,
}

/// Summarizes the chain as seen by `observer` at the current time.
pub fn report<S: SchedulerFor<ChainNode>>(
    sim: &Simulation<ChainNode, S>,
    observer: NodeId,
) -> ChainReport {
    let view = &sim.node(observer).view;
    let chain = view.best_chain();
    let height = view.height();
    let total_txs: u64 = chain.iter().map(|b| b.txs.len() as u64).sum();
    let span = sim.now().as_secs().max(1e-9);
    let mined: Vec<&Interned<Block>> = chain.iter().rev().skip(1).copied().collect();
    let mean_interval_secs = if mined.len() >= 2 {
        (mined[mined.len() - 1].mined_at.as_secs() - mined[0].mined_at.as_secs())
            / (mined.len() - 1) as f64
    } else {
        0.0
    };
    let mean_block_bytes = if mined.is_empty() {
        0.0
    } else {
        mined.iter().map(|b| b.size_bytes as f64).sum::<f64>() / mined.len() as f64
    };
    ChainReport {
        height,
        total_txs,
        tps: total_txs as f64 / span,
        mean_interval_secs,
        stale_rate: view.stale_rate(),
        mean_block_bytes,
    }
}

/// Builds a network with one selfish miner holding `alpha` of the
/// hashrate against equal honest miners, runs it for `horizon`, and
/// returns `(selfish main-chain share, stale rate)` as seen by an
/// honest observer.
pub fn run_selfish_attack(
    alpha: f64,
    honest_miners: usize,
    interval: SimDuration,
    horizon: SimDuration,
    seed: u64,
    shards: usize,
) -> (f64, f64) {
    assert!((0.0..0.5).contains(&alpha));
    let n = honest_miners + 1 + 10; // + relays/observers
    let total_hashrate = 1e6;
    let mut sim: Simulation<ChainNode> = Simulation::new(seed, ConstantLatency::from_millis(80.0));
    sim.set_shards(shards);
    let graph = Graph::random_outbound(n, 8, &mut rng_from_seed(seed ^ 1));
    let params = PowParams {
        target_interval: interval,
        retarget_window: u64::MAX / 2, // fixed difficulty for a clean race
        ..PowParams::bitcoin()
    };
    let genesis = Block::genesis(params.difficulty_for(total_hashrate));
    let selfish_id = 0usize;
    let ids: Vec<NodeId> = (0..n)
        .map(|i| {
            let hashrate = if i == selfish_id {
                alpha * total_hashrate
            } else if i <= honest_miners {
                (1.0 - alpha) * total_hashrate / honest_miners as f64
            } else {
                0.0
            };
            let cfg = ChainNodeConfig {
                params: params.clone(),
                hashrate,
                initial_difficulty: params.difficulty_for(total_hashrate),
                strategy: if i == selfish_id {
                    MinerStrategy::Selfish
                } else {
                    MinerStrategy::Honest
                },
                tx_rate: 1.0,
                ..ChainNodeConfig::default()
            };
            sim.add_node(ChainNode::new(
                cfg,
                graph.neighbors(i).to_vec(),
                genesis.clone(),
            ))
        })
        .collect();
    sim.run_until(SimTime::ZERO + horizon);
    let observer = &sim.node(ids[n - 1]).view;
    let chain = observer.best_chain();
    let total = chain.len() - 1; // exclude genesis
    let selfish_blocks = chain.iter().filter(|b| b.miner == ids[selfish_id]).count();
    (
        selfish_blocks as f64 / total.max(1) as f64,
        observer.stale_rate(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bitcoin_like(
        nodes: usize,
        hours: f64,
        interval_secs: f64,
    ) -> (Simulation<ChainNode>, Vec<NodeId>) {
        let mut rng = rng_from_seed(91);
        let net = RegionNet::sampled(nodes, &Region::BITCOIN_2019_DISTRIBUTION, &mut rng);
        let mut sim = Simulation::new(92, net);
        let cfg = NetworkConfig {
            nodes,
            miner_fraction: 0.2,
            total_hashrate: 1e6,
            node: ChainNodeConfig {
                params: PowParams {
                    target_interval: SimDuration::from_secs(interval_secs),
                    retarget_window: 2016,
                    ..PowParams::bitcoin()
                },
                tx_rate: 20.0, // saturate the 2000-tx blocks
                ..ChainNodeConfig::default()
            },
            ..NetworkConfig::default()
        };
        let ids = build_network(&mut sim, &cfg, 23);
        sim.run_until(SimTime::from_hours(hours));
        (sim, ids)
    }

    #[test]
    fn chain_grows_at_target_rate_and_converges() {
        let (sim, ids) = bitcoin_like(60, 24.0, 600.0);
        let r = report(&sim, ids[0]);
        let expected = 24.0 * 3600.0 / 600.0;
        assert!(
            (r.height as f64) > 0.7 * expected && (r.height as f64) < 1.4 * expected,
            "height {} vs expected ~{expected}",
            r.height
        );
        // All full nodes agree on the prefix: compare a few tips.
        let h0 = sim.node(ids[0]).view.height();
        for &id in ids.iter().take(10) {
            let h = sim.node(id).view.height();
            assert!(
                (h as i64 - h0 as i64).abs() <= 2,
                "node {id} at height {h}, observer at {h0}"
            );
        }
    }

    #[test]
    fn throughput_is_capped_by_block_capacity() {
        let (sim, ids) = bitcoin_like(60, 24.0, 600.0);
        let r = report(&sim, ids[0]);
        // 2000 txs / 600 s = 3.33 tps ceiling; offered load is 20 tps.
        // A 24 h run mines ~144 blocks, so Poisson noise on the block
        // count moves measured tps ~±17% around the ceiling (2 sigma).
        assert!(r.tps <= 4.0, "tps {}", r.tps);
        assert!(r.tps > 2.2, "tps {}", r.tps);
    }

    #[test]
    fn short_intervals_inflate_stale_rate() {
        let (sim_slow, ids_slow) = bitcoin_like(60, 6.0, 600.0);
        let (sim_fast, ids_fast) = bitcoin_like(60, 0.5, 5.0);
        let slow = report(&sim_slow, ids_slow[0]);
        let fast = report(&sim_fast, ids_fast[0]);
        assert!(
            fast.stale_rate > slow.stale_rate,
            "fast {} <= slow {}",
            fast.stale_rate,
            slow.stale_rate
        );
        assert!(fast.stale_rate > 0.01, "5s blocks must fork sometimes");
    }

    #[test]
    fn orphans_are_buffered_until_the_parent_arrives() {
        // Two nodes; deliver child before parent by hand.
        let params = PowParams::bitcoin();
        let genesis = Block::genesis(1.0);
        let mut sim: Simulation<ChainNode> =
            Simulation::new(98, ConstantLatency::from_millis(10.0));
        let cfg = ChainNodeConfig {
            initial_difficulty: 1.0,
            params,
            ..ChainNodeConfig::default()
        };
        let a = sim.add_node(ChainNode::new(cfg.clone(), vec![1], genesis.clone()));
        let b = sim.add_node(ChainNode::new(cfg, vec![0], genesis.clone()));
        sim.run_until(SimTime::from_secs(0.1));
        let parent = Interned::new(Block {
            id: BlockId(101),
            parent: Some(genesis.id),
            height: 1,
            miner: a,
            mined_at: SimTime::from_secs(0.1),
            txs: vec![],
            size_bytes: 100,
            difficulty: 1.0,
        });
        let child = Interned::new(Block {
            id: BlockId(102),
            parent: Some(parent.id),
            height: 2,
            miner: a,
            mined_at: SimTime::from_secs(0.2),
            txs: vec![],
            size_bytes: 100,
            difficulty: 1.0,
        });
        // Give node A both blocks so it can serve GetBlock requests.
        sim.node_mut(a)
            .view
            .accept(parent.clone(), SimTime::from_secs(0.1));
        sim.node_mut(a)
            .view
            .accept(child.clone(), SimTime::from_secs(0.2));
        // Node B hears about the CHILD only.
        sim.inject(
            b,
            ChainMsg::BlockData(child.clone()),
            SimDuration::from_millis(1.0),
        );
        sim.run_until(SimTime::from_secs(5.0));
        // B must have requested the parent from A and accepted both.
        assert!(sim.node(b).view.contains(parent.id), "parent fetched");
        assert!(sim.node(b).view.contains(child.id), "orphan resolved");
        assert_eq!(sim.node(b).view.height(), 2);
    }

    #[test]
    fn miners_win_blocks_proportionally_to_hashrate() {
        let mut sim = Simulation::new(94, ConstantLatency::from_millis(50.0));
        let cfg = NetworkConfig {
            nodes: 20,
            miner_fraction: 0.5,
            hashrate_skew: 1.0, // rank-1 miner has ~34% of power
            node: ChainNodeConfig {
                params: PowParams {
                    target_interval: SimDuration::from_secs(60.0),
                    ..PowParams::bitcoin()
                },
                ..ChainNodeConfig::default()
            },
            ..NetworkConfig::default()
        };
        let ids = build_network(&mut sim, &cfg, 95);
        sim.run_until(SimTime::from_days(2.0));
        let total: u64 = ids.iter().map(|&i| sim.node(i).blocks_mined).sum();
        let top = sim.node(ids[0]).blocks_mined;
        let share = top as f64 / total as f64;
        // Zipf(1) over 10 miners: rank 1 weight = 1/H(10) ≈ 0.34.
        assert!((share - 0.34).abs() < 0.08, "top miner share {share}");
    }

    #[test]
    fn network_selfish_miner_beats_fair_share() {
        // A 42% selfish pool on a real relay network: gamma emerges from
        // propagation rather than being assumed.
        let (share, stale) = run_selfish_attack(
            0.42,
            14,
            SimDuration::from_secs(60.0),
            SimDuration::from_days(3.0),
            0x5EF,
            2,
        );
        assert!(
            share > 0.45,
            "42% selfish hashrate should exceed its fair share: {share}"
        );
        assert!(stale > 0.02, "withholding must orphan honest work: {stale}");
    }

    #[test]
    fn network_honest_miner_earns_fair_share() {
        // Control: the same node mining honestly earns ~its hashrate.
        let n = 25;
        let mut sim: Simulation<ChainNode> =
            Simulation::new(0x5F0, ConstantLatency::from_millis(80.0));
        let graph = Graph::random_outbound(n, 8, &mut rng_from_seed(0x5F1));
        let params = PowParams {
            target_interval: SimDuration::from_secs(60.0),
            retarget_window: u64::MAX / 2,
            ..PowParams::bitcoin()
        };
        let genesis = Block::genesis(params.difficulty_for(1e6));
        let ids: Vec<NodeId> = (0..n)
            .map(|i| {
                let hashrate = if i == 0 {
                    0.42e6
                } else if i <= 14 {
                    0.58e6 / 14.0
                } else {
                    0.0
                };
                let cfg = ChainNodeConfig {
                    params: params.clone(),
                    hashrate,
                    initial_difficulty: params.difficulty_for(1e6),
                    tx_rate: 1.0,
                    ..ChainNodeConfig::default()
                };
                sim.add_node(ChainNode::new(
                    cfg,
                    graph.neighbors(i).to_vec(),
                    genesis.clone(),
                ))
            })
            .collect();
        sim.run_until(SimTime::from_days(3.0));
        let chain = sim.node(ids[n - 1]).view.best_chain();
        let total = chain.len() - 1;
        let big = chain.iter().filter(|b| b.miner == ids[0]).count();
        let share = big as f64 / total as f64;
        assert!(
            (share - 0.42).abs() < 0.04,
            "honest miner earns its hashrate share: {share}"
        );
    }

    #[test]
    fn light_clients_track_height_cheaply() {
        let mut sim = Simulation::new(96, ConstantLatency::from_millis(50.0));
        let cfg = NetworkConfig {
            nodes: 30,
            miner_fraction: 0.2,
            light_fraction: 1.0, // every non-miner is light
            node: ChainNodeConfig {
                params: PowParams {
                    target_interval: SimDuration::from_secs(120.0),
                    ..PowParams::bitcoin()
                },
                tx_rate: 20.0,
                ..ChainNodeConfig::default()
            },
            ..NetworkConfig::default()
        };
        let ids = build_network(&mut sim, &cfg, 97);
        sim.run_until(SimTime::from_hours(8.0));
        let miner = ids[0];
        let light = ids
            .iter()
            .copied()
            .find(|&i| !sim.node(i).is_miner())
            .unwrap();
        let hm = sim.node(miner).view.height();
        let hl = sim.node(light).view.height();
        assert!(hm > 50);
        assert!(
            (hm as i64 - hl as i64).abs() <= 2,
            "light {hl} vs miner {hm}"
        );
        // And pays orders of magnitude less storage.
        let full_storage = sim.node(miner).storage_bytes();
        let light_storage = sim.node(light).storage_bytes();
        assert!(
            light_storage * 100 < full_storage,
            "light {light_storage} vs full {full_storage}"
        );
    }
}
