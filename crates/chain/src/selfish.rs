//! Selfish mining (Eyal & Sirer, "Majority is not enough", CACM 2018).
//!
//! The paper cites this attack (\[30\]) as evidence that Bitcoin's
//! incentive mechanism is flawed: a colluding minority pool can earn
//! more than its fair share. Two implementations are provided:
//!
//! - [`closed_form`]: the paper's analytic relative-revenue formula;
//! - [`simulate`]: a Monte Carlo run of the strategy's Markov chain,
//!   with explicit `gamma` (the fraction of honest power that mines on
//!   the attacker's branch during a race).
//!
//! Experiment E9 sweeps `alpha` and `gamma` with both and checks they
//! agree, reproducing the attack's famous thresholds (1/3 at γ=0, 1/4 at
//! γ=1/2, 0 at γ=1).

use rand::Rng;

use decent_sim::rng::{rng_from_seed, SimRng};

/// Outcome of a selfish-mining simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SelfishOutcome {
    /// Blocks of the attacker on the final main chain.
    pub attacker_blocks: u64,
    /// Honest blocks on the final main chain.
    pub honest_blocks: u64,
    /// Blocks discovered in total (including orphaned ones).
    pub total_discovered: u64,
}

impl SelfishOutcome {
    /// The attacker's share of main-chain revenue.
    pub fn attacker_share(&self) -> f64 {
        let total = self.attacker_blocks + self.honest_blocks;
        if total == 0 {
            0.0
        } else {
            self.attacker_blocks as f64 / total as f64
        }
    }

    /// Fraction of discovered blocks that were orphaned by the attack
    /// (wasted work — the chain's effective throughput loss).
    pub fn orphan_rate(&self) -> f64 {
        if self.total_discovered == 0 {
            return 0.0;
        }
        1.0 - (self.attacker_blocks + self.honest_blocks) as f64 / self.total_discovered as f64
    }
}

/// The Eyal–Sirer closed-form relative revenue of a selfish pool with
/// power `alpha` and race-win propensity `gamma`.
///
/// Equation (8) of the paper. The pool profits whenever the result
/// exceeds `alpha`.
///
/// # Panics
///
/// Panics if `alpha` is not in `[0, 0.5)` or `gamma` not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use decent_chain::selfish::closed_form;
///
/// // At gamma = 0 the threshold is 1/3: below it selfish mining loses.
/// assert!(closed_form(0.30, 0.0) < 0.30);
/// assert!(closed_form(0.40, 0.0) > 0.40);
/// ```
pub fn closed_form(alpha: f64, gamma: f64) -> f64 {
    assert!((0.0..0.5).contains(&alpha), "alpha must be in [0, 0.5)");
    assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
    let a = alpha;
    let num = a * (1.0 - a) * (1.0 - a) * (4.0 * a + gamma * (1.0 - 2.0 * a)) - a * a * a;
    let den = 1.0 - a * (1.0 + (2.0 - a) * a);
    num / den
}

/// The minimum pool size at which selfish mining becomes profitable for
/// a given `gamma` (Eyal–Sirer threshold `(1-γ)/(3-2γ)`).
pub fn profit_threshold(gamma: f64) -> f64 {
    (1.0 - gamma) / (3.0 - 2.0 * gamma)
}

/// Runs the selfish-mining Markov chain for `blocks` block discoveries.
///
/// `alpha` is the attacker's hashrate share; `gamma` the fraction of
/// honest hashrate that mines on the attacker's block during a race.
///
/// # Panics
///
/// Panics if `alpha` is not in `[0, 0.5)` or `gamma` not in `[0, 1]`.
pub fn simulate(alpha: f64, gamma: f64, blocks: u64, seed: u64) -> SelfishOutcome {
    assert!((0.0..0.5).contains(&alpha), "alpha must be in [0, 0.5)");
    assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
    let mut rng = rng_from_seed(seed);
    let mut out = SelfishOutcome::default();
    // `lead` is the attacker's private lead; `racing` marks state 0'
    // (two competing public branches of length one).
    let mut lead: u64 = 0;
    let mut racing = false;
    for _ in 0..blocks {
        out.total_discovered += 1;
        let attacker_found = rng.gen::<f64>() < alpha;
        if racing {
            // State 0': one attacker block and one honest block public.
            if attacker_found {
                // Attacker extends its own branch: takes both blocks.
                out.attacker_blocks += 2;
            } else if rng.gen::<f64>() < gamma {
                // Honest miner on the attacker's branch: one block each.
                out.attacker_blocks += 1;
                out.honest_blocks += 1;
            } else {
                // Honest branch wins: two honest blocks on-chain.
                out.honest_blocks += 2;
            }
            racing = false;
            lead = 0;
            continue;
        }
        match (lead, attacker_found) {
            (0, true) => lead = 1,
            (0, false) => out.honest_blocks += 1,
            (1, true) => lead = 2,
            (1, false) => {
                // Publish the private block: a race begins. The honest
                // block just found competes; resolution on next event.
                racing = true;
            }
            (2, false) => {
                // Publish both private blocks and override.
                out.attacker_blocks += 2;
                lead = 0;
            }
            (n, false) => {
                // Lead > 2: release one block, which will win.
                out.attacker_blocks += 1;
                lead = n - 1;
            }
            (n, true) => lead = n + 1,
        }
    }
    out
}

/// Sweeps attacker sizes for a fixed `gamma`, returning
/// `(alpha, simulated share, closed-form share)` rows.
pub fn sweep_alpha(alphas: &[f64], gamma: f64, blocks: u64, seed: u64) -> Vec<(f64, f64, f64)> {
    alphas
        .iter()
        .map(|&a| {
            let sim = simulate(a, gamma, blocks, seed ^ (a * 1e6) as u64);
            (a, sim.attacker_share(), closed_form(a, gamma))
        })
        .collect()
}

/// Samples gamma empirically: returns the probability that a fresh
/// random honest miner extends the attacker branch, given the attacker
/// reaches a fraction `reach` of honest nodes first.
///
/// A helper for relating the abstract `gamma` to network position.
pub fn gamma_from_reach(reach: f64, rng: &mut SimRng) -> bool {
    rng.gen::<f64>() < reach
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_known_points() {
        // From the paper: at gamma=0, alpha=1/3 is the break-even.
        let r = closed_form(1.0 / 3.0, 0.0);
        assert!((r - 1.0 / 3.0).abs() < 1e-9, "break-even at 1/3, got {r}");
        // gamma=1: any alpha profits.
        assert!(closed_form(0.1, 1.0) > 0.1);
        // Honest mining at alpha=0 earns nothing.
        assert!(closed_form(0.0, 0.5).abs() < 1e-12);
    }

    #[test]
    fn thresholds_match_formula() {
        assert!((profit_threshold(0.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((profit_threshold(0.5) - 0.25).abs() < 1e-12);
        assert!(profit_threshold(1.0).abs() < 1e-12);
        // closed_form crosses alpha exactly at the threshold.
        for gamma in [0.0, 0.25, 0.5, 0.75] {
            let t = profit_threshold(gamma);
            assert!(closed_form(t + 0.02, gamma) > t + 0.02);
            if t > 0.03 {
                assert!(closed_form(t - 0.02, gamma) < t - 0.02);
            }
        }
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        for &(alpha, gamma) in &[
            (0.2, 0.0),
            (0.3, 0.5),
            (0.4, 0.0),
            (0.45, 1.0),
            (0.35, 0.25),
        ] {
            let sim = simulate(alpha, gamma, 2_000_000, 7);
            let analytic = closed_form(alpha, gamma);
            assert!(
                (sim.attacker_share() - analytic).abs() < 0.01,
                "alpha {alpha} gamma {gamma}: sim {} vs analytic {analytic}",
                sim.attacker_share()
            );
        }
    }

    #[test]
    fn minority_pool_beats_fair_share_above_threshold() {
        let sim = simulate(0.4, 0.0, 1_000_000, 8);
        assert!(
            sim.attacker_share() > 0.43,
            "40% pool should exceed fair share: {}",
            sim.attacker_share()
        );
    }

    #[test]
    fn small_pool_loses_at_gamma_zero() {
        let sim = simulate(0.25, 0.0, 1_000_000, 9);
        assert!(
            sim.attacker_share() < 0.25,
            "25% pool below threshold must lose: {}",
            sim.attacker_share()
        );
    }

    #[test]
    fn attack_wastes_work() {
        let honest = simulate(0.0, 0.0, 100_000, 10);
        assert_eq!(honest.orphan_rate(), 0.0);
        let attacked = simulate(0.4, 0.5, 1_000_000, 11);
        assert!(
            attacked.orphan_rate() > 0.1,
            "selfish mining should orphan blocks: {}",
            attacked.orphan_rate()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            simulate(0.3, 0.5, 100_000, 3),
            simulate(0.3, 0.5, 100_000, 3)
        );
    }
}
