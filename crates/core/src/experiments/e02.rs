//! E2 — Free riding on Gnutella.
//!
//! Paper (II-B Problem 1, citing Adar & Huberman \[21\]): free riding was
//! extensively reported on Gnutella. The original study found that
//! about two thirds of peers share no files and that the top 1% of
//! sharing hosts serve roughly a third to a half of all responses.

use std::collections::HashSet;

use decent_overlay::flood::{build_network, FloodConfig};
use decent_sim::prelude::*;

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Free riding on Gnutella (II-B P1)";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Overlay size.
    pub nodes: usize,
    /// Number of flooded queries.
    pub queries: usize,
    /// Query TTL.
    pub ttl: u32,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution shards per simulation (1 = serial). Not a sweepable
    /// parameter and absent from reports: sharding never changes
    /// results, so it must never appear in canonical output.
    pub shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            nodes: 2000,
            queries: 3000,
            ttl: 5,
            seed: 0xE2,
            shards: 1,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            nodes: 500,
            queries: 500,
            ..Config::default()
        }
    }
}

/// Sweepable knobs.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "nodes",
        help: "overlay size (min 16)",
        get: |c| c.nodes as f64,
        set: |c, v| c.nodes = v.round().max(16.0) as usize,
    },
    Param {
        name: "queries",
        help: "flooded queries (min 1)",
        get: |c| c.queries as f64,
        set: |c, v| c.queries = v.round().max(1.0) as usize,
    },
    Param {
        name: "ttl",
        help: "query time-to-live in hops (1-16)",
        get: |c| c.ttl as f64,
        set: |c, v| c.ttl = v.round().clamp(1.0, 16.0) as u32,
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E2"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, exec: scenario::ExecPolicy) -> bool {
        self.shards = exec.shard_count();
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

/// Runs E2 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let flood_cfg = FloodConfig::default();
    let mut sim = Simulation::new(cfg.seed, UniformLatency::from_millis(30.0, 120.0));
    sim.set_shards(cfg.shards);
    let ids = build_network(&mut sim, cfg.nodes, &flood_cfg, cfg.seed ^ 2);
    sim.run_until(SimTime::from_secs(0.1));
    let zipf = Zipf::new(flood_cfg.catalog_size, flood_cfg.popularity_exponent);
    for q in 0..cfg.queries as u64 {
        let origin = ids[(q as usize * 17) % ids.len()];
        let file = {
            let rng = sim.rng();
            zipf.sample_rank(rng) as u32
        };
        let ttl = cfg.ttl;
        sim.invoke(origin, |n, ctx| n.query(q, file, ttl, ctx));
        let next = sim.now() + SimDuration::from_millis(40.0);
        sim.run_until(next);
    }
    sim.run_until(sim.now() + SimDuration::from_secs(60.0));

    // Population and load statistics.
    let free_riders = ids.iter().filter(|&&i| sim.node(i).is_free_rider()).count();
    let mut served: Vec<f64> = ids
        .iter()
        .map(|&i| sim.node(i).hits_served as f64)
        .collect();
    let total_hits: f64 = served.iter().sum();
    served.sort_by(|a, b| b.total_cmp(a));
    let share_of_top = |frac: f64| -> f64 {
        let k = ((ids.len() as f64 * frac).ceil() as usize).max(1);
        if total_hits == 0.0 {
            0.0
        } else {
            served.iter().take(k).sum::<f64>() / total_hits
        }
    };
    // Adar & Huberman's headline number counts *files provided*: the
    // share of all shared file instances held by the top hosts.
    let mut libraries: Vec<f64> = ids
        .iter()
        .map(|&i| sim.node(i).shared_count() as f64)
        .collect();
    let total_instances: f64 = libraries.iter().sum();
    libraries.sort_by(|a, b| b.total_cmp(a));
    let files_top = |frac: f64| -> f64 {
        let k = ((ids.len() as f64 * frac).ceil() as usize).max(1);
        libraries.iter().take(k).sum::<f64>() / total_instances.max(1.0)
    };
    let answered: HashSet<u64> = ids
        .iter()
        .flat_map(|&i| sim.node(i).hits_received.iter().map(|&(q, _, _)| q))
        .collect();
    let success = answered.len() as f64 / cfg.queries as f64;
    let relay_load: f64 = ids
        .iter()
        .map(|&i| sim.node(i).queries_relayed as f64)
        .sum::<f64>()
        / cfg.queries as f64;

    let mut report = ExperimentReport::new("E2", TITLE);
    let mut t = Table::new("Population and answer concentration", &["metric", "value"]);
    t.row(["peers".to_string(), cfg.nodes.to_string()]);
    t.row([
        "free riders (share nothing)".to_string(),
        fmt_pct(free_riders as f64 / ids.len() as f64),
    ]);
    t.row(["queries answered".to_string(), fmt_pct(success)]);
    t.row([
        "files provided by top 1% of peers".to_string(),
        fmt_pct(files_top(0.01)),
    ]);
    t.row([
        "answers served by top 1% of peers".to_string(),
        fmt_pct(share_of_top(0.01)),
    ]);
    t.row([
        "answers served by top 5% of peers".to_string(),
        fmt_pct(share_of_top(0.05)),
    ]);
    t.row([
        "answers served by top 25% of peers".to_string(),
        fmt_pct(share_of_top(0.25)),
    ]);
    t.row([
        "mean nodes relaying each query".to_string(),
        fmt_f(relay_load),
    ]);
    report.table(t);
    report.absorb_metrics(sim.metrics_snapshot());
    report.check(
        "E2.free-riders",
        "most peers share nothing",
        "~66-70% of Gnutella peers shared no files",
        fmt_pct(free_riders as f64 / ids.len() as f64),
        free_riders as f64 / ids.len() as f64,
        Expect::Within { lo: 0.55, hi: 0.8 },
    );
    report.check_with(
        "E2.top1-elite",
        "a tiny elite provides most content",
        "top 1% of hosts provide ~37% of all shared files (Adar & Huberman)",
        format!(
            "top 1% hold {} of file instances and serve {} of answers",
            fmt_pct(files_top(0.01)),
            fmt_pct(share_of_top(0.01))
        ),
        files_top(0.01),
        Expect::AtLeast(0.25),
        share_of_top(0.01) >= 0.1,
    );
    report.check(
        "E2.flood-cost",
        "flooding burdens everyone",
        "flooding is slow and inefficient (II)",
        format!("each query touches {} peers on average", fmt_f(relay_load)),
        relay_load,
        Expect::MoreThan(cfg.nodes as f64 * 0.3),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_free_riding() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
