//! E12 — Permissioned BFT performance vs. proof-of-work.
//!
//! Paper (IV): permissioned blockchains avoid "costly proof-of-work by
//! using different consensus algorithms such as crash fault-tolerant
//! (CFT) or byzantine fault tolerant (BFT) protocols, the latter based
//! on BFT-SMaRt", and "consensus or replication can be configured
//! between a subset of the nodes of the network".

use decent_bft::pbft::{saturation_run, PbftConfig};
use decent_bft::raft::{build_cluster, current_leader, RaftConfig};
use decent_chain::node::{build_network, report as chain_report, ChainNodeConfig, NetworkConfig};
use decent_chain::pow::PowParams;
use decent_sim::prelude::*;

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Permissioned BFT/CFT vs. proof-of-work (IV, [34][35])";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// PBFT cluster sizes to sweep.
    pub committee_sizes: Vec<usize>,
    /// Nodes in the PoW comparison network.
    pub chain_nodes: usize,
    /// Simulated hours for the PoW run.
    pub chain_hours: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution shards per simulation (1 = serial). Not a sweepable
    /// parameter and absent from reports: sharding never changes
    /// results, so it must never appear in canonical output.
    pub shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            committee_sizes: vec![4, 7, 16, 31, 64],
            chain_nodes: 80,
            chain_hours: 12.0,
            seed: 0xE12,
            shards: 1,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            committee_sizes: vec![4, 16, 64],
            chain_nodes: 40,
            chain_hours: 6.0,
            ..Config::default()
        }
    }
}

/// Sweepable knobs. `committee_max` drives the largest PBFT committee,
/// which both throughput claims compare against.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "committee_max",
        help: "largest PBFT committee size swept (min 4)",
        get: |c| *c.committee_sizes.last().expect("at least one size") as f64,
        set: |c, v| {
            *c.committee_sizes.last_mut().expect("at least one size") = v.round().max(4.0) as usize
        },
    },
    Param {
        name: "chain_nodes",
        help: "nodes in the PoW comparison network (min 8)",
        get: |c| c.chain_nodes as f64,
        set: |c, v| c.chain_nodes = v.round().max(8.0) as usize,
    },
    Param {
        name: "chain_hours",
        help: "simulated hours for the PoW run (min 1)",
        get: |c| c.chain_hours,
        set: |c, v| c.chain_hours = v.max(1.0),
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E12"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, exec: scenario::ExecPolicy) -> bool {
        self.shards = exec.shard_count();
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

fn measure_raft(seed: u64, shards: usize) -> (f64, f64, MetricsSnapshot) {
    let mut sim = Simulation::new(seed, LanNet::datacenter());
    sim.set_shards(shards);
    let ids = build_cluster(&mut sim, &RaftConfig::default());
    sim.run_until(SimTime::from_secs(1.0));
    let _ = current_leader(&sim, &ids);
    let ops = 200_000u64;
    for &id in &ids {
        sim.node_mut(id)
            .submit_many(0..ops, SimTime::from_secs(1.0));
    }
    let horizon = 4.0;
    sim.run_until(SimTime::from_secs(1.0 + horizon));
    let mut lat = Histogram::new();
    let node = ids
        .iter()
        .map(|&i| sim.node(i))
        .max_by_key(|n| n.applied.len())
        .expect("nodes");
    for &(sub, app) in &node.applied {
        lat.record(app.saturating_since(sub).as_secs());
    }
    let tps = node.applied.len() as f64 / horizon;
    let p50 = lat.percentile(0.5);
    (tps, p50, sim.metrics_snapshot())
}

/// Runs E12 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E12", TITLE);
    let mut t = Table::new(
        "Ordering throughput and commit latency",
        &["system", "replicas", "tx/s", "commit p50"],
    );
    let mut pbft_tps = Vec::new();
    for (i, &n) in cfg.committee_sizes.iter().enumerate() {
        let (tps, lat) = saturation_run(
            &PbftConfig {
                n,
                ..PbftConfig::default()
            },
            800_000 / n as u64,
            SimDuration::from_secs(2.0),
            cfg.seed ^ ((i as u64 + 1) << 8),
        );
        t.row([
            "PBFT".to_string(),
            n.to_string(),
            fmt_si(tps),
            format!("{:.1} ms", lat.p50 * 1e3),
        ]);
        pbft_tps.push(tps);
    }
    let (raft_tps, raft_p50, raft_metrics) = measure_raft(cfg.seed ^ 0x4A, cfg.shards);
    report.absorb_metrics(raft_metrics);
    t.row([
        "Raft (CFT)".to_string(),
        "5".to_string(),
        fmt_si(raft_tps),
        format!("{:.1} ms", raft_p50 * 1e3),
    ]);

    // The PoW comparison network.
    let mut rng = rng_from_seed(cfg.seed ^ 0x50);
    let net = RegionNet::sampled(
        cfg.chain_nodes,
        &Region::BITCOIN_2019_DISTRIBUTION,
        &mut rng,
    );
    let mut sim = Simulation::new(cfg.seed ^ 0x51, net);
    sim.set_shards(cfg.shards);
    let ncfg = NetworkConfig {
        nodes: cfg.chain_nodes,
        miner_fraction: 0.25,
        node: ChainNodeConfig {
            params: PowParams::bitcoin(),
            tx_rate: 1000.0,
            ..ChainNodeConfig::default()
        },
        ..NetworkConfig::default()
    };
    let ids = build_network(&mut sim, &ncfg, cfg.seed ^ 0x52);
    sim.run_until(SimTime::from_hours(cfg.chain_hours));
    let pow = chain_report(&sim, ids[cfg.chain_nodes - 1]);
    report.absorb_metrics(sim.metrics_snapshot());
    t.row([
        "PoW (Bitcoin-like)".to_string(),
        format!("{} (all validate)", cfg.chain_nodes),
        fmt_f(pow.tps),
        "~60 min (6 confirmations)".to_string(),
    ]);
    report.table(t);

    let first = pbft_tps[0];
    let last = *pbft_tps.last().expect("sizes");
    let biggest = *cfg.committee_sizes.last().expect("sizes");
    report.check(
        "E12.bft-committee-cost",
        "BFT throughput falls with committee size",
        "traditional BFT limits the number of participating entities",
        format!(
            "{} tx/s at n={} -> {} tx/s at n={}",
            fmt_si(first),
            cfg.committee_sizes[0],
            fmt_si(last),
            biggest
        ),
        first,
        Expect::MoreThan(2.0 * last),
    );
    report.check(
        "E12.bft-beats-pow",
        "even a large committee crushes PoW throughput",
        "permissioned blockchains avoid costly proof-of-work",
        format!(
            "PBFT n={biggest}: {} tx/s vs PoW {} tx/s ({}x)",
            fmt_si(last),
            fmt_f(pow.tps),
            fmt_si(last / pow.tps.max(0.1))
        ),
        last,
        Expect::MoreThan(100.0 * pow.tps),
    );
    report.structural(
        "E12.finality-gap",
        "commit latency: milliseconds vs an hour",
        "performance and finality motivate permissioned designs",
        "PBFT p50 in milliseconds; PoW needs ~6 blocks (~1 h) for confidence",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_bft_advantage() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
