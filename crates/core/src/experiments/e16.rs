//! E16 — Nothing-at-stake: proof-of-X does not fix the waste problem.
//!
//! Paper (III-C Problem 2, citing Houy \[32\]): "Alternative approaches
//! based on proof-of-X, where X could be stake, space, activity, etc.
//! seem not be able to fully address this problem so far" — the cited
//! paper being "It will cost you nothing to 'kill' a proof-of-stake
//! crypto-currency".

use decent_chain::pos::{attack_cost_units, simulate_pos_attack, simulate_pow_attack, PosAttack};
use decent_sim::report::{fmt_pct, fmt_si};

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Nothing-at-stake: 'killing' proof-of-stake is free (III-C P2, [32])";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Attacker stake/hashpower share.
    pub attacker: f64,
    /// Fractions of rational (multi-minting) stake to sweep.
    pub rational_fractions: Vec<f64>,
    /// Monte Carlo attempts per point.
    pub attempts: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            attacker: 0.10,
            rational_fractions: vec![0.0, 0.25, 0.5, 0.75, 0.95],
            attempts: 20_000,
            seed: 0xE16,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            rational_fractions: vec![0.0, 0.5, 0.95],
            attempts: 5_000,
            ..Config::default()
        }
    }
}

/// Sweepable knobs.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "attacker",
        help: "attacker stake/hashpower share (0.01-0.45)",
        get: |c| c.attacker,
        set: |c, v| c.attacker = v.clamp(0.01, 0.45),
    },
    Param {
        name: "attempts",
        help: "Monte Carlo attempts per point (min 500)",
        get: |c| c.attempts as f64,
        set: |c, v| c.attempts = v.round().max(500.0) as u64,
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E16"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, _exec: scenario::ExecPolicy) -> bool {
        // Monte Carlo attack races — there is no discrete-event loop to
        // shard, so any shard count yields identical output trivially.
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

/// Runs E16 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E16", TITLE);
    let mut t = Table::new(
        "Probability of reversing a 6-confirmed payment (10% attacker)",
        &[
            "system",
            "multi-minting stake",
            "reversal probability",
            "marginal attack cost",
        ],
    );
    let pow = simulate_pow_attack(cfg.attacker, 6, cfg.attempts, cfg.seed ^ 1);
    t.row([
        "PoW".to_string(),
        "impossible (hashes are exclusive)".to_string(),
        fmt_pct(pow),
        fmt_si(attack_cost_units(true, 600, 1e12)),
    ]);
    let mut curve = Vec::new();
    for (i, &frac) in cfg.rational_fractions.iter().enumerate() {
        let out = simulate_pos_attack(
            &PosAttack {
                attacker_stake: cfg.attacker,
                rational_fraction: frac,
                ..PosAttack::default()
            },
            cfg.attempts,
            cfg.seed ^ ((i as u64 + 2) << 8),
        );
        t.row([
            "PoS".to_string(),
            fmt_pct(frac),
            fmt_pct(out.reversal_probability()),
            fmt_si(attack_cost_units(false, 600, 1e12)),
        ]);
        curve.push(out.reversal_probability());
    }
    report.table(t);

    let disciplined = curve[0];
    let rational = *curve.last().expect("points");
    report.check_with(
        "E16.nothing-at-stake",
        "PoS security rests on unenforceable discipline",
        "it costs nothing to 'kill' a proof-of-stake currency (Houy)",
        format!(
            "10% attacker reverses {} of payments with honest stake but {} once {} of stake multi-mints — at zero marginal cost",
            fmt_pct(disciplined),
            fmt_pct(rational),
            fmt_pct(*cfg.rational_fractions.last().expect("points"))
        ),
        rational,
        Expect::MoreThan(0.5),
        disciplined < 0.05,
    );
    report.check(
        "E16.pow-energy-safety",
        "PoW buys safety with energy",
        "proof-of-work defends against sybils at a huge energy price (III)",
        format!(
            "same attacker against PoW: {} reversal probability, but every attempt burns real energy",
            fmt_pct(pow)
        ),
        pow,
        Expect::LessThan(0.05),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_nothing_at_stake() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
