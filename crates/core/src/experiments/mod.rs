//! One experiment per quantitative claim of the paper (see
//! [`crate::claims`] for the mapping).
//!
//! Every experiment exposes a `Config` (with `Default` = paper scale
//! and `Config::quick()` = CI scale) and a `run(&Config) ->
//! ExperimentReport` entry point. The harness entry points here add
//! seed overrides ([`run_seeded`]) and a deterministic parallel runner
//! ([`run_report`]) that fans experiments across a thread pool.

pub mod e01;
pub mod e02;
pub mod e03;
pub mod e04;
pub mod e05;
pub mod e06;
pub mod e07;
pub mod e08;
pub mod e09;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e17;
pub mod e18;
pub mod e19;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::report::{ExperimentReport, ExperimentRun, RunReport};

/// Experiment ids in order. E1-E15 reproduce the paper's explicit
/// quantitative claims; E16-E18 cover the secondary claims it makes in
/// passing (nothing-at-stake, layer-2 centralization, dapp congestion);
/// E19 stresses both architectures with scripted fault injection.
pub const ALL: [&str; 19] = [
    "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15",
    "E16", "E17", "E18", "E19",
];

/// `(id, one-line description)` for every experiment, in [`ALL`] order.
/// This is what `repro --list` prints.
pub const DESCRIPTIONS: [(&str, &str); 19] = [
    (
        "E1",
        "DHT lookup latency: eMule KAD vs. BitTorrent Mainline (II-A)",
    ),
    ("E2", "Free riding on Gnutella (II-B P1)"),
    ("E3", "Tit-for-tat incentives in BitTorrent (II-B P1)"),
    (
        "E4",
        "Churn vs. performance; stable servers have no rival (II-B P2)",
    ),
    ("E5", "Sybil attacks on open overlays (II-B P3)"),
    ("E6", "One-hop full membership vs. multi-hop DHTs (II-B)"),
    ("E7", "Throughput: VISA vs. Bitcoin vs. Ethereum (III-C P2)"),
    (
        "E8",
        "Mining centralization: pools, farms, dead desktops (III-C P1)",
    ),
    (
        "E9",
        "Selfish mining: minority pools beat their fair share (III-C P1)",
    ),
    ("E10", "Bitcoin energy consumption at peak hashrate (III-B)"),
    ("E11", "The scalability trilemma (III-C P2)"),
    ("E12", "Permissioned BFT/CFT vs. proof-of-work (IV)"),
    (
        "E13",
        "Edge-centric + permissioned trust vs. centralized cloud (V)",
    ),
    (
        "E14",
        "Fork rate vs. block interval; difficulty retargeting (III-A)",
    ),
    (
        "E15",
        "Resource growth: full nodes vs. light clients (III-C P1)",
    ),
    (
        "E16",
        "Nothing-at-stake: 'killing' proof-of-stake is free (III-C P2)",
    ),
    (
        "E17",
        "Layer-2 channels: throughput through centralization (III-C P2)",
    ),
    ("E18", "A viral dapp congests the whole chain (III-C P3)"),
    (
        "E19",
        "Resilience across a partition-heal cycle: DHT vs. PBFT (II-B P2, IV)",
    ),
];

/// Runs one experiment by id at quick (CI) or full (paper) scale.
///
/// Returns `None` for an unknown id.
pub fn run_by_id(id: &str, quick: bool) -> Option<ExperimentReport> {
    run_seeded(id, quick, None)
}

/// Runs one experiment by id with an optional seed override.
///
/// `seed = None` keeps the experiment's built-in config seed (the
/// reproducible default). E10 is closed-form arithmetic with no RNG, so
/// a seed override is a no-op there.
///
/// Returns `None` for an unknown id.
pub fn run_seeded(id: &str, quick: bool, seed: Option<u64>) -> Option<ExperimentReport> {
    macro_rules! dispatch {
        ($m:ident) => {{
            let mut cfg = if quick {
                $m::Config::quick()
            } else {
                $m::Config::default()
            };
            if let Some(s) = seed {
                cfg.seed = s;
            }
            $m::run(&cfg)
        }};
        ($m:ident, no_seed) => {{
            let cfg = if quick {
                $m::Config::quick()
            } else {
                $m::Config::default()
            };
            $m::run(&cfg)
        }};
    }
    Some(match id {
        "E1" => dispatch!(e01),
        "E2" => dispatch!(e02),
        "E3" => dispatch!(e03),
        "E4" => dispatch!(e04),
        "E5" => dispatch!(e05),
        "E6" => dispatch!(e06),
        "E7" => dispatch!(e07),
        "E8" => dispatch!(e08),
        "E9" => dispatch!(e09),
        "E10" => dispatch!(e10, no_seed),
        "E11" => dispatch!(e11),
        "E12" => dispatch!(e12),
        "E13" => dispatch!(e13),
        "E14" => dispatch!(e14),
        "E15" => dispatch!(e15),
        "E16" => dispatch!(e16),
        "E17" => dispatch!(e17),
        "E18" => dispatch!(e18),
        "E19" => dispatch!(e19),
        _ => return None,
    })
}

/// Runs every experiment in order.
pub fn run_all(quick: bool) -> Vec<ExperimentReport> {
    ALL.iter()
        .map(|id| run_by_id(id, quick).expect("known id"))
        .collect()
}

/// Runs the given experiments across `jobs` worker threads and collects
/// a [`RunReport`].
///
/// Each experiment builds its own `Simulation`s from its own config, so
/// experiments share no mutable state and the fan-out cannot perturb
/// results: output order follows `ids` (not completion order) and every
/// per-experiment trace is bit-identical to a serial run. `jobs = 1`
/// *is* the serial run — same code path, same report bytes.
///
/// # Panics
///
/// Panics on an unknown id (callers validate ids against [`ALL`]
/// first) or `jobs == 0`.
pub fn run_report(ids: &[&str], quick: bool, seed: Option<u64>, jobs: usize) -> RunReport {
    assert!(jobs > 0, "jobs must be >= 1");
    for id in ids {
        assert!(ALL.contains(id), "unknown experiment id {id}");
    }
    let workers = jobs.min(ids.len()).max(1);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<ExperimentRun>> = Vec::new();
    slots.resize_with(ids.len(), || None);
    let slot_refs: Vec<std::sync::Mutex<&mut Option<ExperimentRun>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(id) = ids.get(i) else { break };
                let t0 = Instant::now();
                let report = run_seeded(id, quick, seed).expect("id validated above");
                let run = ExperimentRun {
                    report,
                    seed,
                    wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                };
                **slot_refs[i].lock().expect("slot lock") = Some(run);
            });
        }
    });

    drop(slot_refs);
    RunReport {
        mode: if quick { "quick" } else { "full" }.to_string(),
        runs: slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptions_cover_registry_in_order() {
        assert_eq!(DESCRIPTIONS.len(), ALL.len());
        for (i, (id, desc)) in DESCRIPTIONS.iter().enumerate() {
            assert_eq!(*id, ALL[i]);
            assert!(!desc.is_empty());
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("E99", true).is_none());
        assert!(run_seeded("", true, Some(1)).is_none());
    }
}
