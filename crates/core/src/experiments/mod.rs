//! One experiment per quantitative claim of the paper (see
//! [`crate::claims`] for the mapping).
//!
//! Every experiment exposes a `Config` (with `Default` = paper scale
//! and `Config::quick()` = CI scale), a `run(&Config) ->
//! ExperimentReport` entry point, and an implementation of
//! [`crate::scenario::Scenario`] on its `Config`. The scenario registry
//! ([`crate::scenario::all`]) is the single source of truth for ids and
//! descriptions; the harness entry points here add seed overrides
//! ([`run_seeded`]) and a deterministic parallel runner
//! ([`run_report`]) that fans experiments across a thread pool.

pub mod e01;
pub mod e02;
pub mod e03;
pub mod e04;
pub mod e05;
pub mod e06;
pub mod e07;
pub mod e08;
pub mod e09;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e17;
pub mod e18;
pub mod e19;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::report::{ExperimentReport, ExperimentRun, RunReport};
use crate::scenario;

/// Runs one experiment by id at quick (CI) or full (paper) scale.
///
/// Returns `None` for an unknown id.
pub fn run_by_id(id: &str, quick: bool) -> Option<ExperimentReport> {
    run_seeded(id, quick, None)
}

/// Runs one experiment by id with an optional seed override.
///
/// `seed = None` keeps the experiment's built-in config seed (the
/// reproducible default). E10 is closed-form arithmetic with no RNG, so
/// a seed override is a no-op there ([`scenario::Scenario::set_seed`]
/// returns `false`).
///
/// Returns `None` for an unknown id.
pub fn run_seeded(id: &str, quick: bool, seed: Option<u64>) -> Option<ExperimentReport> {
    run_seeded_exec(id, quick, seed, scenario::ExecPolicy::serial())
}

/// Runs one experiment by id with an optional seed override and an
/// execution policy (shard count for the windowed parallel executor).
///
/// The policy is a pure execution knob: a scenario that accepts it
/// ([`scenario::Scenario::set_exec`] returns `true`) produces the same
/// report bytes at any shard count, and scenarios that cannot shard
/// (their node types are not `Send`) silently stay serial. Either way
/// the policy never appears in report JSON.
///
/// Returns `None` for an unknown id.
pub fn run_seeded_exec(
    id: &str,
    quick: bool,
    seed: Option<u64>,
    exec: scenario::ExecPolicy,
) -> Option<ExperimentReport> {
    let mut s = scenario::build(id, quick)?;
    if let Some(seed) = seed {
        s.set_seed(seed);
    }
    if exec.shard_count() > 1 {
        s.set_exec(exec);
    }
    Some(s.run())
}

/// Runs every experiment in registry order.
pub fn run_all(quick: bool) -> Vec<ExperimentReport> {
    scenario::all(quick).iter().map(|s| s.run()).collect()
}

/// Runs the given experiments across `jobs` worker threads and collects
/// a [`RunReport`].
///
/// Each experiment builds its own `Simulation`s from its own config, so
/// experiments share no mutable state and the fan-out cannot perturb
/// results: output order follows `ids` (not completion order) and every
/// per-experiment trace is bit-identical to a serial run. `jobs = 1`
/// *is* the serial run — same code path, same report bytes.
///
/// # Panics
///
/// Panics on an unknown id (callers validate ids against
/// [`scenario::ids`] first) or `jobs == 0`.
pub fn run_report(ids: &[&str], quick: bool, seed: Option<u64>, jobs: usize) -> RunReport {
    run_report_exec(ids, quick, seed, jobs, scenario::ExecPolicy::serial())
}

/// [`run_report`] with an execution policy for each experiment's inner
/// simulations (see [`run_seeded_exec`]). Sharding composes with the
/// experiment-level fan-out: `jobs` picks how many experiments run at
/// once, `exec` picks how many worker threads each simulation uses, and
/// neither knob changes a byte of the report.
///
/// # Panics
///
/// Panics on an unknown id or `jobs == 0`, as [`run_report`].
pub fn run_report_exec(
    ids: &[&str],
    quick: bool,
    seed: Option<u64>,
    jobs: usize,
    exec: scenario::ExecPolicy,
) -> RunReport {
    assert!(jobs > 0, "jobs must be >= 1");
    for id in ids {
        assert!(
            scenario::build(id, quick).is_some(),
            "unknown experiment id {id}"
        );
    }
    let workers = jobs.min(ids.len()).max(1);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<ExperimentRun>> = Vec::new();
    slots.resize_with(ids.len(), || None);
    // decent-lint: allow(D010) reason="experiment fan-out harness: one single-writer Mutex per result slot, never touched by sim events"
    let slot_refs: Vec<std::sync::Mutex<&mut Option<ExperimentRun>>> =
        // decent-lint: allow(D010) reason="see above: the constructor line of the same single-writer slot vector"
        slots.iter_mut().map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // decent-lint: allow(D007) reason="work-stealing cursor: claim order cannot affect results, which are written by input index"
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(id) = ids.get(i) else { break };
                // decent-lint: allow(D002) reason="harness-only wall_ms measurement; excluded from the canonical report JSON (tests/run_report.rs pins this)"
                let t0 = Instant::now();
                let report = run_seeded_exec(id, quick, seed, exec).expect("id validated above");
                let run = ExperimentRun {
                    report,
                    seed,
                    wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                };
                **slot_refs[i].lock().expect("slot lock") = Some(run);
            });
        }
    });

    drop(slot_refs);
    RunReport {
        mode: if quick { "quick" } else { "full" }.to_string(),
        runs: slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("E99", true).is_none());
        assert!(run_seeded("", true, Some(1)).is_none());
    }

    #[test]
    fn run_by_id_matches_registry_run() {
        let direct = run_by_id("E10", true).expect("known id");
        let via_registry = scenario::build("E10", true).expect("known id").run();
        assert_eq!(format!("{direct}"), format!("{via_registry}"));
    }
}
