//! One experiment per quantitative claim of the paper (see
//! [`crate::claims`] for the mapping).
//!
//! Every experiment exposes a `Config` (with `Default` = paper scale
//! and `Config::quick()` = CI scale) and a `run(&Config) ->
//! ExperimentReport` entry point.

pub mod e01;
pub mod e02;
pub mod e03;
pub mod e04;
pub mod e05;
pub mod e06;
pub mod e07;
pub mod e08;
pub mod e09;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e17;
pub mod e18;

use crate::report::ExperimentReport;

/// Experiment ids in order. E1-E15 reproduce the paper's explicit
/// quantitative claims; E16-E18 cover the secondary claims it makes in
/// passing (nothing-at-stake, layer-2 centralization, dapp congestion).
pub const ALL: [&str; 18] = [
    "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14",
    "E15", "E16", "E17", "E18",
];

/// Runs one experiment by id at quick (CI) or full (paper) scale.
///
/// Returns `None` for an unknown id.
pub fn run_by_id(id: &str, quick: bool) -> Option<ExperimentReport> {
    macro_rules! dispatch {
        ($m:ident) => {
            if quick {
                $m::run(&$m::Config::quick())
            } else {
                $m::run(&$m::Config::default())
            }
        };
    }
    Some(match id {
        "E1" => dispatch!(e01),
        "E2" => dispatch!(e02),
        "E3" => dispatch!(e03),
        "E4" => dispatch!(e04),
        "E5" => dispatch!(e05),
        "E6" => dispatch!(e06),
        "E7" => dispatch!(e07),
        "E8" => dispatch!(e08),
        "E9" => dispatch!(e09),
        "E10" => dispatch!(e10),
        "E11" => dispatch!(e11),
        "E12" => dispatch!(e12),
        "E13" => dispatch!(e13),
        "E14" => dispatch!(e14),
        "E15" => dispatch!(e15),
        "E16" => dispatch!(e16),
        "E17" => dispatch!(e17),
        "E18" => dispatch!(e18),
        _ => return None,
    })
}

/// Runs every experiment in order.
pub fn run_all(quick: bool) -> Vec<ExperimentReport> {
    ALL.iter()
        .map(|id| run_by_id(id, quick).expect("known id"))
        .collect()
}
