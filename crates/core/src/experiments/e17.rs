//! E17 — Layer-2 payment channels: performance through centralization.
//!
//! Paper (III-C Problem 2): "many of the new and existing networks are
//! proposing more centralized designs to increase the overall
//! performance. The so-called layer 2 or off-chain solutions like
//! Lightning network (Bitcoin), Plasma (Ethereum) or EOS follow this
//! trend. In these cases, transactions are processed by a much smaller
//! set of peers (outside the core network) to increase performance."

use decent_chain::channels::{run_workload, Topology};
use decent_sim::report::{fmt_f, fmt_pct, fmt_si};

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Layer-2 channels: throughput through centralization (III-C P2)";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Participants in the channel network.
    pub participants: usize,
    /// Payments attempted.
    pub payments: u64,
    /// Channel funding per side.
    pub funding: f64,
    /// Payment amount.
    pub amount: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            participants: 500,
            payments: 50_000,
            funding: 200.0,
            amount: 1.0,
            seed: 0xE17,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            participants: 150,
            payments: 8_000,
            ..Config::default()
        }
    }
}

/// Sweepable knobs.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "participants",
        help: "participants in the channel network (min 20)",
        get: |c| c.participants as f64,
        set: |c, v| c.participants = v.round().max(20.0) as usize,
    },
    Param {
        name: "payments",
        help: "payments attempted (min 500)",
        get: |c| c.payments as f64,
        set: |c, v| c.payments = v.round().max(500.0) as u64,
    },
    Param {
        name: "funding",
        help: "channel funding per side (min 1)",
        get: |c| c.funding,
        set: |c, v| c.funding = v.max(1.0),
    },
    Param {
        name: "amount",
        help: "payment amount (min 0.01)",
        get: |c| c.amount,
        set: |c, v| c.amount = v.max(0.01),
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E17"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, _exec: scenario::ExecPolicy) -> bool {
        // Round-based payment-channel workload — there is no discrete-event loop to
        // shard, so any shard count yields identical output trivially.
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

/// Runs E17 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E17", TITLE);
    let mut t = Table::new(
        "Channel-network workload (same payments, two topologies)",
        &[
            "topology",
            "on-chain txs",
            "off-chain payments",
            "amplification",
            "success rate",
            "top-5 hub share of routing",
            "routing gini",
        ],
    );
    let mut rows = Vec::new();
    for (name, topology) in [
        ("hub-and-spoke (5 hubs)", Topology::HubAndSpoke { hubs: 5 }),
        (
            "random egalitarian (4 ch/peer)",
            Topology::Random { channels_each: 4 },
        ),
    ] {
        let net = run_workload(
            cfg.participants,
            topology,
            cfg.funding,
            cfg.payments,
            cfg.amount,
            cfg.seed,
        );
        let success =
            net.payments_ok as f64 / (net.payments_ok + net.payments_failed).max(1) as f64;
        t.row([
            name.to_string(),
            net.onchain_txs.to_string(),
            fmt_si(net.payments_ok as f64),
            format!("{}x", fmt_f(net.amplification())),
            fmt_pct(success),
            fmt_pct(net.hub_share(5)),
            fmt_f(net.routing_gini()),
        ]);
        rows.push((net.amplification(), success, net.hub_share(5)));
    }
    report.table(t);

    let (hub_amp, hub_ok, hub_share) = rows[0];
    let (_flat_amp, flat_ok, flat_share) = rows[1];
    report.check(
        "E17.offchain-amplification",
        "off-chain processing multiplies throughput",
        "layer-2 increases performance by taking txs off the core network",
        format!("{}x payments per on-chain transaction", fmt_f(hub_amp)),
        hub_amp,
        Expect::MoreThan(20.0),
    );
    report.check(
        "E17.hub-concentration",
        "the price is a much smaller set of peers",
        "transactions are processed by a much smaller set of peers",
        format!(
            "5 hubs ({} of participants) forward {} of all payments",
            fmt_pct(5.0 / cfg.participants as f64),
            fmt_pct(hub_share)
        ),
        hub_share,
        Expect::MoreThan(0.9),
    );
    report.check_with(
        "E17.hub-efficiency",
        "hub topologies use the scarce on-chain capacity better",
        "(why users flock to hubs: fewer channels, same reach)",
        format!(
            "amplification {}x via hubs vs {}x on the egalitarian graph \
             (success {} vs {}, hub share {} vs {})",
            fmt_f(hub_amp),
            fmt_f(_flat_amp),
            fmt_pct(hub_ok),
            fmt_pct(flat_ok),
            fmt_pct(hub_share),
            fmt_pct(flat_share)
        ),
        hub_amp,
        Expect::MoreThan(2.0 * _flat_amp),
        hub_ok >= flat_ok - 0.02,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_layer2_tradeoff() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
