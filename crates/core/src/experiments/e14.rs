//! E14 — Forks are ephemeral; difficulty holds the block interval.
//!
//! Paper (III-A): "the blockchain may occasionally fork ... such
//! ephemeral forks quickly disappear" and "the difficulty target is
//! periodically adjusted in such a way that a new block is generated
//! every 10 minutes."

use decent_chain::node::{
    build_network, report as chain_report, ChainNode, ChainNodeConfig, NetworkConfig,
};
use decent_chain::pow::PowParams;
use decent_sim::prelude::*;

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Fork rate vs. block interval; difficulty retargeting (III-A)";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Network size.
    pub nodes: usize,
    /// Block intervals (seconds) to sweep for the fork-rate series.
    pub intervals_secs: Vec<f64>,
    /// Blocks to observe per interval level.
    pub blocks_per_level: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution shards per simulation (1 = serial). Not a sweepable
    /// parameter and absent from reports: sharding never changes
    /// results, so it must never appear in canonical output.
    pub shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            nodes: 80,
            intervals_secs: vec![5.0, 30.0, 120.0, 600.0],
            blocks_per_level: 250,
            seed: 0xE14,
            shards: 1,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            nodes: 40,
            intervals_secs: vec![5.0, 120.0, 600.0],
            blocks_per_level: 120,
            ..Config::default()
        }
    }
}

/// Sweepable knobs. `fastest_interval` moves the shortest block interval
/// in the series — the one the fork-rate claim keys on.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "nodes",
        help: "network size (min 8)",
        get: |c| c.nodes as f64,
        set: |c, v| c.nodes = v.round().max(8.0) as usize,
    },
    Param {
        name: "fastest_interval",
        help: "shortest target block interval swept, seconds (min 1)",
        get: |c| c.intervals_secs[0],
        set: |c, v| c.intervals_secs[0] = v.max(1.0),
    },
    Param {
        name: "blocks_per_level",
        help: "blocks observed per interval level (min 30)",
        get: |c| c.blocks_per_level as f64,
        set: |c, v| c.blocks_per_level = v.round().max(30.0) as u64,
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E14"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, exec: scenario::ExecPolicy) -> bool {
        self.shards = exec.shard_count();
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

fn run_level(cfg: &Config, interval: f64, seed: u64) -> (f64, f64, MetricsSnapshot) {
    let mut rng = rng_from_seed(seed);
    let net = RegionNet::sampled(cfg.nodes, &Region::BITCOIN_2019_DISTRIBUTION, &mut rng);
    let mut sim = Simulation::new(seed ^ 1, net);
    sim.set_shards(cfg.shards);
    let ncfg = NetworkConfig {
        nodes: cfg.nodes,
        miner_fraction: 0.3,
        node: ChainNodeConfig {
            params: PowParams {
                target_interval: SimDuration::from_secs(interval),
                ..PowParams::bitcoin()
            },
            tx_rate: 20.0,
            ..ChainNodeConfig::default()
        },
        ..NetworkConfig::default()
    };
    let ids = build_network(&mut sim, &ncfg, seed ^ 2);
    sim.run_until(SimTime::from_secs(interval * cfg.blocks_per_level as f64));
    let r = chain_report(&sim, ids[cfg.nodes - 1]);
    (r.stale_rate, r.mean_interval_secs, sim.metrics_snapshot())
}

/// Measures retarget convergence: the network starts with a difficulty
/// set for half its actual hashrate; returns mean block interval in the
/// first and in the last retarget window.
fn run_retarget(cfg: &Config, seed: u64) -> (f64, f64, f64, MetricsSnapshot) {
    let window = 72u64;
    let target = 120.0;
    // Build the network by hand so the genesis difficulty can be set
    // for *half* the real hashrate (the 2x surprise).
    let mut sim: Simulation<ChainNode> =
        Simulation::new(seed ^ 9, ConstantLatency::from_millis(100.0));
    sim.set_shards(cfg.shards);
    let genesis = decent_chain::block::Block::genesis(0.0);
    let graph = Graph::random_outbound(30, 6, &mut rng_from_seed(seed ^ 4));
    let params = PowParams {
        target_interval: SimDuration::from_secs(target),
        retarget_window: window,
        ..PowParams::bitcoin()
    };
    let wrong_difficulty = params.difficulty_for(1e6); // half the real power
    let ids: Vec<NodeId> = (0..30)
        .map(|i| {
            let node_cfg = ChainNodeConfig {
                params: params.clone(),
                hashrate: if i < 15 { 2e6 / 15.0 } else { 0.0 },
                initial_difficulty: wrong_difficulty,
                tx_rate: 5.0,
                ..ChainNodeConfig::default()
            };
            sim.add_node(ChainNode::new(
                node_cfg,
                graph.neighbors(i).to_vec(),
                genesis.clone(),
            ))
        })
        .collect();
    sim.run_until(SimTime::from_secs(target * 8.0 * window as f64));
    let view = &sim.node(ids[29]).view;
    let chain = view.best_chain();
    let mut mined: Vec<SimTime> = chain.iter().rev().skip(1).map(|b| b.mined_at).collect();
    mined.sort();
    let window = window as usize;
    let mean_between = |xs: &[SimTime]| -> f64 {
        if xs.len() < 2 {
            return 0.0;
        }
        (xs[xs.len() - 1].as_secs() - xs[0].as_secs()) / (xs.len() - 1) as f64
    };
    let first = mean_between(&mined[..window.min(mined.len())]);
    // Retargeting overshoots then damps; judge convergence over the
    // last two windows.
    let tail_start = mined.len().saturating_sub(2 * window);
    let last = mean_between(&mined[tail_start..]);
    (first, last, target, sim.metrics_snapshot())
}

/// Runs E14 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E14", TITLE);
    let mut t = Table::new(
        "Stale-block rate vs. target interval (planet-scale propagation)",
        &["target interval (s)", "measured interval (s)", "stale rate"],
    );
    let mut stales = Vec::new();
    for (i, &interval) in cfg.intervals_secs.iter().enumerate() {
        let (stale, mean, metrics) = run_level(cfg, interval, cfg.seed ^ ((i as u64 + 1) << 8));
        report.absorb_metrics(metrics);
        t.row([fmt_f(interval), fmt_f(mean), fmt_pct(stale)]);
        stales.push(stale);
    }
    report.table(t);

    let (first, last, target, retarget_metrics) = run_retarget(cfg, cfg.seed ^ 0xADA);
    report.absorb_metrics(retarget_metrics);
    let mut t2 = Table::new(
        "Retarget convergence after a 2x hashrate surprise",
        &["window", "mean interval (s)", "target (s)"],
    );
    t2.row(["first".to_string(), fmt_f(first), fmt_f(target)]);
    t2.row(["after retargets".to_string(), fmt_f(last), fmt_f(target)]);
    report.table(t2);

    report.check_with(
        "E14.fork-vs-interval",
        "forks grow as the interval shrinks toward propagation delay",
        "forks are occasional at 10-minute blocks (and would dominate otherwise)",
        format!(
            "stale rate {} at {}s vs {} at {}s",
            fmt_pct(stales[0]),
            cfg.intervals_secs[0],
            fmt_pct(*stales.last().expect("levels")),
            cfg.intervals_secs.last().expect("levels")
        ),
        stales[0],
        Expect::MoreThan(3.0 * stales.last().expect("levels")),
        *stales.last().unwrap() < 0.05,
    );
    report.check_with(
        "E14.retarget-converges",
        "retargeting restores the target interval",
        "difficulty is adjusted so a block appears every 10 minutes",
        format!(
            "first window {}s (fast), settled to {}s (target {}s)",
            fmt_f(first),
            fmt_f(last),
            fmt_f(target)
        ),
        first,
        Expect::LessThan(0.8 * target),
        (last - target).abs() < 0.3 * target,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_fork_behaviour() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
