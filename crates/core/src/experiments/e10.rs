//! E10 — Bitcoin's energy consumption.
//!
//! Paper (III-B, citing The Economist \[28\]): "the Bitcoin energy
//! consumption peaked at 70 TWh in 2018, which is roughly what a
//! country like Austria consumes."

use decent_chain::economics::network_energy_twh_per_year;
use decent_sim::report::{fmt_f, fmt_si};

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Bitcoin energy consumption (III-B)";

/// Austria's annual electricity consumption, TWh (c. 2018).
pub const AUSTRIA_TWH: f64 = 70.0;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Network hashrates to tabulate (hashes/s).
    pub hashrates: Vec<f64>,
    /// Fleet mix as `(share, J/GH)` rows.
    pub fleet: Vec<(f64, f64)>,
    /// Bitcoin's sustained transaction rate (for per-tx energy).
    pub tps: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            // 2016 -> peak-2018 hashrate trajectory.
            hashrates: vec![1.5e18, 10e18, 40e18, 60e18],
            // 2018 fleet: a majority of S9-class units (0.098 J/GH),
            // the rest older hardware, plus datacenter overhead folded
            // into the J/GH figures.
            fleet: vec![(0.6, 0.098), (0.4, 0.25)],
            tps: 3.5,
        }
    }
}

impl Config {
    /// A CI-sized configuration (identical — this experiment is cheap).
    pub fn quick() -> Self {
        Config::default()
    }
}

/// Sweepable knobs.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "tps",
        help: "sustained transaction rate used for per-tx energy (min 0.1)",
        get: |c| c.tps,
        set: |c, v| c.tps = v.max(0.1),
    },
    Param {
        name: "peak_hashrate",
        help: "peak network hashrate tabulated, hashes/s (min 1e15)",
        get: |c| *c.hashrates.last().expect("at least one hashrate"),
        set: |c, v| *c.hashrates.last_mut().expect("at least one hashrate") = v.max(1e15),
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E10"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    /// E10 is closed-form arithmetic over the fleet mix — there is no
    /// RNG, so there is no seed to report.
    fn seed(&self) -> Option<u64> {
        None
    }
    /// Returns `false`: a seed override is a no-op here, and the
    /// registry surfaces that (e.g. in `repro --list`) instead of
    /// silently accepting it.
    fn set_seed(&mut self, _seed: u64) -> bool {
        false
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, _exec: scenario::ExecPolicy) -> bool {
        // Closed-form energy arithmetic — there is no discrete-event loop to
        // shard, so any shard count yields identical output trivially.
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

/// Runs E10 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E10", TITLE);
    let mut t = Table::new(
        "Annualized network energy vs. hashrate",
        &[
            "hashrate (H/s)",
            "TWh/yr",
            "vs. Austria",
            "kWh per transaction",
        ],
    );
    let mut peak = 0.0;
    for &h in &cfg.hashrates {
        let twh = network_energy_twh_per_year(h, &cfg.fleet);
        peak = twh;
        let per_tx = twh * 1e9 / (cfg.tps * 365.25 * 86_400.0);
        t.row([
            fmt_si(h),
            fmt_f(twh),
            format!("{}x", fmt_f(twh / AUSTRIA_TWH)),
            fmt_f(per_tx),
        ]);
    }
    report.table(t);

    let per_tx_peak = peak * 1e9 / (cfg.tps * 365.25 * 86_400.0);
    report.check(
        "E10.austria-scale",
        "peak consumption is country-scale",
        "energy consumption peaked at ~70 TWh in 2018 (≈ Austria)",
        format!(
            "{} TWh/yr at peak hashrate ({}x Austria)",
            fmt_f(peak),
            fmt_f(peak / AUSTRIA_TWH)
        ),
        peak / AUSTRIA_TWH,
        Expect::Within { lo: 0.4, hi: 2.0 },
    );
    report.check(
        "E10.per-tx-energy",
        "per-transaction energy is absurd for a payment rail",
        "(implied by 70 TWh/yr at < 7 tx/s)",
        format!("{} kWh per transaction", fmt_f(per_tx_peak)),
        per_tx_peak,
        Expect::MoreThan(100.0),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_energy_scale() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
