//! E8 — Mining centralization and the death of desktop mining.
//!
//! Paper (III-C Problem 1): "In 2013 six mining pools controlled 75% of
//! overall Bitcoin hashing power. Nowadays it is almost impossible for
//! a normal user to mine bitcoins with a normal desktop computer."

use decent_chain::economics::{form_pools, Market, MarketConfig};
use decent_sim::metrics::top_k_share;
use decent_sim::report::{fmt_f, fmt_pct, fmt_si};

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Mining centralization: pools, farms, and dead desktops (III-C P1)";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Market configuration (months, populations, price path).
    pub market: MarketConfig,
    /// Pools available for miners to join.
    pub pools: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            market: MarketConfig::default(),
            pools: 20,
            seed: 0xE8,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            market: MarketConfig {
                months: 48,
                hobbyists: 800,
                ..MarketConfig::default()
            },
            ..Config::default()
        }
    }
}

/// Sweepable knobs (reaching through to the market model).
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "pools",
        help: "pools available for miners to join (min 2)",
        get: |c| c.pools as f64,
        set: |c, v| c.pools = v.round().max(2.0) as usize,
    },
    Param {
        name: "months",
        help: "months of market evolution simulated (min 12)",
        get: |c| c.market.months as f64,
        set: |c, v| c.market.months = v.round().max(12.0) as usize,
    },
    Param {
        name: "hobbyists",
        help: "desktop miners at month 0 (min 10)",
        get: |c| c.market.hobbyists as f64,
        set: |c, v| c.market.hobbyists = v.round().max(10.0) as usize,
    },
    Param {
        name: "price_growth",
        help: "monthly BTC price growth factor (0.9-1.2)",
        get: |c| c.market.price_growth,
        set: |c, v| c.market.price_growth = v.clamp(0.9, 1.2),
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E8"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, _exec: scenario::ExecPolicy) -> bool {
        // Monte Carlo market evolution — there is no discrete-event loop to
        // shard, so any shard count yields identical output trivially.
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

/// Runs E8 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E8", TITLE);
    let mut market = Market::new(cfg.market.clone(), cfg.seed);
    let snaps = market.run();
    let mut t = Table::new(
        "Mining market over time",
        &[
            "month",
            "BTC price ($)",
            "hashrate (GH/s)",
            "farm top-6 share",
            "gini",
            "profitable hobbyists",
            "energy (TWh/yr)",
        ],
    );
    for s in snaps.iter().filter(|s| s.month % 6 == 0 || s.month == 1) {
        t.row([
            s.month.to_string(),
            fmt_f(s.price),
            fmt_si(s.total_hashrate_ghs),
            fmt_pct(s.top6_share),
            fmt_f(s.gini),
            s.profitable_hobbyists.to_string(),
            fmt_f(s.energy_twh_per_year),
        ]);
    }
    report.table(t);

    // Pool formation on top of the evolved farm distribution.
    let rates: Vec<f64> = market.active().map(|m| m.hashrate_ghs).collect();
    let pools = form_pools(&rates, cfg.pools, 30, 0.2, cfg.seed ^ 0x99);
    let pool6 = top_k_share(&pools, 6);
    let mut t2 = Table::new(
        "Pool shares after variance-seeking pooling",
        &["pool", "share"],
    );
    let mut sorted = pools.clone();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let total: f64 = sorted.iter().sum();
    for (i, p) in sorted.iter().take(8).enumerate() {
        t2.row([format!("#{}", i + 1), fmt_pct(p / total)]);
    }
    report.table(t2);

    let first = &snaps[0];
    let last = snaps.last().expect("months > 0");
    report.check(
        "E8.pool-dominance",
        "six pools dominate",
        "in 2013 six pools controlled 75% of hashing power",
        format!("top-6 pools hold {}", fmt_pct(pool6)),
        pool6,
        Expect::MoreThan(0.6),
    );
    report.check(
        "E8.desktop-death",
        "desktop mining dies",
        "almost impossible to mine with a normal desktop computer",
        format!(
            "profitable hobbyists: {} -> {} of {}",
            first.profitable_hobbyists, last.profitable_hobbyists, cfg.market.hobbyists
        ),
        last.profitable_hobbyists as f64,
        Expect::LessThan(0.05 * cfg.market.hobbyists as f64),
    );
    // Note: end-of-run gini is not a robust concentration measure here —
    // it swings with the price path (a boom pulls in many similar-sized
    // young farms, which *lowers* gini even as the giants grow). The top-6
    // farm share rises monotonically on every stream, so that is the check.
    report.check_with(
        "E8.industrial-capital",
        "incentives attract industrial capital",
        "huge commercial BitFarms with specialized hardware emerged",
        format!(
            "hashrate grew {}x; top-6 farm share {} -> {}",
            fmt_f(last.total_hashrate_ghs / first.total_hashrate_ghs.max(1e-9)),
            fmt_pct(first.top6_share),
            fmt_pct(last.top6_share)
        ),
        last.total_hashrate_ghs,
        Expect::MoreThan(10.0 * first.total_hashrate_ghs),
        last.top6_share > first.top6_share + 0.1,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_centralization() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
