//! E7 — Transaction throughput: VISA vs. Bitcoin vs. Ethereum.
//!
//! Paper (III-C Problem 2): "While VISA is processing 24,000
//! transactions per second, Bitcoin can process between 3.3 and 7
//! transactions per second, and Ethereum around 15 per second. ...
//! VISA can rely on a smaller pool of cloud servers that partition
//! traffic and handle tons of transactions per second."
//!
//! Bitcoin and Ethereum are simulated on the planet-scale relay
//! network; VISA is simulated as what the paper says it is — a
//! shared-nothing partitioned cluster of stable servers.

use decent_chain::node::{build_network, report as chain_report, ChainNodeConfig, NetworkConfig};
use decent_chain::pow::PowParams;
use decent_sim::prelude::*;

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Throughput: VISA vs. Bitcoin vs. Ethereum (III-C P2)";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Nodes in each blockchain network.
    pub chain_nodes: usize,
    /// Simulated hours for the Bitcoin-like run.
    pub bitcoin_hours: f64,
    /// Simulated minutes for the Ethereum-like run.
    pub ethereum_mins: f64,
    /// OLTP shards in the "VISA" cluster.
    pub oltp_shards: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution shards per simulation (1 = serial). Not a sweepable
    /// parameter and absent from reports: sharding never changes
    /// results, so it must never appear in canonical output.
    pub shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            chain_nodes: 120,
            bitcoin_hours: 24.0,
            ethereum_mins: 90.0,
            oltp_shards: 64,
            seed: 0xE7,
            shards: 1,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            chain_nodes: 50,
            bitcoin_hours: 8.0,
            ethereum_mins: 30.0,
            oltp_shards: 32,
            ..Config::default()
        }
    }
}

/// Sweepable knobs.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "chain_nodes",
        help: "nodes in each blockchain network (min 8)",
        get: |c| c.chain_nodes as f64,
        set: |c, v| c.chain_nodes = v.round().max(8.0) as usize,
    },
    Param {
        name: "bitcoin_hours",
        help: "simulated hours for the Bitcoin-like run (min 1)",
        get: |c| c.bitcoin_hours,
        set: |c, v| c.bitcoin_hours = v.max(1.0),
    },
    Param {
        name: "ethereum_mins",
        help: "simulated minutes for the Ethereum-like run (min 5)",
        get: |c| c.ethereum_mins,
        set: |c, v| c.ethereum_mins = v.max(5.0),
    },
    Param {
        name: "oltp_shards",
        help: "OLTP shards in the VISA cluster (min 1)",
        get: |c| c.oltp_shards as f64,
        set: |c, v| c.oltp_shards = v.round().max(1.0) as usize,
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E7"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, exec: scenario::ExecPolicy) -> bool {
        self.shards = exec.shard_count();
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

fn run_chain(
    cfg: &Config,
    params: PowParams,
    max_block_txs: u32,
    horizon: SimDuration,
    seed: u64,
) -> (f64, f64, MetricsSnapshot) {
    let mut rng = rng_from_seed(seed);
    let net = RegionNet::sampled(
        cfg.chain_nodes,
        &Region::BITCOIN_2019_DISTRIBUTION,
        &mut rng,
    );
    let mut sim = Simulation::new(seed ^ 7, net);
    sim.set_shards(cfg.shards);
    let ncfg = NetworkConfig {
        nodes: cfg.chain_nodes,
        miner_fraction: 0.25,
        total_hashrate: 1e6,
        node: ChainNodeConfig {
            params,
            max_block_txs,
            tx_rate: 1000.0, // offered load far above capacity
            ..ChainNodeConfig::default()
        },
        ..NetworkConfig::default()
    };
    let ids = build_network(&mut sim, &ncfg, seed ^ 8);
    sim.run_until(SimTime::ZERO + horizon);
    let r = chain_report(&sim, ids[cfg.chain_nodes - 1]);
    (r.tps, r.stale_rate, sim.metrics_snapshot())
}

/// A shard in the partitioned OLTP cluster (the "VISA" model).
#[derive(Debug, Default)]
struct OltpShard {
    busy_until: SimTime,
    served: u64,
}

impl Node for OltpShard {
    type Msg = u32; // a transaction of ~x hundred bytes

    fn on_message(&mut self, _from: NodeId, _msg: u32, ctx: &mut Context<'_, u32>) {
        // 2.5 ms of CPU per transaction, FIFO.
        let start = self.busy_until.max(ctx.now());
        self.busy_until = start + SimDuration::from_micros(2500.0);
        self.served += 1;
    }
}

/// Simulates the partitioned cluster at saturation and returns TPS.
fn run_oltp(cfg: &Config, horizon: SimDuration, seed: u64) -> (f64, MetricsSnapshot) {
    let mut sim: Simulation<OltpShard> = Simulation::new(seed, ConstantLatency::from_millis(0.5));
    sim.set_shards(cfg.shards);
    let shards: Vec<NodeId> = (0..cfg.oltp_shards)
        .map(|_| sim.add_node(OltpShard::default()))
        .collect();
    // Saturating open load, hash-partitioned across shards.
    let per_shard_capacity = 400.0; // 1 / 2.5ms
    let offered = per_shard_capacity * cfg.oltp_shards as f64 * 1.5;
    let total = (offered * horizon.as_secs()) as u64;
    for i in 0..total {
        let shard = shards[(i % cfg.oltp_shards as u64) as usize];
        let when = SimDuration::from_secs(i as f64 / offered);
        sim.inject(shard, 1, when);
    }
    sim.run_until(SimTime::ZERO + horizon);
    let served: u64 = shards.iter().map(|&s| sim.node(s).served).sum();
    (served as f64 / horizon.as_secs(), sim.metrics_snapshot())
}

/// Runs E7 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E7", TITLE);
    let (btc_tps, btc_stale, btc_metrics) = run_chain(
        cfg,
        PowParams::bitcoin(),
        2000,
        SimDuration::from_hours(cfg.bitcoin_hours),
        cfg.seed ^ 0x100,
    );
    let (eth_tps, eth_stale, eth_metrics) = run_chain(
        cfg,
        PowParams::ethereum(),
        200, // ~gas-limited block of ~200 txs every 13 s
        SimDuration::from_mins(cfg.ethereum_mins),
        cfg.seed ^ 0x200,
    );
    let (visa_tps, visa_metrics) = run_oltp(cfg, SimDuration::from_secs(30.0), cfg.seed ^ 0x300);
    report.absorb_metrics(btc_metrics);
    report.absorb_metrics(eth_metrics);
    report.absorb_metrics(visa_metrics);

    let mut t = Table::new(
        "Sustained transaction throughput",
        &["system", "architecture", "tx/s", "stale blocks"],
    );
    t.row([
        "Bitcoin (sim)".to_string(),
        "global broadcast + PoW, 1 MB / 600 s".to_string(),
        fmt_f(btc_tps),
        fmt_pct(btc_stale),
    ]);
    t.row([
        "Ethereum-like (sim)".to_string(),
        "global broadcast + PoW, gas-limited / 13 s".to_string(),
        fmt_f(eth_tps),
        fmt_pct(eth_stale),
    ]);
    t.row([
        format!("VISA-like (sim, {} shards)", cfg.oltp_shards),
        "shared-nothing partitioned cloud".to_string(),
        fmt_si(visa_tps),
        "n/a".to_string(),
    ]);
    t.row([
        "paper's figures".to_string(),
        "—".to_string(),
        "3.3-7 / ~15 / 24k".to_string(),
        "—".to_string(),
    ]);
    report.table(t);

    report.check(
        "E7.btc-band",
        "Bitcoin lands in the 3.3-7 tx/s band",
        "Bitcoin can process between 3.3 and 7 tx/s",
        format!("{} tx/s", fmt_f(btc_tps)),
        btc_tps,
        Expect::Within { lo: 2.5, hi: 8.0 },
    );
    report.check(
        "E7.eth-band",
        "Ethereum lands around 15 tx/s",
        "Ethereum processes around 15 tx/s",
        format!("{} tx/s", fmt_f(eth_tps)),
        eth_tps,
        Expect::Within { lo: 8.0, hi: 25.0 },
    );
    report.check(
        "E7.visa-gap",
        "partitioned cloud is three orders of magnitude faster",
        "VISA processes 24,000 tx/s on partitioned stable servers",
        format!(
            "{} tx/s, {}x Bitcoin",
            fmt_si(visa_tps),
            fmt_si(visa_tps / btc_tps.max(0.1))
        ),
        visa_tps,
        Expect::MoreThan(1000.0 * btc_tps),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_throughput_gap() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
