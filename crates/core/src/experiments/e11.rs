//! E11 — The scalability trilemma.
//!
//! Paper (III-C Problem 2, citing Buterin \[31\]): "a blockchain
//! technology can only address two of the three challenges:
//! scalability, decentralization, and security."
//!
//! We measure four design points with the same machinery used
//! elsewhere in the laboratory and score each on the three axes:
//! throughput (tx/s), decentralization (validators, open membership),
//! and security (fraction of total network resources an attacker must
//! control).

use decent_bft::pbft::{saturation_run, PbftConfig};
use decent_chain::node::{build_network, report as chain_report, ChainNodeConfig, NetworkConfig};
use decent_chain::pow::PowParams;
use decent_sim::prelude::*;

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "The scalability trilemma (III-C P2, [31])";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Nodes in the permissionless base chain.
    pub chain_nodes: usize,
    /// Simulated hours for the base chain.
    pub chain_hours: f64,
    /// Shard counts for the sharded variant.
    pub shards: usize,
    /// Committee size for the permissioned variant.
    pub committee: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution shards per simulation (1 = serial; distinct from the
    /// protocol-level `shards` knob above). Not a sweepable parameter
    /// and absent from reports: execution sharding never changes
    /// results, so it must never appear in canonical output.
    pub exec_shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            chain_nodes: 100,
            chain_hours: 12.0,
            shards: 16,
            committee: 16,
            seed: 0xE11,
            exec_shards: 1,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            chain_nodes: 40,
            chain_hours: 6.0,
            ..Config::default()
        }
    }
}

/// Sweepable knobs.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "chain_nodes",
        help: "nodes in the permissionless base chain (min 8)",
        get: |c| c.chain_nodes as f64,
        set: |c, v| c.chain_nodes = v.round().max(8.0) as usize,
    },
    Param {
        name: "chain_hours",
        help: "simulated hours for the base chain (min 1)",
        get: |c| c.chain_hours,
        set: |c, v| c.chain_hours = v.max(1.0),
    },
    Param {
        name: "shards",
        help: "shard count for the sharded variant (min 2)",
        get: |c| c.shards as f64,
        set: |c, v| c.shards = v.round().max(2.0) as usize,
    },
    Param {
        name: "committee",
        help: "committee size for the permissioned variant (min 4)",
        get: |c| c.committee as f64,
        set: |c, v| c.committee = v.round().max(4.0) as usize,
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E11"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, exec: scenario::ExecPolicy) -> bool {
        self.exec_shards = exec.shard_count();
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

struct DesignPoint {
    name: String,
    tps: f64,
    validators: usize,
    open: bool,
    /// Fraction of *total system* resources an attacker needs.
    attack_fraction: f64,
}

/// Runs E11 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E11", TITLE);

    // Base permissionless chain.
    let mut rng = rng_from_seed(cfg.seed);
    let net = RegionNet::sampled(
        cfg.chain_nodes,
        &Region::BITCOIN_2019_DISTRIBUTION,
        &mut rng,
    );
    let mut sim = Simulation::new(cfg.seed ^ 1, net);
    sim.set_shards(cfg.exec_shards);
    let ncfg = NetworkConfig {
        nodes: cfg.chain_nodes,
        miner_fraction: 0.25,
        node: ChainNodeConfig {
            params: PowParams::bitcoin(),
            tx_rate: 1000.0,
            ..ChainNodeConfig::default()
        },
        ..NetworkConfig::default()
    };
    let ids = build_network(&mut sim, &ncfg, cfg.seed ^ 2);
    sim.run_until(SimTime::from_hours(cfg.chain_hours));
    let base = chain_report(&sim, ids[cfg.chain_nodes - 1]);
    report.absorb_metrics(sim.metrics_snapshot());

    // Permissioned committee.
    let (pbft_tps, _lat) = saturation_run(
        &PbftConfig {
            n: cfg.committee,
            ..PbftConfig::default()
        },
        400_000 / cfg.committee as u64,
        SimDuration::from_secs(2.0),
        cfg.seed ^ 3,
    );
    // Delegated / layer-2 style: 21 validators, measured the same way.
    let (dpos_tps, _lat21) = saturation_run(
        &PbftConfig {
            n: 21,
            ..PbftConfig::default()
        },
        400_000 / 21,
        SimDuration::from_secs(2.0),
        cfg.seed ^ 4,
    );

    let points = vec![
        DesignPoint {
            name: "permissionless PoW (Bitcoin-like)".to_string(),
            tps: base.tps,
            validators: cfg.chain_nodes,
            open: true,
            attack_fraction: 0.5,
        },
        DesignPoint {
            name: format!("sharded permissionless ({} shards)", cfg.shards),
            tps: base.tps * cfg.shards as f64,
            validators: cfg.chain_nodes,
            open: true,
            // One shard holds 1/k of the power; controlling 51% of a
            // single shard corrupts that shard's transactions.
            attack_fraction: 0.5 / cfg.shards as f64,
        },
        DesignPoint {
            name: format!("permissioned BFT committee (n={})", cfg.committee),
            tps: pbft_tps,
            validators: cfg.committee,
            open: false,
            attack_fraction: 1.0 / 3.0,
        },
        DesignPoint {
            name: "delegated / layer-2 (21 validators)".to_string(),
            tps: dpos_tps,
            validators: 21,
            open: false,
            attack_fraction: 1.0 / 3.0,
        },
    ];

    let mut t = Table::new(
        "Design points on the trilemma",
        &[
            "design",
            "tx/s",
            "validators",
            "open membership",
            "attack needs (fraction of system)",
        ],
    );
    for p in &points {
        t.row([
            p.name.clone(),
            fmt_si(p.tps),
            p.validators.to_string(),
            p.open.to_string(),
            fmt_pct(p.attack_fraction),
        ]);
    }
    report.table(t);

    // Trilemma check: call a point "scalable" if tps >= 1000, "decentralized"
    // if open with >= 50 validators, "secure" if attack fraction >= 1/3.
    let scores: Vec<(bool, bool, bool)> = points
        .iter()
        .map(|p| {
            (
                p.tps >= 1000.0,
                p.open && p.validators >= 50,
                p.attack_fraction >= 1.0 / 3.0 - 1e-9,
            )
        })
        .collect();
    let any_all_three = scores.iter().any(|&(s, d, c)| s && d && c);
    let each_has_two = scores
        .iter()
        .filter(|&&(s, d, c)| (s as u8 + d as u8 + c as u8) >= 2)
        .count();
    report.check_with(
        "E11.no-triple-point",
        "no design point achieves all three",
        "a blockchain can only address two of scalability, decentralization, security",
        format!(
            "0 of {} designs scored scalable+decentralized+secure; {} scored two",
            points.len(),
            each_has_two
        ),
        each_has_two as f64,
        Expect::AtLeast(2.0),
        !any_all_three,
    );
    report.structural(
        "E11.sharding-tradeoff",
        "sharding trades security for throughput",
        "scalability is O(n) > O(c) only by shrinking per-transaction validation",
        format!(
            "{} shards: throughput x{}, attack threshold down to {}",
            cfg.shards,
            cfg.shards,
            fmt_pct(0.5 / cfg.shards as f64)
        ),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_trilemma() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
