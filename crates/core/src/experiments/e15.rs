//! E15 — Chain growth: full nodes vs. light clients.
//!
//! Paper (III-C Problem 1): "In a broadcast network where all nodes
//! validate transactions, and where the history of transactions grows,
//! each node requires more bandwidth, more storage, and more computing
//! power to cope with the flow. To avoid network shrinkage ... some
//! networks are retagging nodes as light nodes ... Full clients
//! validate transactions whereas light clients do not."

use decent_chain::node::{build_network, ChainNodeConfig, NetworkConfig};
use decent_chain::pow::PowParams;
use decent_sim::prelude::*;

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Resource growth: full nodes vs. light clients (III-C P1)";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Network size.
    pub nodes: usize,
    /// Simulated days of saturated chain activity.
    pub days: f64,
    /// Years to extrapolate.
    pub years: Vec<f64>,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution shards per simulation (1 = serial). Not a sweepable
    /// parameter and absent from reports: sharding never changes
    /// results, so it must never appear in canonical output.
    pub shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            nodes: 60,
            days: 3.0,
            years: vec![1.0, 5.0, 10.0],
            seed: 0xE15,
            shards: 1,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            nodes: 30,
            days: 1.0,
            ..Config::default()
        }
    }
}

/// Sweepable knobs.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "nodes",
        help: "network size (min 8)",
        get: |c| c.nodes as f64,
        set: |c, v| c.nodes = v.round().max(8.0) as usize,
    },
    Param {
        name: "days",
        help: "simulated days of saturated chain activity (min 0.5)",
        get: |c| c.days,
        set: |c, v| c.days = v.max(0.5),
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E15"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, exec: scenario::ExecPolicy) -> bool {
        self.shards = exec.shard_count();
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

/// Runs E15 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E15", TITLE);
    let mut sim = Simulation::new(cfg.seed, ConstantLatency::from_millis(80.0));
    sim.set_shards(cfg.shards);
    let ncfg = NetworkConfig {
        nodes: cfg.nodes,
        miner_fraction: 0.2,
        light_fraction: 0.5,
        node: ChainNodeConfig {
            params: PowParams::bitcoin(),
            tx_rate: 1000.0, // saturated 1 MB blocks
            ..ChainNodeConfig::default()
        },
        ..NetworkConfig::default()
    };
    let ids = build_network(&mut sim, &ncfg, cfg.seed ^ 1);
    sim.run_until(SimTime::from_days(cfg.days));
    let full = ids
        .iter()
        .copied()
        .find(|&i| !sim.node(i).is_miner() && sim.node(i).storage_bytes() > 1_000_000)
        .or_else(|| ids.iter().copied().find(|&i| sim.node(i).is_miner()))
        .expect("a full node");
    let light = ids
        .iter()
        .copied()
        .find(|&i| sim.node(i).storage_bytes() < 1_000_000 && !sim.node(i).is_miner())
        .expect("a light node");
    let full_storage = sim.node(full).storage_bytes() as f64;
    let light_storage = sim.node(light).storage_bytes() as f64;
    let full_bw = sim.node(full).bytes_received as f64;
    let light_bw = sim.node(light).bytes_received as f64;
    let per_day_full = full_storage / cfg.days;
    let per_day_light = light_storage / cfg.days;

    let mut t = Table::new(
        "Measured over the simulated window",
        &[
            "node type",
            "storage",
            "storage/day",
            "block bytes received/day",
        ],
    );
    t.row([
        "full (validates)".to_string(),
        fmt_si(full_storage),
        fmt_si(per_day_full),
        fmt_si(full_bw / cfg.days),
    ]);
    t.row([
        "light (headers only)".to_string(),
        fmt_si(light_storage),
        fmt_si(per_day_light),
        fmt_si(light_bw / cfg.days),
    ]);
    report.table(t);

    let mut t2 = Table::new(
        "Extrapolated history size",
        &["years", "full node", "light client", "ratio"],
    );
    for &y in &cfg.years {
        let f = per_day_full * 365.25 * y;
        let l = per_day_light * 365.25 * y;
        t2.row([
            fmt_f(y),
            fmt_si(f),
            fmt_si(l),
            format!("{}x", fmt_si(f / l.max(1.0))),
        ]);
    }
    report.table(t2);

    let ten_year_gb = per_day_full * 365.25 * 10.0 / 1e9;
    report.absorb_metrics(sim.metrics_snapshot());
    report.check(
        "E15.history-growth",
        "full-node history grows without bound",
        "each node requires more bandwidth, storage and compute to cope",
        format!(
            "{} GB after 10 years of saturated 1 MB blocks",
            fmt_f(ten_year_gb)
        ),
        ten_year_gb,
        Expect::MoreThan(200.0),
    );
    report.check_with(
        "E15.light-client-shed",
        "light clients shed the cost by shedding validation",
        "full clients validate transactions whereas light clients do not",
        format!(
            "light client stores {}x less and receives {}x less",
            fmt_si(full_storage / light_storage.max(1.0)),
            fmt_si(full_bw / light_bw.max(1.0))
        ),
        full_storage,
        Expect::MoreThan(500.0 * light_storage),
        full_bw > 100.0 * light_bw,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_growth_gap() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
