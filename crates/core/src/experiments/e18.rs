//! E18 — The CryptoKitties incident: one viral dapp congests the chain.
//!
//! Paper (III-C Problem 3): "in 2017, a game called CryptoKitties
//! (built using smart contracts) went viral and traffic on Ethereum's
//! network rose sixfold provoking the failure of many transactions."

use decent_chain::feemarket::{simulate_congestion, FeeMarketConfig};
use decent_sim::report::{fmt_f, fmt_pct};

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "A viral dapp congests the whole chain (III-C P3, CryptoKitties)";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Fee-market configuration.
    pub market: FeeMarketConfig,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            market: FeeMarketConfig::default(),
            seed: 0xE18,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            market: FeeMarketConfig {
                warmup_blocks: 50,
                viral_blocks: 100,
                cooldown_blocks: 50,
                ..FeeMarketConfig::default()
            },
            ..Config::default()
        }
    }
}

/// Sweepable knobs (reaching through to the fee-market model).
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "viral_multiplier",
        help: "demand multiplier during the viral window (min 1)",
        get: |c| c.market.viral_multiplier,
        set: |c, v| c.market.viral_multiplier = v.max(1.0),
    },
    Param {
        name: "block_capacity",
        help: "transactions per block (min 10)",
        get: |c| c.market.block_capacity as f64,
        set: |c, v| c.market.block_capacity = v.round().max(10.0) as usize,
    },
    Param {
        name: "viral_blocks",
        help: "length of the viral window in blocks (min 10)",
        get: |c| c.market.viral_blocks as f64,
        set: |c, v| c.market.viral_blocks = v.round().max(10.0) as usize,
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E18"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, _exec: scenario::ExecPolicy) -> bool {
        // Monte Carlo fee-market model — there is no discrete-event loop to
        // shard, so any shard count yields identical output trivially.
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

/// Runs E18 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E18", TITLE);
    let mut r = simulate_congestion(&cfg.market, cfg.seed);
    let mut t = Table::new(
        "Fee market before / during / after the viral window",
        &[
            "phase",
            "submitted",
            "failed",
            "failure rate",
            "median fee paid",
        ],
    );
    let rows: Vec<(&str, &mut decent_chain::feemarket::PhaseStats)> = vec![
        ("before", &mut r.before),
        ("during (6x demand)", &mut r.during),
        ("after", &mut r.after),
    ];
    let mut stats = Vec::new();
    for (name, phase) in rows {
        t.row([
            name.to_string(),
            phase.submitted.to_string(),
            phase.failed.to_string(),
            fmt_pct(phase.failure_rate()),
            fmt_f(phase.median_paid_fee()),
        ]);
        stats.push((phase.failure_rate(), phase.median_paid_fee()));
    }
    report.table(t);

    // The counterfactual the paper implies: a provisioned cloud absorbs it.
    let provisioned = {
        let mut m = cfg.market.clone();
        m.block_capacity = (m.base_demand_per_block as f64 * m.viral_multiplier * 1.3) as usize;
        simulate_congestion(&m, cfg.seed ^ 1)
    };
    let mut t2 = Table::new(
        "Counterfactual: capacity provisioned for the spike (cloud-style)",
        &["phase", "failure rate"],
    );
    t2.row([
        "during (6x demand)".to_string(),
        fmt_pct(provisioned.during.failure_rate()),
    ]);
    report.table(t2);

    let (calm_fail, calm_fee) = stats[0];
    let (viral_fail, viral_fee) = stats[1];
    let (after_fail, _) = stats[2];
    report.check_with(
        "E18.viral-failures",
        "a sixfold spike fails many transactions",
        "traffic rose sixfold provoking the failure of many transactions",
        format!(
            "failure rate {} -> {} when demand multiplies by {}",
            fmt_pct(calm_fail),
            fmt_pct(viral_fail),
            cfg.market.viral_multiplier
        ),
        viral_fail,
        Expect::MoreThan(0.3),
        calm_fail < 0.05,
    );
    report.check(
        "E18.congestion-tax",
        "every unrelated user pays the congestion tax",
        "storing state on-chain becomes extremely expensive (III-C P4)",
        format!(
            "median fee paid: {} -> {}",
            fmt_f(calm_fee),
            fmt_f(viral_fee)
        ),
        viral_fee,
        Expect::MoreThan(2.0 * calm_fee),
    );
    report.check_with(
        "E18.no-elasticity",
        "the chain cannot scale out; a cloud can",
        "(the paper's contrast with elastic cloud services)",
        format!(
            "fixed capacity: {} failures during the spike; provisioned capacity: {}; post-fad recovery to {}",
            fmt_pct(viral_fail),
            fmt_pct(provisioned.during.failure_rate()),
            fmt_pct(after_fail)
        ),
        provisioned.during.failure_rate(),
        Expect::LessThan(0.02),
        after_fail < viral_fail / 2.0,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_the_incident() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
