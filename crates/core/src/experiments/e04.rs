//! E4 — Churn vs. lookup performance; stable servers as the baseline.
//!
//! Paper (II-B Problem 2): "P2P networks show high heterogeneity and
//! high degrees of churn ... this can cause performance problems and
//! latency. When one needs any kind of guaranteed quality of service
//! with stringent constraints such as millisecond response time ...
//! stable cloud servers have no rival in P2P networks."

use decent_overlay::id::Key;
use decent_overlay::kademlia::{build_network, KadConfig, KadNode};
use decent_sim::prelude::*;

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Churn vs. performance; stable servers have no rival (II-B P2)";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Network size.
    pub nodes: usize,
    /// Lookups per churn level.
    pub lookups: usize,
    /// Mean session lengths to sweep (minutes); `None` = stable.
    pub sessions_mins: Vec<Option<f64>>,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution shards per simulation (1 = serial). Not a sweepable
    /// parameter and absent from reports: sharding never changes
    /// results, so it must never appear in canonical output.
    pub shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            nodes: 800,
            lookups: 250,
            sessions_mins: vec![Some(10.0), Some(30.0), Some(120.0), None],
            seed: 0xE4,
            shards: 1,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            nodes: 300,
            lookups: 80,
            sessions_mins: vec![Some(10.0), Some(120.0), None],
            ..Config::default()
        }
    }
}

/// Sweepable knobs. `session_mins` is the churn axis the paper's claim
/// hinges on: it drives the *churniest* level (the first entry of
/// `sessions_mins`), which the claim checks compare against the stable
/// baseline — sweeping it charts where the churn penalty fades.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "nodes",
        help: "network size (min 16)",
        get: |c| c.nodes as f64,
        set: |c, v| c.nodes = v.round().max(16.0) as usize,
    },
    Param {
        name: "lookups",
        help: "lookups per churn level (min 1)",
        get: |c| c.lookups as f64,
        set: |c, v| c.lookups = v.round().max(1.0) as usize,
    },
    Param {
        name: "session_mins",
        help: "mean session length of the churniest level, minutes (min 1)",
        get: |c| c.sessions_mins[0].unwrap_or(0.0),
        set: |c, v| c.sessions_mins[0] = Some(v.max(1.0)),
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E4"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, exec: scenario::ExecPolicy) -> bool {
        self.shards = exec.shard_count();
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

struct Row {
    label: String,
    p50: f64,
    p99: f64,
    timeout_free: f64,
    metrics: MetricsSnapshot,
}

fn run_level(cfg: &Config, session: Option<f64>, lan: bool, seed: u64) -> Row {
    let mut sim: Simulation<KadNode> = if lan {
        Simulation::new(seed, ConstantLatency::from_millis(0.5))
    } else {
        Simulation::new(seed, UniformLatency::from_millis(30.0, 120.0))
    };
    sim.set_shards(cfg.shards);
    let kad = KadConfig {
        k: 10,
        alpha: 3,
        ..KadConfig::default()
    };
    let ids = build_network(&mut sim, cfg.nodes, &kad, 0.0, 8, seed ^ 3);
    if let Some(mins) = session {
        for &id in &ids {
            sim.set_churn(id, ChurnModel::kad_measured(SimDuration::from_mins(mins)));
        }
        // Let churn churn for a while so tables go stale realistically.
        sim.run_until(SimTime::from_mins(mins.min(30.0)));
    } else {
        sim.run_until(SimTime::from_secs(1.0));
    }
    let mut issued = 0;
    let mut i = 0;
    while issued < cfg.lookups {
        let origin = ids[i % ids.len()];
        i += 1;
        if !sim.is_online(origin) {
            continue;
        }
        let target = Key::from_u64(900_000 + issued as u64);
        sim.invoke(origin, |n, ctx| {
            n.start_lookup(target, false, ctx);
        });
        issued += 1;
        let next = sim.now() + SimDuration::from_millis(300.0);
        sim.run_until(next);
    }
    sim.run_until(sim.now() + SimDuration::from_secs(120.0));
    let mut lat = Histogram::new();
    let mut clean = 0usize;
    let mut total = 0usize;
    for &id in &ids {
        for r in &sim.node(id).results {
            lat.record(r.latency.as_secs());
            total += 1;
            if r.timeouts == 0 {
                clean += 1;
            }
        }
    }
    let label = match (session, lan) {
        (Some(m), _) => format!("P2P, mean session {m:.0} min"),
        (None, false) => "P2P, no churn".to_string(),
        (None, true) => "stable cloud servers (LAN)".to_string(),
    };
    Row {
        label,
        p50: lat.percentile(0.5),
        p99: lat.percentile(0.99),
        timeout_free: clean as f64 / total.max(1) as f64,
        metrics: sim.metrics_snapshot(),
    }
}

/// Runs E4 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E4", TITLE);
    let mut t = Table::new(
        "Lookup latency under churn",
        &["deployment", "p50 (s)", "p99 (s)", "timeout-free lookups"],
    );
    let mut rows = Vec::new();
    for (i, &session) in cfg.sessions_mins.iter().enumerate() {
        let row = run_level(cfg, session, false, cfg.seed ^ ((i as u64 + 1) << 4));
        report.absorb_metrics(row.metrics.clone());
        t.row([
            row.label.clone(),
            fmt_f(row.p50),
            fmt_f(row.p99),
            fmt_pct(row.timeout_free),
        ]);
        rows.push(row);
    }
    // The cloud baseline: same protocol, stable LAN boxes.
    let cloud = run_level(cfg, None, true, cfg.seed ^ 0xC10D);
    report.absorb_metrics(cloud.metrics.clone());
    t.row([
        cloud.label.clone(),
        fmt_f(cloud.p50),
        fmt_f(cloud.p99),
        fmt_pct(cloud.timeout_free),
    ]);
    report.table(t);

    let churniest = &rows[0];
    let stable_p2p = rows.last().expect("at least one level");
    report.check_with(
        "E4.churn-tail-latency",
        "churn degrades tail latency",
        "churn causes performance problems and latency",
        format!(
            "p99 {}s at {:.0}-min sessions vs {}s with no churn",
            fmt_f(churniest.p99),
            cfg.sessions_mins[0].unwrap_or(0.0),
            fmt_f(stable_p2p.p99)
        ),
        churniest.p99,
        Expect::MoreThan(2.0 * stable_p2p.p99),
        churniest.timeout_free < stable_p2p.timeout_free,
    );
    report.check_with(
        "E4.cloud-millisecond",
        "cloud is millisecond-class",
        "stringent millisecond response times need stable servers",
        format!(
            "cloud p50 {}s vs best P2P p50 {}s",
            fmt_f(cloud.p50),
            fmt_f(stable_p2p.p50)
        ),
        cloud.p50,
        Expect::LessThan(0.05),
        cloud.p50 * 10.0 < stable_p2p.p50,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_churn_penalty() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
