//! E5 — Sybil attacks on open overlays.
//!
//! Paper (II-B Problem 3, citing Douceur \[19\] and the KAD measurement
//! studies \[17\]\[18\]): "open networks where peers can assign their
//! identities are prone to Sybil attacks. In a Sybil attack, the idea
//! is to impersonate thousands of identifiers with a few powerful
//! nodes."

use decent_overlay::id::Key;
use decent_overlay::kademlia::KadConfig;
use decent_overlay::sybil::{build_attacked_network, measure_capture, SybilConfig, SybilPlacement};
use decent_sim::prelude::*;

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Sybil attacks on open overlays (II-B P3)";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Honest population.
    pub honest: usize,
    /// Sybil-to-honest ratios to sweep.
    pub ratios: Vec<f64>,
    /// Lookups per attack level.
    pub lookups: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution shards per simulation (1 = serial). Not a sweepable
    /// parameter and absent from reports: sharding never changes
    /// results, so it must never appear in canonical output.
    pub shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            honest: 600,
            ratios: vec![0.0, 0.25, 0.5, 1.0],
            lookups: 120,
            seed: 0xE5,
            shards: 1,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            honest: 250,
            ratios: vec![0.0, 0.5, 1.0],
            lookups: 60,
            ..Config::default()
        }
    }
}

/// Sweepable knobs. `sybil_ratio` drives the heaviest attack level (the
/// last entry of `ratios`), which the capture claim is checked against.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "honest",
        help: "honest population (min 32)",
        get: |c| c.honest as f64,
        set: |c, v| c.honest = v.round().max(32.0) as usize,
    },
    Param {
        name: "lookups",
        help: "lookups per attack level (min 1)",
        get: |c| c.lookups as f64,
        set: |c, v| c.lookups = v.round().max(1.0) as usize,
    },
    Param {
        name: "sybil_ratio",
        help: "sybil-to-honest ratio of the heaviest attack level (0.05-4)",
        get: |c| *c.ratios.last().expect("at least one ratio level"),
        set: |c, v| *c.ratios.last_mut().expect("at least one ratio level") = v.clamp(0.05, 4.0),
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E5"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, exec: scenario::ExecPolicy) -> bool {
        self.shards = exec.shard_count();
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

/// Runs E5 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E5", TITLE);
    let victim_key = Key::from_u64(0xBEEF);
    let mut t = Table::new(
        "Lookup capture vs. sybil identities",
        &[
            "attack",
            "sybils",
            "top result is sybil",
            "majority of results sybil",
            "entire result set sybil",
        ],
    );
    let mut capture_at = Vec::new();
    for (i, &ratio) in cfg.ratios.iter().enumerate() {
        let sybils = ((cfg.honest as f64 * ratio) as usize).max(if ratio > 0.0 { 1 } else { 0 });
        let scfg = SybilConfig {
            honest: cfg.honest,
            sybils: sybils.max(1),
            placement: SybilPlacement::Uniform,
            victim_key,
            kad: KadConfig {
                k: 8,
                ..KadConfig::default()
            },
        };
        let (mut sim, honest, sybil_ids) =
            build_attacked_network(&scfg, cfg.seed ^ ((i as u64 + 1) << 6));
        sim.set_shards(cfg.shards);
        // A zero-ratio level keeps one inert sybil for plumbing; ignore it.
        let out = measure_capture(&mut sim, &honest, &sybil_ids, victim_key, cfg.lookups);
        report.absorb_metrics(sim.metrics_snapshot());
        let top = out.top_captured as f64 / out.lookups.max(1) as f64;
        let full = out.fully_captured as f64 / out.lookups.max(1) as f64;
        t.row([
            format!("uniform, {}% sybils", (ratio * 100.0) as u32),
            sybils.to_string(),
            fmt_pct(top),
            fmt_pct(out.capture_rate()),
            fmt_pct(full),
        ]);
        capture_at.push(out.capture_rate());
    }
    // Eclipse: few identities, placed next to the victim key.
    let eclipse_cfg = SybilConfig {
        honest: cfg.honest,
        sybils: 30,
        placement: SybilPlacement::Eclipse { prefix_bits: 24 },
        victim_key,
        kad: KadConfig {
            k: 8,
            ..KadConfig::default()
        },
    };
    let (mut sim, honest, sybil_ids) = build_attacked_network(&eclipse_cfg, cfg.seed ^ 0xEC);
    sim.set_shards(cfg.shards);
    let eclipse = measure_capture(&mut sim, &honest, &sybil_ids, victim_key, cfg.lookups);
    report.absorb_metrics(sim.metrics_snapshot());
    let eclipse_top = eclipse.top_captured as f64 / eclipse.lookups.max(1) as f64;
    t.row([
        "eclipse, 30 targeted identities".to_string(),
        "30".to_string(),
        fmt_pct(eclipse_top),
        fmt_pct(eclipse.capture_rate()),
        fmt_pct(eclipse.fully_captured as f64 / eclipse.lookups.max(1) as f64),
    ]);
    report.table(t);

    let baseline = capture_at[0];
    let heavy = *capture_at.last().expect("levels");
    report.check_with(
        "E5.capture-scales",
        "identity is free, so capture scales with identities",
        "a few powerful nodes can impersonate thousands of identifiers",
        format!(
            "majority-capture {} -> {} as sybils go 0% -> 100% of honest population",
            fmt_pct(baseline),
            fmt_pct(heavy)
        ),
        heavy,
        Expect::MoreThan(0.3),
        baseline < 0.05,
    );
    report.check(
        "E5.eclipse-cheap",
        "targeted eclipse needs only a handful of identities",
        "massive identity problems reported in KAD / Mainline [17][18]",
        format!(
            "30 placed identities own the victim's top result {} of the time",
            fmt_pct(eclipse_top)
        ),
        eclipse_top,
        Expect::MoreThan(0.5),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_capture() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
