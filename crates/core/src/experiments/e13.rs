//! E13 — Edge-centric computing with permissioned trust vs. the
//! centralized cloud (the quantitative version of Fig. 1).
//!
//! Paper (V): "Control must be at the edge ... modern services are
//! data-intensive and latency-sensitive, sometimes making a
//! centralized cloud a poor match for them. ... The level of trust and
//! the speed needed by decentralized edge services may be achieved
//! through permissioned blockchains."

use decent_bft::ledger::{build_network as build_fabric, Channel, FabricConfig};
use decent_edge::service::{run_workload, EdgeConfig, Strategy};
use decent_sim::prelude::*;

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Edge-centric + permissioned trust vs. centralized cloud (V, Fig. 1)";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Devices per region.
    pub devices_per_region: usize,
    /// Requests per device.
    pub requests_per_device: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution shards per simulation (1 = serial). Not a sweepable
    /// parameter and absent from reports: sharding never changes
    /// results, so it must never appear in canonical output.
    pub shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            devices_per_region: 120,
            requests_per_device: 5,
            seed: 0xE13,
            shards: 1,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            devices_per_region: 40,
            requests_per_device: 3,
            ..Config::default()
        }
    }
}

/// Sweepable knobs.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "devices_per_region",
        help: "edge devices per region (min 8)",
        get: |c| c.devices_per_region as f64,
        set: |c, v| c.devices_per_region = v.round().max(8.0) as usize,
    },
    Param {
        name: "requests_per_device",
        help: "requests issued per device (min 1)",
        get: |c| c.requests_per_device as f64,
        set: |c, v| c.requests_per_device = v.round().max(1.0) as usize,
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E13"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, exec: scenario::ExecPolicy) -> bool {
        self.shards = exec.shard_count();
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

/// Measures the one-time federation-join cost on the permissioned
/// ledger (a channel transaction committing on all peers).
fn federation_join_ms(seed: u64, shards: usize) -> (f64, MetricsSnapshot) {
    let mut sim = Simulation::new(seed, LanNet::datacenter());
    sim.set_shards(shards);
    let cfg = FabricConfig::default();
    let channels = vec![Channel {
        id: 1,
        orgs: vec![0, 1],
    }];
    let net = build_fabric(&mut sim, &cfg, &channels);
    sim.run_until(SimTime::from_secs(0.01));
    let gw = net.gateway(1);
    sim.invoke(gw, |n, ctx| n.submit(1, 1, ctx));
    sim.run_until(SimTime::from_secs(5.0));
    let peer = net.channel_peers(1)[0];
    let c = sim.node(peer).committed()[0];
    let ms = c.committed.saturating_since(c.submitted).as_millis();
    (ms, sim.metrics_snapshot())
}

/// Runs E13 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E13", TITLE);
    let mut rows = Vec::new();
    let mut t = Table::new(
        "Service quality by architecture",
        &[
            "architecture",
            "p50 (ms)",
            "p99 (ms)",
            "WAN traffic (MB)",
            "control locality",
        ],
    );
    for strategy in [Strategy::EdgeCentric, Strategy::CentralizedCloud] {
        let ecfg = EdgeConfig {
            strategy,
            devices_per_region: cfg.devices_per_region,
            shards: cfg.shards,
            ..EdgeConfig::default()
        };
        let (mut lat, wan, locality) = run_workload(&ecfg, cfg.requests_per_device, cfg.seed);
        t.row([
            match strategy {
                Strategy::EdgeCentric => "edge-centric + permissioned chain",
                Strategy::CentralizedCloud => "centralized cloud + TTP",
            }
            .to_string(),
            fmt_f(lat.percentile(0.5)),
            fmt_f(lat.percentile(0.99)),
            fmt_f(wan as f64 / 1e6),
            fmt_pct(locality),
        ]);
        rows.push((lat.percentile(0.5), lat.percentile(0.99), wan, locality));
    }
    report.table(t);

    let (join_ms, join_metrics) = federation_join_ms(cfg.seed ^ 0xFED, cfg.shards);
    report.absorb_metrics(join_metrics);
    let mut t2 = Table::new("Trust establishment cost", &["mechanism", "cost", "paid"]);
    t2.row([
        "federation join via permissioned chain".to_string(),
        format!("{} ms", fmt_f(join_ms)),
        "once per member".to_string(),
    ]);
    t2.row([
        "TTP credential check".to_string(),
        "one cloud round trip (~60-300 ms)".to_string(),
        "every cold session".to_string(),
    ]);
    report.table(t2);

    let (edge_p50, _, edge_wan, edge_local) = rows[0];
    let (cloud_p50, _, cloud_wan, cloud_local) = rows[1];
    report.check(
        "E13.edge-latency",
        "edge placement wins on latency",
        "latency-sensitive services are a poor match for a centralized cloud",
        format!(
            "p50 {} ms (edge) vs {} ms (cloud)",
            fmt_f(edge_p50),
            fmt_f(cloud_p50)
        ),
        cloud_p50,
        Expect::MoreThan(4.0 * edge_p50),
    );
    report.check_with(
        "E13.control-locality",
        "control moves to the edge",
        "control must be at the edge",
        format!(
            "locality {} (edge) vs {} (cloud); WAN {} MB vs {} MB",
            fmt_pct(edge_local),
            fmt_pct(cloud_local),
            fmt_f(edge_wan as f64 / 1e6),
            fmt_f(cloud_wan as f64 / 1e6)
        ),
        edge_local,
        Expect::MoreThan(0.9),
        cloud_local < 0.1 && cloud_wan > 5 * edge_wan.max(1),
    );
    report.check(
        "E13.trust-amortizes",
        "permissioned trust amortizes",
        "trust through permissioned blockchains enables decentralized control",
        format!(
            "{} ms once per member vs a TTP round trip on every cold session",
            fmt_f(join_ms)
        ),
        join_ms,
        Expect::LessThan(1000.0),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_edge_advantage() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
