//! E3 — Tit-for-tat incentives in BitTorrent.
//!
//! Paper (II-B Problem 1): "BitTorrent mitigated the free riding
//! problem by designing the protocol including incentives (tit-for-
//! tat). If peers do not contribute, others would not reciprocate. But
//! again, collaboration is only enforced during the download process."

use decent_overlay::swarm::{SwarmConfig, SwarmSim};

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};
use decent_sim::report::fmt_f;

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Tit-for-tat incentives (II-B P1)";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Leechers in the swarm.
    pub leechers: usize,
    /// Fraction of leechers that never upload.
    pub free_rider_fraction: f64,
    /// Initial seeds.
    pub seeds: usize,
    /// Pieces in the torrent.
    pub pieces: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            leechers: 300,
            free_rider_fraction: 0.25,
            seeds: 3,
            pieces: 200,
            seed: 0xE3,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            leechers: 120,
            pieces: 100,
            ..Config::default()
        }
    }
}

/// Sweepable knobs.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "leechers",
        help: "leechers in the swarm (min 8)",
        get: |c| c.leechers as f64,
        set: |c, v| c.leechers = v.round().max(8.0) as usize,
    },
    Param {
        name: "free_rider_fraction",
        help: "fraction of leechers that never upload (0-1)",
        get: |c| c.free_rider_fraction,
        set: |c, v| c.free_rider_fraction = v.clamp(0.0, 1.0),
    },
    Param {
        name: "seeds",
        help: "initial seeds (min 1)",
        get: |c| c.seeds as f64,
        set: |c, v| c.seeds = v.round().max(1.0) as usize,
    },
    Param {
        name: "pieces",
        help: "pieces in the torrent (min 10)",
        get: |c| c.pieces as f64,
        set: |c, v| c.pieces = v.round().max(10.0) as usize,
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E3"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, _exec: scenario::ExecPolicy) -> bool {
        // Round-based swarm model — there is no discrete-event loop to
        // shard, so any shard count yields identical output trivially.
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

/// Runs E3 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E3", TITLE);
    let mut t = Table::new(
        "Completion time by peer class",
        &[
            "choking",
            "contributor p50 (s)",
            "free rider p50 (s)",
            "rider/contributor ratio",
            "unfinished",
        ],
    );
    let mut ratios = Vec::new();
    for tft in [true, false] {
        let swarm_cfg = SwarmConfig {
            pieces: cfg.pieces,
            tit_for_tat: tft,
            ..SwarmConfig::default()
        };
        let mut swarm = SwarmSim::with_population(
            swarm_cfg,
            cfg.leechers,
            cfg.free_rider_fraction,
            cfg.seeds,
            cfg.seed,
        );
        let mut r = swarm.run(4000);
        let c50 = r.contributor_times.percentile(0.5);
        let f50 = r.free_rider_times.percentile(0.5);
        let ratio = if c50 > 0.0 { f50 / c50 } else { 0.0 };
        t.row([
            if tft {
                "tit-for-tat"
            } else {
                "random (no incentives)"
            }
            .to_string(),
            fmt_f(c50),
            fmt_f(f50),
            fmt_f(ratio),
            r.unfinished.to_string(),
        ]);
        ratios.push(ratio);
    }
    report.table(t);
    report.check(
        "E3.tft-punishes-riders",
        "tit-for-tat punishes free riders",
        "peers that do not contribute are not reciprocated",
        format!(
            "free riders take {}x longer under tit-for-tat",
            fmt_f(ratios[0])
        ),
        ratios[0],
        Expect::AtLeast(1.5),
    );
    report.check(
        "E3.no-incentive-no-cost",
        "without incentives, free riding is free",
        "free riding was predominant before incentive design",
        format!(
            "rider/contributor ratio {} with random choking",
            fmt_f(ratios[1])
        ),
        ratios[1],
        Expect::LessThan(1.4),
    );
    // Structural: departure-at-completion is built into the model.
    report.structural(
        "E3.exit-after-download",
        "incentives only bind during the download",
        "collaboration is only enforced during the download process",
        "completed free riders leave immediately; the protocol cannot retain them",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_incentive_effect() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
