//! E6 — One-hop routing vs. multi-hop DHTs.
//!
//! Paper (II-B, citing Beehive \[23\] and Gupta–Liskov–Rodrigues \[24\]):
//! "for networks between 10K and 100K it is possible to have full
//! membership routing information and provide one-hop routing. If the
//! overlay is relatively stable like a corporate network, then O(1)
//! routing and full membership is the right decision instead of
//! maintaining routing tables and suffering multi-hop lookups."
//!
//! We measure all three designs head-to-head at a simulable size, then
//! extrapolate the one-hop maintenance bandwidth to 10K and 100K with
//! the same closed form Gupta et al. use (validated against the
//! simulation at the measured size).

use decent_overlay::can;
use decent_overlay::chord::{build_ring, ChordConfig};
use decent_overlay::id::Key;
use decent_overlay::kademlia::{self, KadConfig};
use decent_overlay::onehop::{self, OneHopConfig};
use decent_overlay::pastry::{self, PastryConfig};
use decent_sim::prelude::*;

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "One-hop full membership vs. multi-hop DHTs (II-B, [23][24])";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Head-to-head network size (all three protocols simulated).
    pub nodes: usize,
    /// Lookups per protocol.
    pub lookups: usize,
    /// Mean node session length driving the membership event rate.
    pub session_mins: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution shards per simulation (1 = serial). Not a sweepable
    /// parameter and absent from reports: sharding never changes
    /// results, so it must never appear in canonical output.
    pub shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            nodes: 1000,
            lookups: 200,
            session_mins: 60.0,
            seed: 0xE6,
            shards: 1,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            nodes: 300,
            lookups: 60,
            ..Config::default()
        }
    }
}

/// Sweepable knobs.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "nodes",
        help: "head-to-head network size (min 16)",
        get: |c| c.nodes as f64,
        set: |c, v| c.nodes = v.round().max(16.0) as usize,
    },
    Param {
        name: "lookups",
        help: "lookups per protocol (min 1)",
        get: |c| c.lookups as f64,
        set: |c, v| c.lookups = v.round().max(1.0) as usize,
    },
    Param {
        name: "session_mins",
        help: "mean session length driving membership events, minutes (min 1)",
        get: |c| c.session_mins,
        set: |c, v| c.session_mins = v.max(1.0),
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E6"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, exec: scenario::ExecPolicy) -> bool {
        self.shards = exec.shard_count();
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

struct ProtocolRow {
    name: String,
    hops: f64,
    p50_ms: f64,
    maint_msgs_per_node_min: f64,
    metrics: MetricsSnapshot,
}

fn measure_chord(cfg: &Config, seed: u64) -> ProtocolRow {
    let mut sim = Simulation::new(seed, UniformLatency::from_millis(30.0, 120.0));
    sim.set_shards(cfg.shards);
    let ids = build_ring(&mut sim, cfg.nodes, &ChordConfig::default(), seed ^ 1);
    sim.run_until(SimTime::from_secs(1.0));
    // Maintenance window: no lookups for two minutes.
    let before = sim.stats().sent;
    sim.run_until(sim.now() + SimDuration::from_mins(2.0));
    let maint = (sim.stats().sent - before) as f64 / cfg.nodes as f64 / 2.0;
    for i in 0..cfg.lookups as u64 {
        let origin = ids[(i as usize * 31) % ids.len()];
        let t = Key::from_u64(5000 + i);
        sim.invoke(origin, |n, ctx| {
            n.start_lookup(t, ctx);
        });
        let next = sim.now() + SimDuration::from_millis(150.0);
        sim.run_until(next);
    }
    sim.run_until(sim.now() + SimDuration::from_secs(60.0));
    let (mut hops, mut lat) = (Histogram::new(), Histogram::new());
    for &id in &ids {
        for r in &sim.node(id).results {
            if r.success {
                hops.record(r.hops as f64);
                lat.record(r.latency.as_millis());
            }
        }
    }
    ProtocolRow {
        name: format!("Chord (n={})", cfg.nodes),
        hops: hops.mean(),
        p50_ms: lat.percentile(0.5),
        maint_msgs_per_node_min: maint,
        metrics: sim.metrics_snapshot(),
    }
}

fn measure_kademlia(cfg: &Config, seed: u64) -> ProtocolRow {
    let mut sim = Simulation::new(seed, UniformLatency::from_millis(30.0, 120.0));
    let kad = KadConfig {
        k: 10,
        alpha: 3,
        refresh_interval: Some(SimDuration::from_mins(1.0)),
        ..KadConfig::default()
    };
    sim.set_shards(cfg.shards);
    let ids = kademlia::build_network(&mut sim, cfg.nodes, &kad, 0.0, 8, seed ^ 2);
    sim.run_until(SimTime::from_secs(1.0));
    let before = sim.stats().sent;
    sim.run_until(sim.now() + SimDuration::from_mins(2.0));
    let maint = (sim.stats().sent - before) as f64 / cfg.nodes as f64 / 2.0;
    for i in 0..cfg.lookups as u64 {
        let origin = ids[(i as usize * 29) % ids.len()];
        let t = Key::from_u64(7000 + i);
        sim.invoke(origin, |n, ctx| {
            n.start_lookup(t, false, ctx);
        });
        let next = sim.now() + SimDuration::from_millis(150.0);
        sim.run_until(next);
    }
    sim.run_until(sim.now() + SimDuration::from_secs(60.0));
    let (mut rpc_rounds, mut lat) = (Histogram::new(), Histogram::new());
    for &id in &ids {
        for r in &sim.node(id).results {
            // Approximate "hops" as sequential RPC rounds (rpcs / alpha).
            rpc_rounds.record(r.rpcs as f64 / 3.0);
            lat.record(r.latency.as_millis());
        }
    }
    ProtocolRow {
        name: format!("Kademlia (n={})", cfg.nodes),
        hops: rpc_rounds.mean(),
        p50_ms: lat.percentile(0.5),
        maint_msgs_per_node_min: maint,
        metrics: sim.metrics_snapshot(),
    }
}

fn measure_onehop(cfg: &Config, seed: u64) -> ProtocolRow {
    let mut sim = Simulation::new(seed, UniformLatency::from_millis(30.0, 120.0));
    sim.set_shards(cfg.shards);
    let ids = onehop::build_network(&mut sim, cfg.nodes, OneHopConfig::default(), seed ^ 3);
    sim.run_until(SimTime::from_secs(1.0));
    // Membership events at the churn rate: 2 events per session cycle.
    let event_rate_per_min = 2.0 * cfg.nodes as f64 / (2.0 * cfg.session_mins); // joins + leaves
    let before = sim.stats().sent;
    let mut ticker = 0u64;
    let window_mins = 2.0;
    let events = (event_rate_per_min * window_mins) as usize;
    for e in 0..events {
        ticker += 1;
        let subject = ids[(e * 13) % ids.len()];
        let observer = ids[(e * 13 + 1) % ids.len()];
        let contact = decent_overlay::kademlia::Contact {
            node: subject,
            key: sim.node(subject).key(),
        };
        let alive = ticker.is_multiple_of(2);
        sim.invoke(observer, |n, _ctx| n.observe(contact, alive));
        let next = sim.now() + SimDuration::from_secs(60.0 * window_mins / events as f64);
        sim.run_until(next);
    }
    let maint = (sim.stats().sent - before) as f64 / cfg.nodes as f64 / window_mins;
    for i in 0..cfg.lookups as u64 {
        let origin = ids[(i as usize * 37) % ids.len()];
        let t = Key::from_u64(9000 + i);
        sim.invoke(origin, |n, ctx| {
            n.start_lookup(t, ctx);
        });
        let next = sim.now() + SimDuration::from_millis(150.0);
        sim.run_until(next);
    }
    sim.run_until(sim.now() + SimDuration::from_secs(60.0));
    let mut lat = Histogram::new();
    for &id in &ids {
        for r in &sim.node(id).results {
            if r.success {
                lat.record(r.latency.as_millis());
            }
        }
    }
    ProtocolRow {
        name: format!("One-hop (n={})", cfg.nodes),
        hops: 1.0,
        p50_ms: lat.percentile(0.5),
        maint_msgs_per_node_min: maint,
        metrics: sim.metrics_snapshot(),
    }
}

fn measure_pastry(cfg: &Config, seed: u64) -> ProtocolRow {
    let mut sim = Simulation::new(seed, UniformLatency::from_millis(30.0, 120.0));
    sim.set_shards(cfg.shards);
    let ids = pastry::build_network(&mut sim, cfg.nodes, &PastryConfig::default(), seed ^ 4);
    sim.run_until(SimTime::from_secs(1.0));
    let before = sim.stats().sent;
    sim.run_until(sim.now() + SimDuration::from_mins(2.0));
    let maint = (sim.stats().sent - before) as f64 / cfg.nodes as f64 / 2.0;
    for i in 0..cfg.lookups as u64 {
        let origin = ids[(i as usize * 41) % ids.len()];
        let t = Key::from_u64(11_000 + i);
        sim.invoke(origin, |n, ctx| {
            n.start_lookup(t, ctx);
        });
        let next = sim.now() + SimDuration::from_millis(150.0);
        sim.run_until(next);
    }
    sim.run_until(sim.now() + SimDuration::from_secs(60.0));
    let (mut hops, mut lat) = (Histogram::new(), Histogram::new());
    for &id in &ids {
        for r in &sim.node(id).results {
            if r.success {
                hops.record(r.hops as f64);
                lat.record(r.latency.as_millis());
            }
        }
    }
    ProtocolRow {
        name: format!("Pastry (n={})", cfg.nodes),
        hops: hops.mean(),
        p50_ms: lat.percentile(0.5),
        maint_msgs_per_node_min: maint,
        metrics: sim.metrics_snapshot(),
    }
}

fn measure_can(cfg: &Config, seed: u64) -> ProtocolRow {
    use rand::Rng;
    let mut sim = Simulation::new(seed, UniformLatency::from_millis(30.0, 120.0));
    sim.set_shards(cfg.shards);
    let ids = can::build_network(&mut sim, cfg.nodes, seed ^ 5);
    sim.run_until(SimTime::from_secs(0.1));
    for i in 0..cfg.lookups {
        let t = {
            let rng = sim.rng();
            [rng.gen::<f64>(), rng.gen::<f64>()]
        };
        let origin = ids[(i * 43) % ids.len()];
        sim.invoke(origin, |n, ctx| {
            n.start_lookup(t, ctx);
        });
        let next = sim.now() + SimDuration::from_millis(150.0);
        sim.run_until(next);
    }
    sim.run_until(sim.now() + SimDuration::from_secs(60.0));
    let (mut hops, mut lat) = (Histogram::new(), Histogram::new());
    for &id in &ids {
        for r in &sim.node(id).results {
            hops.record(r.hops as f64);
            lat.record(r.latency.as_millis());
        }
    }
    ProtocolRow {
        name: format!("CAN d=2 (n={})", cfg.nodes),
        hops: hops.mean(),
        p50_ms: lat.percentile(0.5),
        maint_msgs_per_node_min: 0.0, // static zones; no repair modelled
        metrics: sim.metrics_snapshot(),
    }
}

/// Closed-form one-hop maintenance bandwidth (Gupta et al. style):
/// every membership event must reach every node once (plus duplicate
/// factor); returns bytes/s per node.
pub fn onehop_bandwidth_per_node(n: usize, session_mins: f64, entry_bytes: f64, dup: f64) -> f64 {
    // Each node joins and leaves once per on+off cycle (2 * session).
    let events_per_sec = 2.0 * n as f64 / (2.0 * session_mins * 60.0);
    events_per_sec * entry_bytes * dup
}

/// Runs E6 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E6", TITLE);
    let rows = vec![
        measure_can(cfg, cfg.seed ^ 0x05),
        measure_chord(cfg, cfg.seed ^ 0x10),
        measure_pastry(cfg, cfg.seed ^ 0x15),
        measure_kademlia(cfg, cfg.seed ^ 0x20),
        measure_onehop(cfg, cfg.seed ^ 0x30),
    ];
    let mut t = Table::new(
        "Head-to-head at simulated scale",
        &[
            "protocol",
            "mean hops/rounds",
            "lookup p50 (ms)",
            "maintenance msgs/node/min",
        ],
    );
    for r in &rows {
        report.absorb_metrics(r.metrics.clone());
        t.row([
            r.name.clone(),
            fmt_f(r.hops),
            fmt_f(r.p50_ms),
            fmt_f(r.maint_msgs_per_node_min),
        ]);
    }
    report.table(t);

    // Feasibility extrapolation for the paper's 10K-100K band.
    let mut t2 = Table::new(
        "One-hop maintenance bandwidth (closed form, 1-hour sessions)",
        &[
            "n",
            "events/s",
            "bytes/s per node",
            "feasible on broadband?",
        ],
    );
    for &n in &[cfg.nodes, 10_000, 100_000] {
        let bw = onehop_bandwidth_per_node(n, cfg.session_mins, 40.0, 4.0);
        let events = 2.0 * n as f64 / (2.0 * cfg.session_mins * 60.0);
        t2.row([
            fmt_si(n as f64),
            fmt_f(events),
            fmt_f(bw),
            (bw < 125_000.0).to_string(), // < 1 Mbit/s
        ]);
    }
    report.table(t2);

    let chord = &rows[1];
    let onehop_row = &rows[4];
    report.check_with(
        "E6.onehop-latency",
        "one-hop beats multi-hop on latency",
        "O(1) routing avoids multi-hop lookups",
        format!(
            "p50 {} ms (one-hop) vs {} ms (Chord, {} hops avg)",
            fmt_f(onehop_row.p50_ms),
            fmt_f(chord.p50_ms),
            fmt_f(chord.hops)
        ),
        chord.p50_ms,
        Expect::MoreThan(onehop_row.p50_ms * 1.5),
        chord.hops > 2.0,
    );
    let can_row = &rows[0];
    let pastry_row = &rows[2];
    report.check_with(
        "E6.geometry-hops",
        "geometry sets the hop count",
        "numerous DHT proposals: CAN, Chord, Pastry, Kademlia [5-8]",
        format!(
            "mean hops — CAN(d=2): {}, Chord: {}, Pastry: {}",
            fmt_f(can_row.hops),
            fmt_f(chord.hops),
            fmt_f(pastry_row.hops)
        ),
        can_row.hops,
        Expect::MoreThan(chord.hops),
        pastry_row.hops < chord.hops,
    );
    let bw100k = onehop_bandwidth_per_node(100_000, cfg.session_mins, 40.0, 4.0);
    report.check(
        "E6.onehop-bandwidth",
        "full membership is feasible at 10K-100K",
        "full membership routing is possible for 10K-100K nodes",
        format!(
            "{} B/s per node at n=100K with 1-hour sessions",
            fmt_f(bw100k)
        ),
        bw100k,
        Expect::LessThan(125_000.0),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_onehop_advantage() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }

    #[test]
    fn bandwidth_formula_scales_linearly() {
        let a = onehop_bandwidth_per_node(10_000, 60.0, 40.0, 4.0);
        let b = onehop_bandwidth_per_node(100_000, 60.0, 40.0, 4.0);
        assert!((b / a - 10.0).abs() < 1e-9);
    }
}
