//! E9 — Selfish mining: the incentive mechanism is flawed.
//!
//! Paper (III-C Problem 1, citing Eyal & Sirer \[30\]): "Some recent
//! research work indicates that the incentive mechanism of Bitcoin is
//! furthermore flawed. They present an attack where a minority
//! colluding pool can obtain more revenue than the pool's fair share."
//!
//! Regenerates the paper's Figure-2-style curve (revenue vs. pool size
//! for several γ) from the Monte Carlo state machine, cross-checked
//! against the closed form.

use decent_chain::node::run_selfish_attack;
use decent_chain::selfish::{closed_form, profit_threshold, simulate};
use decent_sim::prelude::SimDuration;
use decent_sim::report::{fmt_f, fmt_pct};

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Selfish mining: minority pools beat their fair share (III-C P1, [30])";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Pool sizes (α) to sweep.
    pub alphas: Vec<f64>,
    /// Race-win propensities (γ) to sweep.
    pub gammas: Vec<f64>,
    /// Block discoveries per Monte Carlo run.
    pub blocks: u64,
    /// Selfish pool share (α) for the relay-network validation run.
    pub pool_share: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution shards per simulation (1 = serial). Not a sweepable
    /// parameter and absent from reports: sharding never changes
    /// results, so it must never appear in canonical output.
    pub shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            alphas: vec![0.10, 0.20, 0.25, 0.30, 1.0 / 3.0, 0.40, 0.45],
            gammas: vec![0.0, 0.5, 1.0],
            blocks: 2_000_000,
            pool_share: 0.42,
            seed: 0xE9,
            shards: 1,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            blocks: 300_000,
            ..Config::default()
        }
    }
}

/// Sweepable knobs. `pool_share` is the selfish-mining axis: it drives
/// the relay-network validation the `E9.relay-network` claim checks, so
/// sweeping it locates the share below which the attack stops paying on
/// a real propagation network.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "pool_share",
        help: "selfish pool share α in the relay-network validation (0.05-0.49)",
        get: |c| c.pool_share,
        set: |c, v| c.pool_share = v.clamp(0.05, 0.49),
    },
    Param {
        name: "blocks",
        help: "block discoveries per Monte Carlo run (min 10k)",
        get: |c| c.blocks as f64,
        set: |c, v| c.blocks = v.round().max(10_000.0) as u64,
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E9"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, exec: scenario::ExecPolicy) -> bool {
        self.shards = exec.shard_count();
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

/// Runs E9 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E9", TITLE);
    let mut max_dev: f64 = 0.0;
    for &gamma in &cfg.gammas {
        let mut t = Table::new(
            format!("Relative revenue vs. pool size (gamma = {gamma})"),
            &[
                "pool size α",
                "simulated share",
                "closed form",
                "fair share",
                "profits?",
            ],
        );
        for (i, &alpha) in cfg.alphas.iter().enumerate() {
            let sim = simulate(
                alpha,
                gamma,
                cfg.blocks,
                cfg.seed ^ ((i as u64 + 1) << 8) ^ ((gamma * 64.0) as u64),
            );
            let analytic = closed_form(alpha, gamma);
            max_dev = max_dev.max((sim.attacker_share() - analytic).abs());
            t.row([
                fmt_f(alpha),
                fmt_pct(sim.attacker_share()),
                fmt_pct(analytic),
                fmt_pct(alpha),
                (sim.attacker_share() > alpha).to_string(),
            ]);
        }
        report.table(t);
    }
    // Validation on the full relay network: gamma is not assumed but
    // emerges from block propagation.
    let (net_share, net_stale) = run_selfish_attack(
        cfg.pool_share,
        14,
        SimDuration::from_secs(60.0),
        SimDuration::from_days(if cfg.blocks > 1_000_000 { 6.0 } else { 2.0 }),
        cfg.seed ^ 0xE77,
        cfg.shards,
    );
    let mut t_net = Table::new(
        format!(
            "Network-level validation ({:.0}% pool, gamma emergent)",
            cfg.pool_share * 100.0
        ),
        &["metric", "value"],
    );
    t_net.row(["selfish revenue share".to_string(), fmt_pct(net_share)]);
    t_net.row(["fair share".to_string(), fmt_pct(cfg.pool_share)]);
    t_net.row([
        "stale-block rate under attack".to_string(),
        fmt_pct(net_stale),
    ]);
    report.table(t_net);

    let mut t2 = Table::new(
        "Profitability thresholds",
        &["γ", "threshold α (analytic)", "meaning"],
    );
    for &gamma in &cfg.gammas {
        t2.row([
            fmt_f(gamma),
            fmt_f(profit_threshold(gamma)),
            if gamma == 0.0 {
                "honest network: attack needs > 1/3"
            } else if gamma == 1.0 {
                "attacker always wins races: any size profits"
            } else {
                "partial race wins: threshold shrinks"
            }
            .to_string(),
        ]);
    }
    report.table(t2);

    let big_pool = simulate(0.40, 0.0, cfg.blocks, cfg.seed ^ 0xF00);
    let small_pool = simulate(0.25, 0.0, cfg.blocks, cfg.seed ^ 0xF01);
    report.check(
        "E9.forty-beats-fair",
        "a 40% pool beats its fair share",
        "a minority colluding pool obtains more than its fair share",
        format!("40% pool earns {}", fmt_pct(big_pool.attacker_share())),
        big_pool.attacker_share(),
        Expect::MoreThan(0.42),
    );
    report.check(
        "E9.one-third-threshold",
        "the γ=0 threshold sits at 1/3",
        "Eyal-Sirer threshold: (1-γ)/(3-2γ) = 1/3 at γ=0",
        format!(
            "25% pool earns {} (loses); 40% pool earns {} (wins)",
            fmt_pct(small_pool.attacker_share()),
            fmt_pct(big_pool.attacker_share())
        ),
        small_pool.attacker_share(),
        Expect::LessThan(0.25),
    );
    report.check(
        "E9.closed-form-match",
        "Monte Carlo matches the closed form",
        "(model validation)",
        format!("max |sim - analytic| = {}", fmt_f(max_dev)),
        max_dev,
        Expect::LessThan(0.02),
    );
    report.check_with(
        "E9.relay-network",
        "the attack survives a real relay network",
        "(gamma emerges from propagation instead of being assumed)",
        format!(
            "{:.0}% pool earns {} on the event-simulated network (stale rate {})",
            cfg.pool_share * 100.0,
            fmt_pct(net_share),
            fmt_pct(net_stale)
        ),
        net_share,
        Expect::MoreThan(0.44),
        net_stale > 0.01,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_selfish_mining() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
