//! E1 — DHT lookup latency: eMule KAD vs. BitTorrent Mainline.
//!
//! Paper (II-A, citing Jiménez et al. \[20\]): "lookups were performed
//! within 5 seconds 90% of the time in eMule's Kad, but the median
//! lookup time was around a minute in both BitTorrent DHTs."
//!
//! The measured gap is driven by deployment pathologies, not protocol
//! differences: Mainline tables were full of unreachable (NATed) nodes
//! and clients used conservative sequential lookups with long RPC
//! timeouts. We simulate both operating points on the same Kademlia
//! implementation.

use decent_overlay::id::Key;
use decent_overlay::kademlia::{build_network, KadConfig};
use decent_sim::prelude::*;

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "DHT lookup latency: eMule KAD vs. BitTorrent Mainline (II-A)";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Network size per deployment.
    pub nodes: usize,
    /// Lookups per deployment.
    pub lookups: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution shards per simulation (1 = serial). Not a sweepable
    /// parameter and absent from reports: sharding never changes
    /// results, so it must never appear in canonical output.
    pub shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            nodes: 1500,
            lookups: 400,
            seed: 0xE1,
            shards: 1,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            nodes: 400,
            lookups: 120,
            ..Config::default()
        }
    }
}

/// Sweepable knobs.
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "nodes",
        help: "network size per deployment (min 16)",
        get: |c| c.nodes as f64,
        set: |c, v| c.nodes = v.round().max(16.0) as usize,
    },
    Param {
        name: "lookups",
        help: "lookups per deployment (min 1)",
        get: |c| c.lookups as f64,
        set: |c, v| c.lookups = v.round().max(1.0) as usize,
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E1"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, exec: scenario::ExecPolicy) -> bool {
        self.shards = exec.shard_count();
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

struct Deployment {
    name: &'static str,
    kad: KadConfig,
    unresponsive: f64,
}

fn deployments() -> Vec<Deployment> {
    vec![
        Deployment {
            // eMule KAD: parallel lookups with snappy timeouts, and
            // clean routing tables — KAD verifies a contact with a
            // handshake before inserting it into a bucket (Steiner et
            // al.), so unreachable peers rarely pollute lookups.
            name: "eMule KAD",
            kad: KadConfig {
                k: 10,
                alpha: 3,
                rpc_timeout: SimDuration::from_secs(1.5),
                ..KadConfig::default()
            },
            unresponsive: 0.10,
        },
        Deployment {
            // Mainline BitTorrent: sequential lookups, long timeouts,
            // and routing tables dominated by unreachable NATed nodes
            // (Jiménez et al. measured well over half unreachable).
            name: "Mainline BT",
            kad: KadConfig {
                k: 8,
                alpha: 1,
                rpc_timeout: SimDuration::from_secs(5.0),
                ..KadConfig::default()
            },
            unresponsive: 0.65,
        },
    ]
}

/// Runs one deployment and returns the lookup-latency histogram plus
/// the engine's metrics snapshot.
fn run_deployment(cfg: &Config, dep: &Deployment, seed: u64) -> (Histogram, MetricsSnapshot) {
    let mut sim = Simulation::new(seed, UniformLatency::from_millis(30.0, 120.0));
    sim.set_shards(cfg.shards);
    let ids = build_network(&mut sim, cfg.nodes, &dep.kad, dep.unresponsive, 8, seed ^ 1);
    sim.run_until(SimTime::from_secs(1.0));
    let mut issued = 0usize;
    let mut i = 0usize;
    while issued < cfg.lookups {
        let origin = ids[i % ids.len()];
        i += 1;
        if !sim.node(origin).is_responsive() {
            continue; // NATed peers also look things up, but sampling
                      // responsive origins keeps the comparison clean
        }
        let target = Key::from_u64(0xD47 + issued as u64);
        sim.invoke(origin, |n, ctx| {
            n.start_lookup(target, false, ctx);
        });
        issued += 1;
        // Pace lookups so they do not all contend at once.
        let next = sim.now() + SimDuration::from_millis(250.0);
        sim.run_until(next);
    }
    sim.run_until(sim.now() + SimDuration::from_secs(300.0));
    let mut lat = Histogram::new();
    for &id in &ids {
        for r in &sim.node(id).results {
            lat.record(r.latency.as_secs());
        }
    }
    (lat, sim.metrics_snapshot())
}

/// Runs E1 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E1", TITLE);
    let mut table = Table::new(
        "Lookup latency by deployment",
        &[
            "deployment",
            "lookups",
            "p50 (s)",
            "p90 (s)",
            "p99 (s)",
            "% ≤ 5 s",
        ],
    );
    let mut stats = Vec::new();
    for (d, dep) in deployments().iter().enumerate() {
        let (mut lat, metrics) = run_deployment(cfg, dep, cfg.seed ^ ((d as u64 + 1) << 8));
        report.absorb_metrics(metrics);
        let within_5s =
            lat.samples().iter().filter(|&&s| s <= 5.0).count() as f64 / lat.count().max(1) as f64;
        table.row([
            dep.name.to_string(),
            lat.count().to_string(),
            fmt_f(lat.percentile(0.5)),
            fmt_f(lat.percentile(0.9)),
            fmt_f(lat.percentile(0.99)),
            fmt_pct(within_5s),
        ]);
        stats.push((lat.percentile(0.5), lat.percentile(0.9), within_5s));
    }
    report.table(table);
    let (kad_p50, _kad_p90, kad_within) = stats[0];
    let (bt_p50, _, _) = stats[1];
    report.check(
        "E1.kad-fast",
        "KAD is fast",
        "KAD lookups ≤ 5 s 90% of the time",
        format!("{} of KAD lookups ≤ 5 s", fmt_pct(kad_within)),
        kad_within,
        Expect::AtLeast(0.85),
    );
    report.check_with(
        "E1.mainline-slow",
        "Mainline is an order of magnitude slower",
        "Mainline median ≈ 1 min vs seconds on KAD",
        format!(
            "medians: KAD {}s vs Mainline {}s",
            fmt_f(kad_p50),
            fmt_f(bt_p50)
        ),
        bt_p50,
        Expect::AtLeast(10.0),
        bt_p50 >= 5.0 * kad_p50,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_the_gap() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
