//! E19 — resilience across a partition–heal cycle (fault injection).
//!
//! The paper's case against permissionless overlays and for managed
//! federations rests on behaviour *under adversity* (II-B P2, IV): open
//! overlays are praised for degrading gracefully through partitions and
//! correlated failures, while quorum systems trade that elasticity for
//! consistency — a partition silences every subset without a quorum.
//! E19 re-derives both halves with the scripted fault layer
//! (`decent_sim::fault`) instead of asserting them:
//!
//! - **Kademlia** value lookups run before, during, and after a scripted
//!   bisection partition, and through a correlated crash burst. With
//!   k-way replication the majority side keeps resolving most values and
//!   recovers fully on heal.
//! - **PBFT** (n = 7, f = 2) is split 5/2. The majority side holds
//!   exactly a commit quorum and keeps executing at millisecond latency;
//!   the minority makes zero progress until the heal — and, lacking
//!   state transfer, cannot close its execution gap even afterwards.

use decent_bft::pbft::{build_cluster, PbftConfig, PbftReplica};
use decent_overlay::id::Key;
use decent_overlay::kademlia::{build_network, KadConfig, KadNode};
use decent_sim::prelude::*;

use crate::report::{Expect, ExperimentReport, Table};
use crate::scenario::{self, Param, ParamSpec, Scenario};

/// One-line title shared by the report header and the registry listing.
pub const TITLE: &str = "Resilience across a partition-heal cycle: DHT vs. PBFT (II-B P2, IV)";

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Config {
    /// Kademlia network size.
    pub kad_nodes: usize,
    /// Values published into the DHT (stored on the k closest nodes).
    pub values: usize,
    /// Value lookups issued per phase.
    pub lookups_per_phase: usize,
    /// PBFT client requests submitted per phase.
    pub ops_per_phase: u64,
    /// Fraction of DHT nodes cut off by the partition.
    pub partition_frac: f64,
    /// Duration of the DHT partition, seconds.
    pub partition_secs: f64,
    /// Duration of the correlated crash burst, seconds.
    pub burst_secs: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Execution shards per simulation (1 = serial). Not a sweepable
    /// parameter and absent from reports: sharding never changes
    /// results, so it must never appear in canonical output.
    pub shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            kad_nodes: 400,
            values: 100,
            lookups_per_phase: 150,
            ops_per_phase: 400,
            partition_frac: 0.4,
            partition_secs: 60.0,
            burst_secs: 30.0,
            seed: 0xE19,
            shards: 1,
        }
    }
}

impl Config {
    /// A CI-sized configuration.
    pub fn quick() -> Self {
        Config {
            kad_nodes: 150,
            values: 40,
            lookups_per_phase: 60,
            ops_per_phase: 150,
            ..Config::default()
        }
    }

    /// Nodes on the minority side of the DHT cut.
    fn minority_count(&self) -> usize {
        ((self.kad_nodes as f64 * self.partition_frac).round() as usize)
            .clamp(1, self.kad_nodes - 1)
    }
}

/// Sweepable knobs: the FaultPlan itself is the axis here. The timeline
/// below is derived from these so a sweep moves the scripted faults, and
/// at the defaults every derived time lands exactly on the historical
/// schedule (partition `[60 s, 120 s)`, burst `[180 s, 210 s)`).
const PARAMS: &[Param<Config>] = &[
    Param {
        name: "partition_frac",
        help: "fraction of DHT nodes cut off by the partition (0.05-0.9)",
        get: |c| c.partition_frac,
        set: |c, v| c.partition_frac = v.clamp(0.05, 0.9),
    },
    Param {
        name: "partition_secs",
        help: "partition duration before the heal, seconds (30-600)",
        get: |c| c.partition_secs,
        set: |c, v| c.partition_secs = v.clamp(30.0, 600.0),
    },
    Param {
        name: "burst_secs",
        help: "correlated crash-burst width, seconds (10-300)",
        get: |c| c.burst_secs,
        set: |c, v| c.burst_secs = v.clamp(10.0, 300.0),
    },
    Param {
        name: "lookups_per_phase",
        help: "value lookups issued per phase (min 10)",
        get: |c| c.lookups_per_phase as f64,
        set: |c, v| c.lookups_per_phase = v.round().max(10.0) as usize,
    },
];

impl Scenario for Config {
    fn id(&self) -> &'static str {
        "E19"
    }
    fn description(&self) -> &'static str {
        TITLE
    }
    fn seed(&self) -> Option<u64> {
        Some(self.seed)
    }
    fn set_seed(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
    fn params(&self) -> Vec<ParamSpec> {
        scenario::specs(PARAMS)
    }
    fn get_param(&self, name: &str) -> Option<f64> {
        scenario::get_in(PARAMS, self, name)
    }
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        scenario::set_in(PARAMS, self, name, value)
    }
    fn set_exec(&mut self, exec: scenario::ExecPolicy) -> bool {
        self.shards = exec.shard_count();
        true
    }
    fn run(&self) -> ExperimentReport {
        run(self)
    }
}

/// The scripted DHT timeline, derived from the config. The partition
/// opens at a fixed 60 s; everything later shifts with its duration and
/// the burst width.
struct Timeline {
    part_at: f64,
    part_heal: f64,
    burst_at: f64,
    burst_end: f64,
}

impl Timeline {
    fn of(cfg: &Config) -> Timeline {
        let part_at = 60.0;
        let part_heal = part_at + cfg.partition_secs;
        let burst_at = part_heal + 60.0;
        Timeline {
            part_at,
            part_heal,
            burst_at,
            burst_end: burst_at + cfg.burst_secs,
        }
    }
}

/// Per-phase DHT measurements.
struct DhtPhase {
    name: &'static str,
    issued: usize,
    done: usize,
    found: usize,
    lat: Histogram,
}

impl DhtPhase {
    fn success(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.found as f64 / self.issued as f64
        }
    }
}

fn run_dht(cfg: &Config) -> (Vec<DhtPhase>, MetricsSnapshot) {
    let n = cfg.kad_nodes;
    let tl = Timeline::of(cfg);
    // The minority side of the cut: the last `partition_frac` of nodes.
    // The crash burst later takes out a correlated quarter (a "provider
    // outage"), chosen disjoint from the lookup origins used during the
    // burst.
    let minority_count = cfg.minority_count();
    let minority: Vec<NodeId> = (n - minority_count..n).collect();
    let burst: Vec<NodeId> = (n / 2..3 * n / 4).collect();
    let plan = FaultPlan::new()
        .partition(
            SimTime::from_secs(tl.part_at),
            SimTime::from_secs(tl.part_heal),
            minority,
        )
        .crash_burst(
            SimTime::from_secs(tl.burst_at),
            SimTime::from_secs(tl.burst_end),
            burst,
        );
    let mut sim: Simulation<KadNode> = Simulation::new(
        cfg.seed,
        Faulty::new(UniformLatency::from_millis(20.0, 80.0), plan.clone()),
    );
    sim.set_shards(cfg.shards);
    let kcfg = KadConfig::default();
    let ids = build_network(&mut sim, n, &kcfg, 0.0, 4, cfg.seed ^ 0x19);
    plan.schedule_crashes(&mut sim);
    sim.run_until(SimTime::from_secs(1.0));

    // Publish values on their k XOR-closest nodes (a completed STORE).
    let mut rng = rng_from_seed(cfg.seed ^ 0x5707);
    let keys: Vec<Key> = ids.iter().map(|&id| sim.node(id).key()).collect();
    let values: Vec<Key> = (0..cfg.values).map(|_| Key::random(&mut rng)).collect();
    for &v in &values {
        let mut ranked: Vec<usize> = (0..n).collect();
        ranked.sort_by_key(|&i| keys[i].xor_distance(&v));
        for &i in ranked.iter().take(kcfg.k) {
            sim.node_mut(ids[i]).store_value(v);
        }
    }

    // One batch of value lookups per phase, spread across the phase
    // window, from origins that are online and on the majority side of
    // whatever fault is active at the time.
    // Phase windows scale with the fault schedule; at the default
    // durations these evaluate to the historical 65-105 / 130-165 /
    // 183-203 windows exactly.
    let part_scale = cfg.partition_secs / 60.0;
    let burst_scale = cfg.burst_secs / 30.0;
    let phases: [(&str, f64, f64, usize); 4] = [
        ("pre-partition", 20.0, 50.0, 0),
        (
            "partitioned (majority)",
            tl.part_at + 5.0 * part_scale,
            tl.part_heal - 15.0 * part_scale,
            1,
        ),
        ("healed", tl.part_heal + 10.0, tl.part_heal + 45.0, 0),
        (
            "crash burst (survivors)",
            tl.burst_at + 3.0 * burst_scale,
            tl.burst_end - 7.0 * burst_scale,
            2,
        ),
    ];
    let mut out = Vec::new();
    for (pi, &(name, start, end, origin_mode)) in phases.iter().enumerate() {
        let l = cfg.lookups_per_phase;
        let dt = (end - start) / l as f64;
        let mut issued: Vec<(NodeId, u64)> = Vec::new();
        for j in 0..l {
            sim.run_until(SimTime::from_secs(start + j as f64 * dt));
            let origin = match origin_mode {
                // Anywhere; the majority (first 60%) during the cut; a
                // survivor (first half, disjoint from the burst set)
                // while the burst is active.
                1 => ids[(j * 13) % (n - minority_count)],
                2 => ids[(j * 13) % (n / 2)],
                _ => ids[(j * 13) % n],
            };
            let target = values[(pi + j) % values.len()];
            let id = sim.invoke(origin, |node, ctx| node.start_lookup(target, true, ctx));
            issued.push((origin, id));
        }
        // Let the tail of the batch finish inside its own fault regime
        // before the next phase starts (timeout budgets bound this).
        sim.run_until(SimTime::from_secs(end + 8.0));
        let mut phase = DhtPhase {
            name,
            issued: issued.len(),
            done: 0,
            found: 0,
            lat: Histogram::new(),
        };
        for (origin, lookup) in issued {
            if let Some(r) = sim.node(origin).results.iter().find(|r| r.id == lookup) {
                phase.done += 1;
                if r.found_value {
                    phase.found += 1;
                }
                phase.lat.record(r.latency.as_secs());
            }
        }
        out.push(phase);
    }
    sim.run_until(SimTime::from_secs(tl.burst_end + 30.0));
    (out, sim.metrics_snapshot())
}

/// Per-phase PBFT measurements on one replica: `(executed, commit
/// latencies)` for the batch submitted at `submitted_at`.
fn pbft_phase(replica: &PbftReplica, submitted_at: SimTime) -> (u64, Histogram) {
    let mut lat = Histogram::new();
    let mut n = 0;
    for &(sub, done) in &replica.executed {
        if sub == submitted_at {
            n += 1;
            lat.record(done.saturating_since(sub).as_secs());
        }
    }
    (n, lat)
}

struct PbftOutcome {
    maj_pre: (u64, Histogram),
    maj_during: (u64, Histogram),
    maj_post: (u64, Histogram),
    min_pre: u64,
    min_during: u64,
    min_post: u64,
    min_view_changes: u64,
}

fn run_pbft(cfg: &Config) -> (PbftOutcome, MetricsSnapshot) {
    let pcfg = PbftConfig {
        n: 7,
        ..PbftConfig::default()
    };
    // Split 5/2: replicas {0..4} hold exactly a commit quorum (2f+1 =
    // 5); replicas {5, 6} are cut off from t = 10 s to t = 25 s.
    // `build_cluster` assigns ids sequentially from 0, so the plan can
    // name them up front.
    let plan = FaultPlan::new().partition(
        SimTime::from_secs(10.0),
        SimTime::from_secs(25.0),
        vec![5, 6],
    );
    let mut sim: Simulation<PbftReplica> =
        Simulation::new(cfg.seed ^ 0xBF7, Faulty::new(LanNet::datacenter(), plan));
    sim.set_shards(cfg.shards);
    let ids = build_cluster(&mut sim, &pcfg, &[]);
    sim.run_until(SimTime::from_secs(0.5));

    let submit = |sim: &mut Simulation<PbftReplica>, t: f64, base: u64| {
        sim.run_until(SimTime::from_secs(t));
        let now = sim.now();
        for &id in &ids {
            sim.node_mut(id)
                .submit_many(base..base + cfg.ops_per_phase, now);
        }
        now
    };
    let t_pre = submit(&mut sim, 1.0, 0);
    let t_during = submit(&mut sim, 12.0, 1 << 20);
    let t_post = submit(&mut sim, 27.0, 2 << 20);
    sim.run_until(SimTime::from_secs(40.0));

    let majority = sim.node(ids[0]);
    let minority = sim.node(ids[6]);
    let out = PbftOutcome {
        maj_pre: pbft_phase(majority, t_pre),
        maj_during: pbft_phase(majority, t_during),
        maj_post: pbft_phase(majority, t_post),
        min_pre: pbft_phase(minority, t_pre).0,
        min_during: pbft_phase(minority, t_during).0,
        min_post: pbft_phase(minority, t_post).0,
        min_view_changes: minority.view_changes,
    };
    (out, sim.metrics_snapshot())
}

/// Runs E19 and produces the report.
pub fn run(cfg: &Config) -> ExperimentReport {
    let mut report = ExperimentReport::new("E19", TITLE);

    let (dht, dht_metrics) = run_dht(cfg);
    let mut t = Table::new(
        "Kademlia value lookups under scripted faults",
        &["phase", "issued", "completed", "success", "p50 latency"],
    );
    for p in &dht {
        let mut lat = p.lat.clone();
        t.row([
            p.name.to_string(),
            p.issued.to_string(),
            p.done.to_string(),
            fmt_pct(p.success()),
            format!("{:.2} s", lat.percentile(0.5)),
        ]);
    }
    report.table(t);

    let (pbft, pbft_metrics) = run_pbft(cfg);
    let mut t = Table::new(
        "PBFT (n=7, f=2) across a 5/2 partition",
        &[
            "phase",
            "majority executed",
            "commit p50",
            "minority executed",
        ],
    );
    let pbft_rows = [
        ("pre-partition", &pbft.maj_pre, pbft.min_pre),
        ("partitioned", &pbft.maj_during, pbft.min_during),
        ("healed", &pbft.maj_post, pbft.min_post),
    ];
    for (name, maj, min_execd) in pbft_rows {
        let mut lat = maj.1.clone();
        t.row([
            name.to_string(),
            maj.0.to_string(),
            format!("{:.1} ms", lat.percentile(0.5) * 1e3),
            min_execd.to_string(),
        ]);
    }
    report.table(t);

    // --- DHT claims -----------------------------------------------------
    let pre = dht[0].success();
    let during = &dht[1];
    let healed = &dht[2];
    let burst = &dht[3];
    report.check_with(
        "E19.dht-degrades-gracefully",
        "DHT keeps resolving through a partition",
        "open overlays degrade gracefully where quorum systems halt (II-B P2)",
        format!(
            "majority-side success {} during the cut (pre-partition {}); all {} lookups terminated",
            fmt_pct(during.success()),
            fmt_pct(pre),
            during.issued
        ),
        during.success(),
        Expect::AtLeast(0.75),
        during.done == during.issued,
    );
    report.check_with(
        "E19.dht-recovers-after-heal",
        "lookup success returns to baseline after the heal",
        "churn-tolerant overlays re-absorb healed segments (II-B P2)",
        format!(
            "healed success {} vs. pre-partition {}",
            fmt_pct(healed.success()),
            fmt_pct(pre)
        ),
        healed.success(),
        Expect::AtLeast(0.95),
        healed.success() >= pre - 0.05,
    );
    report.check(
        "E19.dht-survives-crash-burst",
        "k-replication rides out a correlated crash burst",
        "replication masks correlated failures short of a full replica-set loss",
        format!(
            "survivor-side success {} with a quarter of the network down",
            fmt_pct(burst.success())
        ),
        burst.success(),
        Expect::AtLeast(0.70),
    );

    // --- PBFT claims ----------------------------------------------------
    let ops = cfg.ops_per_phase as f64;
    report.check(
        "E19.pbft-stalls-in-minority",
        "the minority partition commits nothing",
        "consensus is confined to subsets holding a quorum (IV)",
        format!(
            "minority executed {} of {} requests during the cut ({} view-change attempts)",
            pbft.min_during, cfg.ops_per_phase, pbft.min_view_changes
        ),
        pbft.min_during as f64,
        Expect::AtMost(0.0),
    );
    report.check_with(
        "E19.pbft-majority-lives",
        "the quorum side keeps committing at LAN latency",
        "a 2f+1 subset makes progress regardless of the rest (IV)",
        format!(
            "majority executed {} of {} during the cut, commit p50 {:.1} ms",
            pbft.maj_during.0,
            cfg.ops_per_phase,
            pbft.maj_during.1.clone().percentile(0.5) * 1e3
        ),
        pbft.maj_during.0 as f64 / ops,
        Expect::AtLeast(0.999),
        pbft.maj_during.1.clone().percentile(0.5) < 1.0,
    );
    report.check(
        "E19.pbft-heals",
        "post-heal requests commit cluster-wide again",
        "progress resumes once the partition heals (IV)",
        format!(
            "majority executed {} of {} post-heal requests",
            pbft.maj_post.0, cfg.ops_per_phase
        ),
        pbft.maj_post.0 as f64 / ops,
        Expect::AtLeast(0.999),
    );
    report.structural(
        "E19.minority-needs-state-transfer",
        "a healed minority needs state transfer to catch up",
        "managed deployments must provision recovery, not just consensus (IV)",
        format!(
            "minority executed {} requests post-heal: it re-joins consensus on new \
             instances but cannot execute past its partition-era sequence gap \
             without a state-transfer protocol, which this PBFT model omits",
            pbft.min_post
        ),
    );
    report.structural(
        "E19.partition-drops-counted",
        "the fault layer accounts for every boundary crossing",
        "scripted faults make partition sensitivity measurable, not asserted",
        format!(
            "{} messages dropped at partition boundaries across both runs",
            dht_metrics.counter("msgs_dropped_partition")
                + pbft_metrics.counter("msgs_dropped_partition")
        ),
    );
    report.absorb_metrics(dht_metrics);
    report.absorb_metrics(pbft_metrics);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_survives_partition_heal_cycle() {
        let r = run(&Config::quick());
        assert!(r.all_hold(), "{r}");
    }
}
