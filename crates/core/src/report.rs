//! Experiment reports: tables plus paper-vs-measured findings.

use std::fmt;

pub use decent_sim::report::Table;

/// One paper-claim check inside an experiment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Short name of the check.
    pub name: String,
    /// What the paper says (with section).
    pub paper: String,
    /// What this run measured.
    pub measured: String,
    /// Whether the claim's *shape* holds in the simulation.
    pub holds: bool,
}

/// The output of one experiment run.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"E7"`.
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Regenerated result tables (the paper's "rows/series").
    pub tables: Vec<Table>,
    /// Claim checks.
    pub findings: Vec<Finding>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        ExperimentReport {
            id,
            title: title.into(),
            tables: Vec::new(),
            findings: Vec::new(),
        }
    }

    /// Adds a result table.
    pub fn table(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Records a claim check.
    pub fn finding(
        &mut self,
        name: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        holds: bool,
    ) -> &mut Self {
        self.findings.push(Finding {
            name: name.into(),
            paper: paper.into(),
            measured: measured.into(),
            holds,
        });
        self
    }

    /// True when every finding holds.
    pub fn all_hold(&self) -> bool {
        self.findings.iter().all(|f| f.holds)
    }

    /// Renders the full report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if !self.findings.is_empty() {
            out.push_str("### Paper vs. measured\n\n");
            out.push_str("| check | paper says | measured | holds |\n|---|---|---|---|\n");
            for f in &self.findings {
                out.push_str(&format!(
                    "| {} | {} | {} | {} |\n",
                    f.name,
                    f.paper,
                    f.measured,
                    if f.holds { "yes" } else { "**NO**" }
                ));
            }
        }
        out
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders() {
        let mut r = ExperimentReport::new("E0", "demo");
        let mut t = Table::new("numbers", &["x"]);
        t.row(["1"]);
        r.table(t);
        r.finding("a", "says", "got", true);
        r.finding("b", "says", "got", false);
        let md = r.to_markdown();
        assert!(md.contains("## E0 — demo"));
        assert!(md.contains("**NO**"));
        assert!(!r.all_hold());
    }
}
