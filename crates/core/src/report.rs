//! Experiment reports: result tables, claim checks with explicit
//! thresholds, engine metrics, and the machine-readable [`RunReport`]
//! that CI diffs against committed baselines.

use std::fmt;

use decent_sim::json::Json;
use decent_sim::metrics::{Metric, MetricsSnapshot};

pub use decent_sim::report::Table;

/// The threshold a measured value is checked against.
///
/// Every claim check states its acceptance region explicitly so the
/// serialized report is auditable: a reader (or the CI gate) can see
/// not just *that* a claim held but *how much headroom* it had.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Expect {
    /// `value >= x`.
    AtLeast(f64),
    /// `value <= x`.
    AtMost(f64),
    /// `value > x`.
    MoreThan(f64),
    /// `value < x`.
    LessThan(f64),
    /// `lo <= value < hi` (half-open, like `(lo..hi).contains`).
    Within {
        /// Inclusive lower edge.
        lo: f64,
        /// Exclusive upper edge.
        hi: f64,
    },
    /// A structural property of the model with no scalar threshold;
    /// the measured value records 1 (holds) or 0.
    Structural,
}

impl Expect {
    /// Whether `value` satisfies this threshold.
    pub fn eval(&self, value: f64) -> bool {
        match *self {
            Expect::AtLeast(x) => value >= x,
            Expect::AtMost(x) => value <= x,
            Expect::MoreThan(x) => value > x,
            Expect::LessThan(x) => value < x,
            Expect::Within { lo, hi } => (lo..hi).contains(&value),
            Expect::Structural => value != 0.0,
        }
    }

    /// A compact human-readable form (e.g. `>= 0.85`, `in [2.5, 8)`).
    pub fn describe(&self) -> String {
        match *self {
            Expect::AtLeast(x) => format!(">= {x}"),
            Expect::AtMost(x) => format!("<= {x}"),
            Expect::MoreThan(x) => format!("> {x}"),
            Expect::LessThan(x) => format!("< {x}"),
            Expect::Within { lo, hi } => format!("in [{lo}, {hi})"),
            Expect::Structural => "structural".to_string(),
        }
    }

    fn to_json(self) -> Json {
        match self {
            Expect::AtLeast(x) => Json::obj([("op", Json::str(">=")), ("value", Json::num(x))]),
            Expect::AtMost(x) => Json::obj([("op", Json::str("<=")), ("value", Json::num(x))]),
            Expect::MoreThan(x) => Json::obj([("op", Json::str(">")), ("value", Json::num(x))]),
            Expect::LessThan(x) => Json::obj([("op", Json::str("<")), ("value", Json::num(x))]),
            Expect::Within { lo, hi } => Json::obj([
                ("op", Json::str("in")),
                ("lo", Json::num(lo)),
                ("hi", Json::num(hi)),
            ]),
            Expect::Structural => Json::obj([("op", Json::str("structural"))]),
        }
    }
}

/// One claim check inside an experiment: a stable id, what the paper
/// says, what this run measured, and the verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Stable claim-check identifier, `"<exp>.<slug>"` (e.g.
    /// `"E7.btc-band"`). Baselines and the CI regression gate key on
    /// this, so renaming one is a baseline update.
    pub claim: String,
    /// Short name of the check.
    pub name: String,
    /// What the paper says (with section).
    pub paper: String,
    /// What this run measured, as display text.
    pub measured: String,
    /// The headline measured value the threshold applies to.
    pub value: f64,
    /// The acceptance threshold.
    pub expect: Expect,
    /// Whether the claim's *shape* holds in the simulation.
    pub holds: bool,
}

impl Finding {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::str(&self.claim)),
            ("name", Json::str(&self.name)),
            ("paper", Json::str(&self.paper)),
            ("measured", Json::str(&self.measured)),
            ("value", Json::num(self.value)),
            ("threshold", self.expect.to_json()),
            ("holds", Json::Bool(self.holds)),
        ])
    }
}

/// The output of one experiment run.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"E7"`.
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Regenerated result tables (the paper's "rows/series").
    pub tables: Vec<Table>,
    /// Claim checks.
    pub findings: Vec<Finding>,
    /// Engine metrics merged from every simulation the experiment ran.
    pub metrics: MetricsSnapshot,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        ExperimentReport {
            id,
            title: title.into(),
            tables: Vec::new(),
            findings: Vec::new(),
            metrics: MetricsSnapshot::new(),
        }
    }

    /// Adds a result table.
    pub fn table(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Registers a claim check: the verdict is `expect.eval(value)`.
    ///
    /// `claim` is the check's stable id (`"<exp>.<slug>"`); the
    /// regression baseline keys on it.
    pub fn check(
        &mut self,
        claim: impl Into<String>,
        name: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        value: f64,
        expect: Expect,
    ) -> &mut Self {
        let holds = expect.eval(value);
        self.push_finding(claim, name, paper, measured, value, expect, holds)
    }

    /// Registers a claim check with an extra side condition: the verdict
    /// is `expect.eval(value) && also`. For claims whose acceptance
    /// shape needs a second measured quantity (e.g. "at least 10 s *and*
    /// 5× slower than the alternative").
    #[allow(clippy::too_many_arguments)]
    pub fn check_with(
        &mut self,
        claim: impl Into<String>,
        name: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        value: f64,
        expect: Expect,
        also: bool,
    ) -> &mut Self {
        let holds = expect.eval(value) && also;
        self.push_finding(claim, name, paper, measured, value, expect, holds)
    }

    /// Registers a structural claim: a property built into the model
    /// rather than a measured scalar. Always holds.
    pub fn structural(
        &mut self,
        claim: impl Into<String>,
        name: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
    ) -> &mut Self {
        self.push_finding(claim, name, paper, measured, 1.0, Expect::Structural, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn push_finding(
        &mut self,
        claim: impl Into<String>,
        name: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        value: f64,
        expect: Expect,
        holds: bool,
    ) -> &mut Self {
        let claim = claim.into();
        debug_assert!(
            !self.findings.iter().any(|f| f.claim == claim),
            "duplicate claim id {claim}"
        );
        self.findings.push(Finding {
            claim,
            name: name.into(),
            paper: paper.into(),
            measured: measured.into(),
            value,
            expect,
            holds,
        });
        self
    }

    /// Merges an engine metrics snapshot (from
    /// `Simulation::metrics_snapshot`) into this report's metrics.
    pub fn absorb_metrics(&mut self, snapshot: MetricsSnapshot) -> &mut Self {
        self.metrics.merge(&snapshot);
        self
    }

    /// True when every finding holds.
    pub fn all_hold(&self) -> bool {
        self.findings.iter().all(|f| f.holds)
    }

    /// Renders the full report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if !self.findings.is_empty() {
            out.push_str("### Paper vs. measured\n\n");
            out.push_str(
                "| claim | check | paper says | measured | holds |\n|---|---|---|---|---|\n",
            );
            for f in &self.findings {
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} |\n",
                    f.claim,
                    f.name,
                    f.paper,
                    f.measured,
                    if f.holds { "yes" } else { "**NO**" }
                ));
            }
        }
        out
    }

    /// The canonical JSON form of this experiment's results.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::str(self.id)),
            ("title", Json::str(&self.title)),
            (
                "claims",
                Json::arr(self.findings.iter().map(Finding::to_json)),
            ),
            ("tables", Json::arr(self.tables.iter().map(table_to_json))),
            ("metrics", metrics_to_json(&self.metrics)),
        ])
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

fn table_to_json(t: &Table) -> Json {
    Json::obj([
        ("title", Json::str(t.title())),
        ("headers", Json::arr(t.headers().iter().map(Json::str))),
        (
            "rows",
            Json::arr(
                t.rows()
                    .iter()
                    .map(|row| Json::arr(row.iter().map(Json::str))),
            ),
        ),
    ])
}

/// Serializes a metrics snapshot: counters and peaks as integers,
/// distributions as `{count, sum, min, max, p50, p99}` summaries.
fn metrics_to_json(m: &MetricsSnapshot) -> Json {
    Json::obj(m.entries().iter().map(|(name, metric)| {
        let value = match metric {
            Metric::Counter(v) | Metric::Peak(v) => Json::int(*v),
            Metric::Dist(h) => Json::obj([
                ("count", Json::int(h.count())),
                ("sum", Json::num(h.sum() as f64)),
                ("min", Json::int(h.min())),
                ("max", Json::int(h.max())),
                ("p50", Json::int(h.percentile(0.5))),
                ("p99", Json::int(h.percentile(0.99))),
            ]),
        };
        (name.clone(), value)
    }))
}

/// Version tag of the run-report JSON schema.
pub const RUN_REPORT_SCHEMA: &str = "decent.run-report/1";
/// Version tag of the claims-baseline JSON schema.
pub const BASELINE_SCHEMA: &str = "decent.claims-baseline/1";

/// One experiment's slot in a [`RunReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentRun {
    /// The experiment's report.
    pub report: ExperimentReport,
    /// The seed override the runner applied (`None` = the experiment's
    /// built-in config seed).
    pub seed: Option<u64>,
    /// Harness-measured wall-clock milliseconds. Deliberately **not**
    /// serialized: the canonical JSON must be a deterministic function
    /// of (code, seed) so serial and parallel runs — and CI reruns —
    /// are byte-identical.
    pub wall_ms: f64,
}

/// The machine-readable result of one `repro` invocation: every
/// experiment's claims, tables, and engine metrics, plus a summary.
///
/// This is the auditable artifact CI publishes on every build and diffs
/// against `baselines/claims_quick.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// Per-experiment results, in registry order.
    pub runs: Vec<ExperimentRun>,
}

impl RunReport {
    /// Total number of claim checks across all experiments.
    pub fn total_claims(&self) -> usize {
        self.runs.iter().map(|r| r.report.findings.len()).sum()
    }

    /// True when every claim in every experiment holds.
    pub fn all_hold(&self) -> bool {
        self.runs.iter().all(|r| r.report.all_hold())
    }

    /// Flat claim-verdict view, in report order.
    pub fn verdicts(&self) -> Vec<ClaimVerdict> {
        self.runs
            .iter()
            .flat_map(|r| r.report.findings.iter())
            .map(|f| ClaimVerdict {
                id: f.claim.clone(),
                holds: f.holds,
            })
            .collect()
    }

    /// The canonical JSON document (deterministic; no wall-clock).
    pub fn to_json(&self) -> Json {
        let holding = self
            .runs
            .iter()
            .flat_map(|r| r.report.findings.iter())
            .filter(|f| f.holds)
            .count();
        Json::obj([
            ("schema", Json::str(RUN_REPORT_SCHEMA)),
            ("mode", Json::str(&self.mode)),
            (
                "experiments",
                Json::arr(self.runs.iter().map(|r| {
                    let mut obj = match r.report.to_json() {
                        Json::Obj(pairs) => pairs,
                        _ => unreachable!("report serializes to an object"),
                    };
                    let seed = match r.seed {
                        Some(s) => Json::int(s),
                        None => Json::Null,
                    };
                    obj.insert(2, ("seed".to_string(), seed));
                    Json::Obj(obj)
                })),
            ),
            (
                "summary",
                Json::obj([
                    ("experiments", Json::int(self.runs.len() as u64)),
                    ("claims", Json::int(self.total_claims() as u64)),
                    ("holding", Json::int(holding as u64)),
                ]),
            ),
        ])
    }

    /// The pretty-printed canonical JSON text.
    pub fn to_json_text(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// A claims-only baseline document (what
    /// `baselines/claims_quick.json` holds).
    pub fn baseline_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(BASELINE_SCHEMA)),
            ("mode", Json::str(&self.mode)),
            (
                "claims",
                Json::arr(self.verdicts().iter().map(|v| {
                    Json::obj([("id", Json::str(&v.id)), ("holds", Json::Bool(v.holds))])
                })),
            ),
        ])
    }

    /// A pass/fail claim table as GitHub-flavored markdown (rendered
    /// into `$GITHUB_STEP_SUMMARY` by CI).
    pub fn claims_markdown(&self) -> String {
        let holding = self.verdicts().iter().filter(|v| v.holds).count();
        let mut out = format!(
            "## Claim verdicts ({} mode): {}/{} hold\n\n",
            self.mode,
            holding,
            self.total_claims()
        );
        out.push_str("| claim | experiment | measured | threshold | verdict |\n");
        out.push_str("|---|---|---|---|---|\n");
        for r in &self.runs {
            for f in &r.report.findings {
                out.push_str(&format!(
                    "| `{}` | {} | {} | {} | {} |\n",
                    f.claim,
                    r.report.id,
                    f.measured,
                    f.expect.describe(),
                    if f.holds {
                        "✅ holds"
                    } else {
                        "❌ **FAILS**"
                    }
                ));
            }
        }
        out
    }
}

/// A `(claim id, verdict)` pair — the unit the regression gate diffs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClaimVerdict {
    /// Stable claim-check id.
    pub id: String,
    /// Whether the claim held.
    pub holds: bool,
}

/// Extracts claim verdicts from either a full run report or a
/// claims-only baseline document.
pub fn verdicts_from_json(doc: &Json) -> Result<Vec<ClaimVerdict>, String> {
    let claim_arrays: Vec<&Json> = if let Some(exps) = doc.get("experiments") {
        exps.as_arr()
            .ok_or("'experiments' is not an array")?
            .iter()
            .map(|e| e.get("claims").ok_or("experiment without 'claims'"))
            .collect::<Result<_, _>>()?
    } else if let Some(claims) = doc.get("claims") {
        vec![claims]
    } else {
        return Err("document has neither 'experiments' nor 'claims'".to_string());
    };
    let mut out = Vec::new();
    for arr in claim_arrays {
        for c in arr.as_arr().ok_or("'claims' is not an array")? {
            let id = c
                .get("id")
                .and_then(Json::as_str)
                .ok_or("claim without string 'id'")?;
            let holds = c
                .get("holds")
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("claim {id} without boolean 'holds'"))?;
            out.push(ClaimVerdict {
                id: id.to_string(),
                holds,
            });
        }
    }
    Ok(out)
}

/// Diffs a run's claim verdicts against a committed baseline.
///
/// Returns one human-readable line per regression; an empty result
/// means the gate passes. Three things fail the gate: a verdict flip in
/// either direction, a baseline claim the run no longer produces, and a
/// run claim missing from the baseline (baselines must stay in sync
/// with the claim registry).
pub fn diff_verdicts(current: &[ClaimVerdict], baseline: &[ClaimVerdict]) -> Vec<String> {
    let mut lines = Vec::new();
    for b in baseline {
        match current.iter().find(|c| c.id == b.id) {
            None => lines.push(format!(
                "missing claim: `{}` is in the baseline but this run did not produce it",
                b.id
            )),
            Some(c) if c.holds != b.holds => lines.push(format!(
                "verdict flip: `{}` was holds={} in the baseline, measured holds={}",
                b.id, b.holds, c.holds
            )),
            Some(_) => {}
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.id == c.id) {
            lines.push(format!(
                "unknown claim: `{}` is not in the baseline (new check? regenerate the baseline)",
                c.id
            ));
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders() {
        let mut r = ExperimentReport::new("E0", "demo");
        let mut t = Table::new("numbers", &["x"]);
        t.row(["1"]);
        r.table(t);
        r.check("E0.a", "a", "says", "got", 1.0, Expect::AtLeast(0.5));
        r.check("E0.b", "b", "says", "got", 0.1, Expect::AtLeast(0.5));
        let md = r.to_markdown();
        assert!(md.contains("## E0 — demo"));
        assert!(md.contains("**NO**"));
        assert!(md.contains("E0.a"));
        assert!(!r.all_hold());
    }

    #[test]
    fn expect_evaluates_thresholds() {
        assert!(Expect::AtLeast(2.0).eval(2.0));
        assert!(!Expect::AtLeast(2.0).eval(1.9));
        assert!(Expect::AtMost(2.0).eval(2.0));
        assert!(Expect::MoreThan(2.0).eval(2.1));
        assert!(!Expect::MoreThan(2.0).eval(2.0));
        assert!(Expect::LessThan(2.0).eval(1.9));
        assert!(Expect::Within { lo: 1.0, hi: 2.0 }.eval(1.0));
        assert!(!Expect::Within { lo: 1.0, hi: 2.0 }.eval(2.0));
        assert!(Expect::Structural.eval(1.0));
        assert_eq!(Expect::Within { lo: 1.0, hi: 2.0 }.describe(), "in [1, 2)");
    }

    #[test]
    fn check_with_composes_side_conditions() {
        let mut r = ExperimentReport::new("E0", "demo");
        r.check_with("E0.x", "x", "p", "m", 10.0, Expect::AtLeast(5.0), false);
        assert!(!r.all_hold(), "side condition must veto");
        r.findings.clear();
        r.check_with("E0.x", "x", "p", "m", 10.0, Expect::AtLeast(5.0), true);
        assert!(r.all_hold());
    }

    #[test]
    fn structural_claims_always_hold() {
        let mut r = ExperimentReport::new("E0", "demo");
        r.structural("E0.s", "s", "p", "by construction");
        assert!(r.all_hold());
        assert_eq!(r.findings[0].expect, Expect::Structural);
    }

    #[test]
    fn run_report_counts_and_serializes() {
        let mut r = ExperimentReport::new("E1", "one");
        r.check("E1.a", "a", "p", "m", 1.0, Expect::AtLeast(0.0));
        let run = RunReport {
            mode: "quick".to_string(),
            runs: vec![ExperimentRun {
                report: r,
                seed: Some(42),
                wall_ms: 12.5,
            }],
        };
        assert_eq!(run.total_claims(), 1);
        assert!(run.all_hold());
        let doc = run.to_json();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(RUN_REPORT_SCHEMA)
        );
        let text = run.to_json_text();
        assert!(!text.contains("wall"), "wall-clock must not serialize");
        // Round-trips through the parser with verdicts intact.
        let parsed = Json::parse(&text).unwrap();
        let verdicts = verdicts_from_json(&parsed).unwrap();
        assert_eq!(verdicts, run.verdicts());
        // Baseline document parses the same verdicts.
        let base = verdicts_from_json(&run.baseline_json()).unwrap();
        assert_eq!(base, verdicts);
        // Markdown table mentions the claim.
        assert!(run.claims_markdown().contains("`E1.a`"));
    }

    #[test]
    fn diff_detects_flips_missing_and_unknown() {
        let cur = vec![
            ClaimVerdict {
                id: "E1.a".into(),
                holds: true,
            },
            ClaimVerdict {
                id: "E1.b".into(),
                holds: false,
            },
        ];
        let same = diff_verdicts(&cur, &cur);
        assert!(same.is_empty(), "{same:?}");

        let mut flipped = cur.clone();
        flipped[1].holds = true;
        let lines = diff_verdicts(&cur, &flipped);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("verdict flip"), "{lines:?}");

        let baseline_extra = vec![
            cur[0].clone(),
            cur[1].clone(),
            ClaimVerdict {
                id: "E9.gone".into(),
                holds: true,
            },
        ];
        let lines = diff_verdicts(&cur, &baseline_extra);
        assert!(
            lines.iter().any(|l| l.contains("missing claim")),
            "{lines:?}"
        );

        let baseline_short = vec![cur[0].clone()];
        let lines = diff_verdicts(&cur, &baseline_short);
        assert!(
            lines.iter().any(|l| l.contains("unknown claim")),
            "{lines:?}"
        );
    }
}
