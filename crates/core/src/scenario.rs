//! The [`Scenario`] trait: one uniform surface over every experiment.
//!
//! Each `experiments::eNN` module used to be a free-standing
//! `Config` + `run()` pair, wired together by a `macro_rules!` dispatch
//! and two hand-maintained `ALL`/`DESCRIPTIONS` arrays. This module
//! replaces all of that with a trait implemented *by the config types
//! themselves* and a single factory registry ([`build`] / [`all`] /
//! [`ids`]) the `repro --list` output and the dispatch all derive
//! from.
//!
//! A scenario exposes:
//!
//! - identity: [`Scenario::id`] and [`Scenario::description`] (the same
//!   title string the experiment's report header uses, so the listing
//!   can never drift from the reports);
//! - seeding: [`Scenario::seed`] / [`Scenario::set_seed`]. `set_seed`
//!   returns whether the scenario actually consumes the seed — E10 is
//!   closed-form arithmetic with no RNG, so a `--seed` override is
//!   visibly a no-op there instead of a silently accepted one;
//! - a typed parameter map ([`Scenario::params`]): named `f64`
//!   getter/setter views over the config's sweepable knobs, which is
//!   what makes generic sensitivity analysis
//!   ([`crate::sensitivity`]) possible without bespoke per-experiment
//!   code;
//! - execution: [`Scenario::run`] produces the
//!   [`ExperimentReport`].
//!
//! Integer-valued knobs round-trip exactly through their `f64` views
//! (`get` widens, `set` rounds), so setting a parameter to its current
//! value is a strict no-op and a one-point sweep reproduces a plain run
//! byte-for-byte.

use crate::experiments::{
    e01, e02, e03, e04, e05, e06, e07, e08, e09, e10, e11, e12, e13, e14, e15, e16, e17, e18, e19,
};
use crate::report::ExperimentReport;

/// A named, documented `f64` view over one sweepable knob of a config
/// type `C`. Experiment modules declare a `&[Param<Config>]` table and
/// forward the trait's param methods to it via [`specs`], [`get_in`]
/// and [`set_in`].
pub struct Param<C> {
    /// Parameter name (stable: `repro --sweep EXP:name=..` keys on it).
    pub name: &'static str,
    /// One-line description shown by `repro --list`.
    pub help: &'static str,
    /// Reads the knob as an `f64`.
    pub get: fn(&C) -> f64,
    /// Writes the knob from an `f64` (rounding/clamping as the field
    /// requires; must round-trip `set(get())` exactly).
    pub set: fn(&mut C, f64),
}

/// A parameter's name and help text, detached from its config type —
/// what [`Scenario::params`] hands to callers that only hold a trait
/// object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamSpec {
    /// Parameter name.
    pub name: &'static str,
    /// One-line description.
    pub help: &'static str,
}

/// Type-erased specs for a module's param table.
pub fn specs<C>(params: &[Param<C>]) -> Vec<ParamSpec> {
    params
        .iter()
        .map(|p| ParamSpec {
            name: p.name,
            help: p.help,
        })
        .collect()
}

/// Reads the named parameter from `cfg`, if the table declares it.
pub fn get_in<C>(params: &[Param<C>], cfg: &C, name: &str) -> Option<f64> {
    params.iter().find(|p| p.name == name).map(|p| (p.get)(cfg))
}

/// Writes the named parameter into `cfg`. Rejects unknown names (the
/// error lists what *is* sweepable) and non-finite values.
pub fn set_in<C>(params: &[Param<C>], cfg: &mut C, name: &str, value: f64) -> Result<(), String> {
    if !value.is_finite() {
        return Err(format!("parameter {name} must be finite, got {value}"));
    }
    match params.iter().find(|p| p.name == name) {
        Some(p) => {
            (p.set)(cfg, value);
            Ok(())
        }
        None => {
            let known: Vec<&str> = params.iter().map(|p| p.name).collect();
            Err(if known.is_empty() {
                format!("unknown parameter {name} (this scenario has no sweepable parameters)")
            } else {
                format!("unknown parameter {name} (sweepable: {})", known.join(", "))
            })
        }
    }
}

/// How a scenario should *execute* — knobs that change wall-clock
/// behaviour but, by the engine's determinism contract, never results.
///
/// Kept strictly out of [`Scenario::params`] and out of every report:
/// a sharded run must serialize byte-identically to a serial one, so
/// nothing here may leak into canonical output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Worker shards per simulation (`0` or `1` = serial). Applied via
    /// [`Simulation::set_shards`](decent_sim::engine::Simulation::set_shards)
    /// by scenarios whose node state is `Send`.
    pub shards: usize,
}

impl ExecPolicy {
    /// Serial execution (the default).
    pub fn serial() -> Self {
        ExecPolicy::default()
    }

    /// Sharded execution across `shards` workers.
    pub fn sharded(shards: usize) -> Self {
        ExecPolicy { shards }
    }

    /// The shard count to pass to `Simulation::set_shards` (never 0).
    pub fn shard_count(&self) -> usize {
        self.shards.max(1)
    }
}

/// One experiment behind a uniform, object-safe surface: identity,
/// seeding, a typed parameter map, and execution.
///
/// Implemented by each experiment's `Config` type; constructed through
/// the registry ([`build`] / [`all`]) at either scale (`quick` = CI,
/// default = paper).
pub trait Scenario: Send {
    /// Stable experiment id (`"E1"` … `"E19"`).
    fn id(&self) -> &'static str;

    /// One-line title — the same string the experiment's report header
    /// carries, so `repro --list` and the reports cannot drift apart.
    fn description(&self) -> &'static str;

    /// The base RNG seed the run derives its streams from, or `None`
    /// for closed-form scenarios with no RNG (E10).
    fn seed(&self) -> Option<u64>;

    /// Overrides the base seed. Returns whether the scenario consumes
    /// it — `false` means the run is seed-independent and the override
    /// had no effect (surfaced in `repro --list` instead of being
    /// silently accepted).
    fn set_seed(&mut self, seed: u64) -> bool;

    /// The sweepable knobs this scenario exposes.
    fn params(&self) -> Vec<ParamSpec>;

    /// Reads a knob by name (`None` = not a declared parameter).
    fn get_param(&self, name: &str) -> Option<f64>;

    /// Writes a knob by name; errors name the sweepable set.
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String>;

    /// Applies an execution policy (`repro --shards N`).
    ///
    /// Returns whether the scenario honours it. Every registered
    /// experiment now does — all node state is `Send` — so the default
    /// `false` exists only as a guard for future scenarios that cannot
    /// shard; closed-form scenarios with no simulation (E10) honour it
    /// vacuously. Either way the results are byte-identical; only
    /// wall-clock changes.
    fn set_exec(&mut self, exec: ExecPolicy) -> bool {
        let _ = exec;
        false
    }

    /// Runs the experiment on the current config.
    fn run(&self) -> ExperimentReport;
}

/// Builds one scenario at quick (CI) or default (paper) scale.
type Factory = fn(bool) -> Box<dyn Scenario>;

/// The experiment registry: one factory per experiment, in id order.
/// This is the single source of truth — ids ([`ids`]), listings, and
/// dispatch ([`build`]) all derive from it. E1–E15 reproduce the
/// paper's explicit quantitative claims; E16–E18 cover the secondary
/// claims it makes in passing (nothing-at-stake, layer-2
/// centralization, dapp congestion); E19 stresses both architectures
/// with scripted fault injection.
const FACTORIES: [Factory; 19] = [
    |q| {
        Box::new(if q {
            e01::Config::quick()
        } else {
            e01::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e02::Config::quick()
        } else {
            e02::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e03::Config::quick()
        } else {
            e03::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e04::Config::quick()
        } else {
            e04::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e05::Config::quick()
        } else {
            e05::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e06::Config::quick()
        } else {
            e06::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e07::Config::quick()
        } else {
            e07::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e08::Config::quick()
        } else {
            e08::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e09::Config::quick()
        } else {
            e09::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e10::Config::quick()
        } else {
            e10::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e11::Config::quick()
        } else {
            e11::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e12::Config::quick()
        } else {
            e12::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e13::Config::quick()
        } else {
            e13::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e14::Config::quick()
        } else {
            e14::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e15::Config::quick()
        } else {
            e15::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e16::Config::quick()
        } else {
            e16::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e17::Config::quick()
        } else {
            e17::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e18::Config::quick()
        } else {
            e18::Config::default()
        })
    },
    |q| {
        Box::new(if q {
            e19::Config::quick()
        } else {
            e19::Config::default()
        })
    },
];

/// Number of registered scenarios.
pub fn count() -> usize {
    FACTORIES.len()
}

/// Registered experiment ids, in registry order.
pub fn ids() -> Vec<&'static str> {
    FACTORIES.iter().map(|f| f(true).id()).collect()
}

/// Builds every scenario at the given scale, in registry order.
pub fn all(quick: bool) -> Vec<Box<dyn Scenario>> {
    FACTORIES.iter().map(|f| f(quick)).collect()
}

/// Builds one scenario by id (case-insensitive: `"e19"` works).
/// Returns `None` for an unknown id.
pub fn build(id: &str, quick: bool) -> Option<Box<dyn Scenario>> {
    FACTORIES
        .iter()
        .map(|f| f(quick))
        .find(|s| s.id().eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_well_formed() {
        let ids = ids();
        assert_eq!(ids.len(), count());
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(*id, format!("E{}", i + 1), "registry must stay in id order");
            assert!(ids.iter().filter(|x| **x == *id).count() == 1, "dup {id}");
        }
    }

    #[test]
    fn build_is_case_insensitive_and_rejects_unknown() {
        assert_eq!(build("e19", true).unwrap().id(), "E19");
        assert_eq!(build("E7", false).unwrap().id(), "E7");
        assert!(build("E99", true).is_none());
        assert!(build("", true).is_none());
    }

    #[test]
    fn params_are_unique_and_round_trip_at_defaults() {
        for s in all(true).iter_mut() {
            let specs = s.params();
            for (i, p) in specs.iter().enumerate() {
                assert!(!p.help.is_empty(), "{}:{} has no help", s.id(), p.name);
                assert!(
                    !specs[..i].iter().any(|q| q.name == p.name),
                    "{} declares parameter {} twice",
                    s.id(),
                    p.name
                );
                // Integer and float knobs alike must round-trip their
                // current value exactly: a one-point sweep at the
                // default must be a strict no-op on the config.
                let v = s.get_param(p.name).expect("declared param readable");
                s.set_param(p.name, v).expect("declared param writable");
                assert_eq!(
                    s.get_param(p.name),
                    Some(v),
                    "{}:{} does not round-trip",
                    s.id(),
                    p.name
                );
            }
        }
    }

    #[test]
    fn set_param_rejects_unknown_names_and_non_finite_values() {
        let mut s = build("E4", true).unwrap();
        let err = s.set_param("frobnication", 1.0).unwrap_err();
        assert!(err.contains("unknown parameter"), "{err}");
        assert!(err.contains("session_mins"), "error lists knobs: {err}");
        let err = s.set_param("nodes", f64::NAN).unwrap_err();
        assert!(err.contains("finite"), "{err}");
    }

    #[test]
    fn e10_is_visibly_seedless() {
        let mut s = build("E10", true).unwrap();
        assert_eq!(s.seed(), None);
        assert!(!s.set_seed(42), "E10 must report the seed as unused");
        // Every other scenario consumes its seed.
        for mut s in all(true) {
            if s.id() != "E10" {
                assert!(s.set_seed(7), "{} should use seeds", s.id());
                assert_eq!(s.seed(), Some(7));
            }
        }
    }
}
