//! Ablation studies for the design choices the simulators bake in.
//!
//! Each study sweeps one parameter that a protocol designer actually
//! chose (Kademlia's α, PBFT's batch size, gossip fanout, Bitcoin's
//! block size) and regenerates the trade-off curve that justified the
//! choice. Run them via `cargo bench --bench ablations` or the unit
//! tests.

use decent_bft::pbft::{saturation_run, PbftConfig};
use decent_chain::node::{
    build_network as build_chain, report as chain_report, ChainNodeConfig, NetworkConfig,
};
use decent_chain::pow::PowParams;
use decent_overlay::gossip::{self, GossipConfig};
use decent_overlay::id::Key;
use decent_overlay::kademlia::{self, KadConfig};
use decent_sim::prelude::*;

/// Sweeps Kademlia's lookup parallelism α and reports
/// `(alpha, p50 latency s, mean RPCs per lookup)` rows.
///
/// More parallelism masks slow/dead peers at the price of extra RPCs —
/// the reason deployed clients picked α = 3.
pub fn kademlia_parallelism(
    nodes: usize,
    lookups: usize,
    unresponsive: f64,
    seed: u64,
) -> Vec<(usize, f64, f64)> {
    [1usize, 2, 3, 5]
        .iter()
        .map(|&alpha| {
            let mut sim = Simulation::new(
                seed ^ alpha as u64,
                UniformLatency::from_millis(30.0, 120.0),
            );
            let cfg = KadConfig {
                k: 10,
                alpha,
                ..KadConfig::default()
            };
            let ids = kademlia::build_network(&mut sim, nodes, &cfg, unresponsive, 8, seed ^ 99);
            sim.run_until(SimTime::from_secs(1.0));
            let mut issued = 0;
            let mut i = 0;
            while issued < lookups {
                let origin = ids[i % ids.len()];
                i += 1;
                if !sim.node(origin).is_responsive() {
                    continue;
                }
                let t = Key::from_u64(3000 + issued as u64);
                sim.invoke(origin, |n, ctx| {
                    n.start_lookup(t, false, ctx);
                });
                issued += 1;
                let next = sim.now() + SimDuration::from_millis(200.0);
                sim.run_until(next);
            }
            sim.run_until(sim.now() + SimDuration::from_secs(120.0));
            let mut lat = Histogram::new();
            let mut rpcs = Histogram::new();
            for &id in &ids {
                for r in &sim.node(id).results {
                    lat.record(r.latency.as_secs());
                    rpcs.record(r.rpcs as f64);
                }
            }
            (alpha, lat.percentile(0.5), rpcs.mean())
        })
        .collect()
}

/// Sweeps PBFT's batch size and reports `(batch, tx/s, p50 commit s)`.
///
/// Without batching the O(n²) vote traffic is paid per operation;
/// batching amortizes it — the difference between tens and tens of
/// thousands of operations per second.
pub fn pbft_batching(n: usize, seed: u64) -> Vec<(usize, f64, f64)> {
    [16usize, 64, 256, 1024]
        .iter()
        .map(|&batch| {
            let cfg = PbftConfig {
                n,
                batch_max: batch,
                ..PbftConfig::default()
            };
            let (tps, lat) = saturation_run(
                &cfg,
                200_000 / n as u64,
                SimDuration::from_secs(2.0),
                seed ^ batch as u64,
            );
            (batch, tps, lat.p50)
        })
        .collect()
}

/// Sweeps the gossip fanout and reports `(fanout, delivery ratio,
/// messages per node)` — the epidemic threshold in one table.
pub fn gossip_fanout(nodes: usize, seed: u64) -> Vec<(usize, f64, f64)> {
    (1usize..=6)
        .map(|fanout| {
            let mut sim = Simulation::new(
                seed ^ fanout as u64,
                UniformLatency::from_millis(20.0, 100.0),
            );
            let graph = Graph::random_outbound(nodes, 8, &mut rng_from_seed(seed ^ 7));
            let cfg = GossipConfig {
                fanout,
                ..GossipConfig::default()
            };
            let ids = gossip::build_network(&mut sim, &graph, cfg);
            sim.run_until(SimTime::from_secs(0.1));
            sim.invoke(ids[0], |n, ctx| n.publish(1, ctx));
            sim.run_until(SimTime::from_secs(30.0));
            let ratio = gossip::delivery_ratio(&sim, &ids, 1);
            let msgs = sim.stats().sent as f64 / nodes as f64;
            (fanout, ratio, msgs)
        })
        .collect()
}

/// The block-size debate: sweeps Bitcoin's block capacity at a fixed
/// 600 s interval and reports `(max txs per block, tx/s, stale rate)`.
///
/// Bigger blocks buy throughput linearly but propagate slower, so the
/// stale rate climbs — the trade-off behind the 1 MB limit wars.
pub fn block_size(nodes: usize, hours: f64, seed: u64) -> Vec<(u32, f64, f64)> {
    [500u32, 2_000, 16_000]
        .iter()
        .map(|&max_txs| {
            let mut rng = rng_from_seed(seed ^ max_txs as u64);
            let net = RegionNet::sampled(nodes, &Region::BITCOIN_2019_DISTRIBUTION, &mut rng);
            let mut sim = Simulation::new(seed ^ (max_txs as u64) << 8, net);
            let cfg = NetworkConfig {
                nodes,
                miner_fraction: 0.3,
                node: ChainNodeConfig {
                    params: PowParams::bitcoin(),
                    max_block_txs: max_txs,
                    tx_rate: 1000.0,
                    ..ChainNodeConfig::default()
                },
                ..NetworkConfig::default()
            };
            let ids = build_chain(&mut sim, &cfg, seed ^ 11);
            sim.run_until(SimTime::from_hours(hours));
            let r = chain_report(&sim, ids[nodes - 1]);
            (max_txs, r.tps, r.stale_rate)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_masks_timeouts() {
        let rows = kademlia_parallelism(250, 40, 0.4, 0xAB1);
        let alpha1 = rows[0];
        let alpha3 = rows[2];
        // α=3 is much faster than α=1 in a polluted network...
        assert!(
            alpha3.1 * 1.5 < alpha1.1,
            "alpha3 p50 {} vs alpha1 p50 {}",
            alpha3.1,
            alpha1.1
        );
        // ...but costs more RPCs.
        assert!(alpha3.2 > alpha1.2, "parallelism costs traffic");
    }

    #[test]
    fn batching_amortizes_vote_traffic() {
        let rows = pbft_batching(4, 0xAB2);
        let small = rows[0];
        let big = rows[3];
        assert!(
            big.1 > 5.0 * small.1,
            "batch {} gives {} tx/s, batch {} gives {} tx/s",
            small.0,
            small.1,
            big.0,
            big.1
        );
    }

    #[test]
    fn gossip_has_an_epidemic_threshold() {
        let rows = gossip_fanout(300, 0xAB3);
        let f1 = rows[0];
        let f4 = rows[3];
        assert!(f1.1 < 0.9, "fanout 1 dies out: {}", f1.1);
        assert!(f4.1 > 0.95, "fanout 4 blankets: {}", f4.1);
        assert!(f4.2 > f1.2, "coverage costs messages");
    }

    #[test]
    fn bigger_blocks_trade_forks_for_throughput() {
        let rows = block_size(40, 6.0, 0xAB4);
        let small = rows[0];
        let big = rows[2];
        assert!(big.1 > 5.0 * small.1, "throughput should scale with size");
        assert!(
            big.2 >= small.2,
            "stale rate must not fall with size: {} vs {}",
            big.2,
            small.2
        );
    }
}
