//! The catalog of quantitative claims made by the paper, mapped to the
//! experiments that reproduce them.
//!
//! A position paper has no tables; this catalog *is* its evaluation
//! section, extracted claim by claim.

/// One quantitative claim from the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Claim {
    /// Stable identifier.
    pub id: &'static str,
    /// Paper section the claim appears in.
    pub section: &'static str,
    /// The claim as stated.
    pub statement: &'static str,
    /// The experiment that reproduces it.
    pub experiment: &'static str,
}

/// Every claim the laboratory reproduces.
pub const CLAIMS: &[Claim] = &[
    Claim {
        id: "C1",
        section: "II-A",
        statement: "Lookups completed within 5 s 90% of the time in eMule's KAD, \
                    but median lookup time was around a minute in BitTorrent DHTs \
                    (Jiménez et al.)",
        experiment: "E1",
    },
    Claim {
        id: "C2",
        section: "II-B P1",
        statement: "Free riding was extensively reported on Gnutella: most peers \
                    share nothing and a tiny fraction serves most queries",
        experiment: "E2",
    },
    Claim {
        id: "C3",
        section: "II-B P1",
        statement: "BitTorrent mitigated free riding with tit-for-tat: peers that \
                    do not contribute are not reciprocated",
        experiment: "E3",
    },
    Claim {
        id: "C4",
        section: "II-B P2",
        statement: "Churn and instability cause performance problems; stable cloud \
                    servers have no rival in P2P networks",
        experiment: "E4",
    },
    Claim {
        id: "C5",
        section: "II-B P3",
        statement: "Open overlays where peers assign their own identities are prone \
                    to sybil attacks",
        experiment: "E5",
    },
    Claim {
        id: "C6",
        section: "II-B",
        statement: "For networks of 10K-100K nodes, full membership and one-hop \
                    routing is feasible and preferable to multi-hop lookups",
        experiment: "E6",
    },
    Claim {
        id: "C7",
        section: "III-C P2",
        statement: "VISA processes 24,000 tx/s; Bitcoin 3.3-7 tx/s; Ethereum ~15 tx/s",
        experiment: "E7",
    },
    Claim {
        id: "C8",
        section: "III-C P1",
        statement: "In 2013 six mining pools controlled 75% of Bitcoin hashing \
                    power; desktop mining became impractical",
        experiment: "E8",
    },
    Claim {
        id: "C9",
        section: "III-C P1",
        statement: "A minority colluding pool can obtain more revenue than its fair \
                    share (selfish mining, Eyal & Sirer)",
        experiment: "E9",
    },
    Claim {
        id: "C10",
        section: "III-B",
        statement: "Bitcoin energy consumption peaked at ~70 TWh/yr in 2018, \
                    roughly Austria's consumption",
        experiment: "E10",
    },
    Claim {
        id: "C11",
        section: "III-C P2",
        statement: "The scalability trilemma: a blockchain can only have two of \
                    scalability, decentralization, security (Buterin)",
        experiment: "E11",
    },
    Claim {
        id: "C12",
        section: "IV",
        statement: "Permissioned BFT replication avoids proof-of-work and performs; \
                    consensus can run among a subset of nodes (Fabric)",
        experiment: "E12",
    },
    Claim {
        id: "C13",
        section: "V / Fig. 1",
        statement: "Edge-centric computing with permissioned blockchains moves \
                    control to the edge and beats the centralized cloud on latency",
        experiment: "E13",
    },
    Claim {
        id: "C14",
        section: "III-A",
        statement: "Ephemeral forks quickly disappear; difficulty adjusts to keep a \
                    10-minute block interval",
        experiment: "E14",
    },
    Claim {
        id: "C15",
        section: "III-C P1",
        statement: "As transaction history grows, full nodes need ever more storage \
                    and bandwidth; light clients do not validate",
        experiment: "E15",
    },
    Claim {
        id: "C16",
        section: "III-C P2",
        statement: "Proof-of-X alternatives (stake, space, activity) do not fully \
                    address the problem: it costs nothing to 'kill' a \
                    proof-of-stake currency (Houy)",
        experiment: "E16",
    },
    Claim {
        id: "C17",
        section: "III-C P2",
        statement: "Layer-2 / off-chain solutions (Lightning, Plasma, EOS) increase \
                    performance by processing transactions on a much smaller set \
                    of peers — a more centralized design",
        experiment: "E17",
    },
    Claim {
        id: "C18",
        section: "III-C P3",
        statement: "CryptoKitties went viral, traffic rose sixfold, and many \
                    transactions failed; on-chain state is extremely expensive",
        experiment: "E18",
    },
    Claim {
        id: "C19",
        section: "II-B P2, IV",
        statement: "Open overlays degrade gracefully under partitions and churn, \
                    while consensus among a permissioned subset halts in any \
                    partition lacking a quorum and resumes only on heal",
        experiment: "E19",
    },
];

/// Looks up a claim by id.
pub fn claim(id: &str) -> Option<&'static Claim> {
    CLAIMS.iter().find(|c| c.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_unique() {
        assert_eq!(CLAIMS.len(), 19);
        let mut ids: Vec<&str> = CLAIMS.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 19);
        // Every claim maps to a distinct experiment E1..E19.
        let mut exps: Vec<&str> = CLAIMS.iter().map(|c| c.experiment).collect();
        exps.sort_unstable();
        exps.dedup();
        assert_eq!(exps.len(), 19);
    }

    #[test]
    fn lookup_works() {
        assert_eq!(claim("C7").unwrap().experiment, "E7");
        assert!(claim("C99").is_none());
    }
}
