//! Sweep-driven sensitivity analysis: how robust is each claim to the
//! knob you doubt?
//!
//! A point run ([`crate::experiments::run_report`]) answers "does the
//! claim hold at the paper's parameters". This module answers the next
//! question a skeptical reader asks: *would it still hold if churn were
//! faster, the selfish pool smaller, the partition wider?* It takes a
//! (scenario, parameter, grid) triple — parsed from the CLI syntax
//! `EXP:param=lo..hi:steps` by [`SweepSpec::parse`] — fans the grid out
//! via [`decent_sim::sweep::sweep_with`], and folds the per-point
//! reports into per-claim **robustness curves**: the claim's headline
//! value and verdict at every grid point, plus the *crossover
//! intervals* where the verdict flips between adjacent points.
//!
//! Determinism: grid point `i` derives its seed as
//! [`point_seed`]`(base, i)`, where `base` is the `--seed` override or
//! the scenario's built-in seed. `point_seed(base, 0) == base`, so a
//! one-point sweep reproduces the plain run byte-for-byte, and the
//! JSON document ([`SweepReport::to_json_text`]) contains no
//! wall-clock, so serial and `--jobs N` sweeps are byte-identical.

use decent_sim::json::Json;
use decent_sim::sweep::{grid, sweep_with};

use crate::report::ExperimentReport;
use crate::scenario;

/// Version tag of the sweep-report JSON schema.
pub const SWEEP_REPORT_SCHEMA: &str = "decent.sweep-report/1";

/// A parsed sweep request: which experiment, which knob, what grid.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// Experiment id (as given; resolved case-insensitively).
    pub exp: String,
    /// Parameter name (must be in the scenario's param map).
    pub param: String,
    /// Grid lower edge.
    pub lo: f64,
    /// Grid upper edge.
    pub hi: f64,
    /// Number of grid points (>= 1, evenly spaced, inclusive).
    pub steps: usize,
}

impl SweepSpec {
    /// Parses the CLI sweep syntax `EXP:param=lo..hi:steps`, e.g.
    /// `E19:partition_frac=0.1..0.5:3`.
    pub fn parse(text: &str) -> Result<SweepSpec, String> {
        let usage = "expected EXP:param=lo..hi:steps (e.g. E19:partition_frac=0.1..0.5:3)";
        let (exp, rest) = text.split_once(':').ok_or_else(|| usage.to_string())?;
        let (assign, steps) = rest.rsplit_once(':').ok_or_else(|| usage.to_string())?;
        let (param, range) = assign.split_once('=').ok_or_else(|| usage.to_string())?;
        let (lo, hi) = range.split_once("..").ok_or_else(|| usage.to_string())?;
        if exp.is_empty() || param.is_empty() {
            return Err(usage.to_string());
        }
        let lo: f64 = lo
            .parse()
            .map_err(|_| format!("bad grid lower edge {lo:?}: {usage}"))?;
        let hi: f64 = hi
            .parse()
            .map_err(|_| format!("bad grid upper edge {hi:?}: {usage}"))?;
        if !lo.is_finite() || !hi.is_finite() {
            return Err("grid edges must be finite".to_string());
        }
        if hi < lo {
            return Err(format!("grid upper edge {hi} is below lower edge {lo}"));
        }
        let steps: usize = steps
            .parse()
            .map_err(|_| format!("bad step count {steps:?}: {usage}"))?;
        if steps == 0 {
            return Err("a sweep needs at least one grid point".to_string());
        }
        Ok(SweepSpec {
            exp: exp.to_string(),
            param: param.to_string(),
            lo,
            hi,
            steps,
        })
    }
}

/// The seed for grid point `i`, derived from the base seed so every
/// point gets an independent stream while point 0 keeps the base seed
/// exactly (a one-point sweep *is* the plain run).
pub fn point_seed(base: u64, i: usize) -> u64 {
    base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One grid point of a sweep: the parameter value that was applied and
/// the full experiment report measured there.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The grid value requested for the parameter.
    pub requested: f64,
    /// The value actually in effect after the setter's rounding or
    /// clamping (read back through the param map).
    pub applied: f64,
    /// The seed the point ran with (`None` for seedless scenarios).
    pub seed: Option<u64>,
    /// The experiment report at this point.
    pub report: ExperimentReport,
}

/// One claim's trajectory across the grid.
#[derive(Clone, Debug, PartialEq)]
pub struct CurvePoint {
    /// Applied parameter value at this grid point.
    pub param: f64,
    /// The claim's headline measured value there.
    pub value: f64,
    /// Whether the claim held there.
    pub holds: bool,
}

/// A verdict flip between two adjacent grid points: somewhere in
/// `(lo, hi]` the claim crosses from `from` to `to`.
#[derive(Clone, Debug, PartialEq)]
pub struct Crossover {
    /// Applied parameter value on the left of the flip.
    pub lo: f64,
    /// Applied parameter value on the right of the flip.
    pub hi: f64,
    /// Verdict at `lo`.
    pub from: bool,
    /// Verdict at `hi`.
    pub to: bool,
}

/// A per-claim robustness curve: verdict + headline value at every grid
/// point, and the crossover intervals where the verdict flips.
#[derive(Clone, Debug, PartialEq)]
pub struct RobustnessCurve {
    /// Stable claim-check id (e.g. `"E19.pbft-stalls-in-minority"`).
    pub claim: String,
    /// One point per grid point, in grid order.
    pub points: Vec<CurvePoint>,
    /// Verdict flips between adjacent grid points (empty = the claim is
    /// robust across the whole grid).
    pub crossovers: Vec<Crossover>,
}

impl RobustnessCurve {
    fn from_points(claim: &str, points: &[SweepPoint]) -> RobustnessCurve {
        let pts: Vec<CurvePoint> = points
            .iter()
            .filter_map(|p| {
                p.report
                    .findings
                    .iter()
                    .find(|f| f.claim == claim)
                    .map(|f| CurvePoint {
                        param: p.applied,
                        value: f.value,
                        holds: f.holds,
                    })
            })
            .collect();
        let crossovers = pts
            .windows(2)
            .filter(|w| w[0].holds != w[1].holds)
            .map(|w| Crossover {
                lo: w[0].param,
                hi: w[1].param,
                from: w[0].holds,
                to: w[1].holds,
            })
            .collect();
        RobustnessCurve {
            claim: claim.to_string(),
            points: pts,
            crossovers,
        }
    }
}

/// The result of one sweep: every grid point's report plus the folded
/// per-claim robustness curves.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// Experiment id (registry form, e.g. `"E19"`).
    pub exp: &'static str,
    /// Experiment title.
    pub title: &'static str,
    /// The swept parameter's name.
    pub param: String,
    /// The parameter's help text from the param map.
    pub param_help: String,
    /// The spec the sweep ran (grid edges and step count).
    pub spec: SweepSpec,
    /// The `--seed` override, if any (`None` = built-in config seed).
    pub seed_override: Option<u64>,
    /// Per-grid-point results, in grid order.
    pub points: Vec<SweepPoint>,
    /// Per-claim robustness curves, in first-report claim order.
    pub curves: Vec<RobustnessCurve>,
}

impl SweepReport {
    /// True when every claim holds at every grid point.
    pub fn all_hold(&self) -> bool {
        self.points.iter().all(|p| p.report.all_hold())
    }

    /// Claims whose verdict flips somewhere on the grid.
    pub fn flipping_claims(&self) -> Vec<&RobustnessCurve> {
        self.curves
            .iter()
            .filter(|c| !c.crossovers.is_empty())
            .collect()
    }

    /// The canonical JSON document (deterministic; no wall-clock).
    ///
    /// Seeds are serialized as decimal *strings*: derived point seeds
    /// use the full `u64` range, which JSON `f64` numbers cannot
    /// represent exactly past 2^53.
    pub fn to_json(&self) -> Json {
        let seed = match self.seed_override {
            Some(s) => Json::str(s.to_string()),
            None => Json::Null,
        };
        Json::obj([
            ("schema", Json::str(SWEEP_REPORT_SCHEMA)),
            ("mode", Json::str(&self.mode)),
            ("experiment", Json::str(self.exp)),
            ("title", Json::str(self.title)),
            (
                "param",
                Json::obj([
                    ("name", Json::str(&self.param)),
                    ("help", Json::str(&self.param_help)),
                    ("lo", Json::num(self.spec.lo)),
                    ("hi", Json::num(self.spec.hi)),
                    ("steps", Json::int(self.spec.steps as u64)),
                ]),
            ),
            ("seed_override", seed),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    let seed = match p.seed {
                        Some(s) => Json::str(s.to_string()),
                        None => Json::Null,
                    };
                    Json::obj([
                        ("requested", Json::num(p.requested)),
                        ("applied", Json::num(p.applied)),
                        ("seed", seed),
                        (
                            "claims",
                            Json::arr(p.report.findings.iter().map(|f| {
                                Json::obj([
                                    ("id", Json::str(&f.claim)),
                                    ("measured", Json::str(&f.measured)),
                                    ("value", Json::num(f.value)),
                                    ("holds", Json::Bool(f.holds)),
                                ])
                            })),
                        ),
                        ("holds", Json::Bool(p.report.all_hold())),
                    ])
                })),
            ),
            (
                "curves",
                Json::arr(self.curves.iter().map(|c| {
                    Json::obj([
                        ("claim", Json::str(&c.claim)),
                        (
                            "points",
                            Json::arr(c.points.iter().map(|p| {
                                Json::obj([
                                    ("param", Json::num(p.param)),
                                    ("value", Json::num(p.value)),
                                    ("holds", Json::Bool(p.holds)),
                                ])
                            })),
                        ),
                        (
                            "crossovers",
                            Json::arr(c.crossovers.iter().map(|x| {
                                Json::obj([
                                    ("lo", Json::num(x.lo)),
                                    ("hi", Json::num(x.hi)),
                                    ("from", Json::Bool(x.from)),
                                    ("to", Json::Bool(x.to)),
                                ])
                            })),
                        ),
                    ])
                })),
            ),
            (
                "summary",
                Json::obj([
                    ("points", Json::int(self.points.len() as u64)),
                    ("claims", Json::int(self.curves.len() as u64)),
                    ("flipping", Json::int(self.flipping_claims().len() as u64)),
                ]),
            ),
        ])
    }

    /// The pretty-printed canonical JSON text.
    pub fn to_json_text(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// A human-readable robustness summary as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "## Sensitivity: {} — {} over {} = {}..{} ({} points, {} mode)\n\n",
            self.exp,
            self.title,
            self.param,
            self.spec.lo,
            self.spec.hi,
            self.spec.steps,
            self.mode
        );
        out.push_str(&format!(
            "| {} | all claims hold | failing claims |\n",
            self.param
        ));
        out.push_str("|---|---|---|\n");
        for p in &self.points {
            let failing: Vec<&str> = p
                .report
                .findings
                .iter()
                .filter(|f| !f.holds)
                .map(|f| f.claim.as_str())
                .collect();
            out.push_str(&format!(
                "| {} | {} | {} |\n",
                p.applied,
                if failing.is_empty() { "yes" } else { "**no**" },
                if failing.is_empty() {
                    "—".to_string()
                } else {
                    failing.join(", ")
                }
            ));
        }
        out.push('\n');
        let flipping = self.flipping_claims();
        if flipping.is_empty() {
            out.push_str(&format!(
                "Every claim keeps its verdict across the whole {} grid — robust.\n",
                self.param
            ));
        } else {
            out.push_str("### Verdict crossovers\n\n");
            for c in flipping {
                for x in &c.crossovers {
                    out.push_str(&format!(
                        "- `{}` flips from holds={} to holds={} between {} = {} and {}\n",
                        c.claim, x.from, x.to, self.param, x.lo, x.hi
                    ));
                }
            }
        }
        out
    }
}

/// Runs a sweep: validates the spec against the scenario registry and
/// its param map, fans the grid across `jobs` threads, and folds the
/// robustness curves.
///
/// `seed` is the CLI `--seed` override; `None` keeps the scenario's
/// built-in seed as the base. Either way point `i` runs at
/// [`point_seed`]`(base, i)`. Seedless scenarios (E10) run every point
/// unseeded — their curve still varies through the parameter itself.
pub fn run_sweep(
    spec: &SweepSpec,
    quick: bool,
    seed: Option<u64>,
    jobs: usize,
) -> Result<SweepReport, String> {
    run_sweep_exec(spec, quick, seed, jobs, scenario::ExecPolicy::serial())
}

/// [`run_sweep`] with an execution policy applied to every grid point
/// (see [`crate::experiments::run_seeded_exec`]). Shards compose with
/// `jobs` and change nothing in the sweep output.
pub fn run_sweep_exec(
    spec: &SweepSpec,
    quick: bool,
    seed: Option<u64>,
    jobs: usize,
    exec: scenario::ExecPolicy,
) -> Result<SweepReport, String> {
    if jobs == 0 {
        return Err("jobs must be >= 1".to_string());
    }
    // Validate id + param once, up front, with good error messages.
    let probe = scenario::build(&spec.exp, quick).ok_or_else(|| {
        format!(
            "unknown experiment {} (known: {})",
            spec.exp,
            scenario::ids().join(", ")
        )
    })?;
    if probe.get_param(&spec.param).is_none() {
        let known: Vec<&str> = probe.params().iter().map(|p| p.name).collect();
        return Err(if known.is_empty() {
            format!("experiment {} has no sweepable parameters", probe.id())
        } else {
            format!(
                "unknown parameter {} for {} (sweepable: {})",
                spec.param,
                probe.id(),
                known.join(", ")
            )
        });
    }
    let exp = probe.id();
    let title = probe.description();
    let param_help = probe
        .params()
        .iter()
        .find(|p| p.name == spec.param)
        .map(|p| p.help.to_string())
        .unwrap_or_default();
    let base_seed = seed.or_else(|| probe.seed());

    let values = grid(spec.lo, spec.hi, spec.steps);
    let indexed: Vec<(usize, f64)> = values.into_iter().enumerate().collect();
    let points = sweep_with(&indexed, jobs, |&(i, requested)| {
        let mut s = scenario::build(&spec.exp, quick).expect("id validated above");
        s.set_param(&spec.param, requested)
            .expect("param validated above");
        let applied = s.get_param(&spec.param).expect("param validated above");
        let seed_used = base_seed.and_then(|base| {
            let p = point_seed(base, i);
            s.set_seed(p).then_some(p)
        });
        if exec.shard_count() > 1 {
            s.set_exec(exec);
        }
        SweepPoint {
            requested,
            applied,
            seed: seed_used,
            report: s.run(),
        }
    });

    let claim_ids: Vec<String> = points
        .first()
        .map(|p| p.report.findings.iter().map(|f| f.claim.clone()).collect())
        .unwrap_or_default();
    let curves = claim_ids
        .iter()
        .map(|c| RobustnessCurve::from_points(c, &points))
        .collect();
    Ok(SweepReport {
        mode: if quick { "quick" } else { "full" }.to_string(),
        exp,
        title,
        param: spec.param.clone(),
        param_help,
        spec: spec.clone(),
        seed_override: seed,
        points,
        curves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_the_cli_syntax() {
        let s = SweepSpec::parse("E19:partition_frac=0.1..0.5:3").unwrap();
        assert_eq!(
            s,
            SweepSpec {
                exp: "E19".to_string(),
                param: "partition_frac".to_string(),
                lo: 0.1,
                hi: 0.5,
                steps: 3,
            }
        );
        let s = SweepSpec::parse("e4:session_mins=5..240:4").unwrap();
        assert_eq!(s.exp, "e4");
        assert_eq!(s.lo, 5.0);
        assert_eq!(s.hi, 240.0);
    }

    #[test]
    fn spec_rejects_malformed_input() {
        for bad in [
            "",
            "E19",
            "E19:frac",
            "E19:frac=1..2",
            "E19:frac=..:3",
            "E19:frac=2..1:3",
            "E19:frac=1..2:0",
            "E19:frac=a..b:3",
            ":x=1..2:3",
            "E19:=1..2:3",
        ] {
            assert!(SweepSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn point_zero_keeps_the_base_seed() {
        assert_eq!(point_seed(0xE19, 0), 0xE19);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            assert!(seen.insert(point_seed(0xE19, i)), "seed collision at {i}");
        }
    }

    #[test]
    fn run_sweep_rejects_unknown_ids_and_params() {
        let spec = SweepSpec::parse("E99:x=0..1:2").unwrap();
        let err = run_sweep(&spec, true, None, 1).unwrap_err();
        assert!(err.contains("unknown experiment"), "{err}");
        let spec = SweepSpec::parse("E10:frobnication=0..1:2").unwrap();
        let err = run_sweep(&spec, true, None, 1).unwrap_err();
        assert!(err.contains("unknown parameter"), "{err}");
        assert!(err.contains("tps"), "error lists the knobs: {err}");
    }

    #[test]
    fn e10_sweep_runs_seedless_and_deterministic() {
        let spec = SweepSpec::parse("E10:tps=3.5..7:2").unwrap();
        let a = run_sweep(&spec, true, None, 1).unwrap();
        let b = run_sweep(&spec, true, Some(42), 2).unwrap();
        assert_eq!(a.points.len(), 2);
        assert!(a.points.iter().all(|p| p.seed.is_none()));
        // Seed overrides cannot perturb a seedless scenario's curve.
        for (x, y) in a.curves.iter().zip(b.curves.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn crossovers_bracket_verdict_flips() {
        // Synthetic: fold a curve from hand-built points.
        use crate::report::{Expect, ExperimentReport};
        let mk = |param: f64, v: f64| {
            let mut r = ExperimentReport::new("EX", "x");
            r.check("EX.c", "c", "p", "m", v, Expect::AtLeast(0.5));
            SweepPoint {
                requested: param,
                applied: param,
                seed: None,
                report: r,
            }
        };
        let pts = vec![mk(1.0, 0.9), mk(2.0, 0.6), mk(3.0, 0.2), mk(4.0, 0.7)];
        let curve = RobustnessCurve::from_points("EX.c", &pts);
        assert_eq!(curve.points.len(), 4);
        assert_eq!(curve.crossovers.len(), 2);
        assert_eq!(curve.crossovers[0].lo, 2.0);
        assert_eq!(curve.crossovers[0].hi, 3.0);
        assert!(curve.crossovers[0].from && !curve.crossovers[0].to);
        assert!(!curve.crossovers[1].from && curve.crossovers[1].to);
    }
}
