//! # decent-core — the paper's evaluation, operationalized
//!
//! *"Please, do not decentralize the Internet with (permissionless)
//! blockchains!"* (Garcia Lopez, Montresor, Datta; ICDCS 2019) is a
//! position paper: its evaluation is a set of quantitative claims about
//! P2P overlays, permissionless blockchains, permissioned BFT and
//! edge-centric computing. This crate catalogs each claim
//! ([`claims`]) and re-derives it with a discrete-event simulation
//! experiment ([`experiments`]), producing paper-vs-measured reports
//! ([`report`]).
//!
//! # Examples
//!
//! ```no_run
//! // Run the selfish-mining experiment at CI scale and print it.
//! let report = decent_core::experiments::run_by_id("E9", true).unwrap();
//! println!("{report}");
//! assert!(report.all_hold());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod claims;
pub mod experiments;
pub mod report;
pub mod scenario;
pub mod sensitivity;

pub use claims::{claim, Claim, CLAIMS};
pub use report::{
    diff_verdicts, verdicts_from_json, ClaimVerdict, Expect, ExperimentReport, ExperimentRun,
    Finding, RunReport,
};
pub use scenario::{ParamSpec, Scenario};
