//! # decent-sim — deterministic discrete-event simulation kernel
//!
//! The substrate for every experiment in the `decent` workspace, which
//! reproduces the quantitative claims of *"Please, do not decentralize
//! the Internet with (permissionless) blockchains!"* (ICDCS 2019).
//!
//! The kernel provides:
//!
//! - a deterministic event engine ([`engine::Simulation`]) over
//!   message-passing [`engine::Node`]s with timers and churn, with
//!   struct-of-arrays node storage and batched event delivery
//!   ([`arena`]);
//! - interned message payloads for fan-out-heavy protocols
//!   ([`payload`]);
//! - composable network models ([`net`]) including a planet-scale
//!   region latency/bandwidth matrix;
//! - scripted fault injection ([`fault`]): partitions, crash bursts,
//!   link degradation, duplication — deterministic and replayable;
//! - overlay topology generators ([`topology`]);
//! - churn models fit to P2P measurement studies ([`churn`]);
//! - distributions ([`dist`]), deterministic RNG streams ([`rng`]);
//! - measurement primitives ([`metrics`]), result tables ([`report`]),
//!   and a dependency-free JSON value for machine-readable run reports
//!   ([`json`]).
//!
//! # Examples
//!
//! A two-node ping-pong over a 10 ms link:
//!
//! ```
//! use decent_sim::prelude::*;
//!
//! struct P(u32);
//! impl Node for P {
//!     type Msg = u32;
//!     fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<'_, u32>) {
//!         self.0 = msg;
//!         if msg < 3 {
//!             ctx.send(from, msg + 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(7, ConstantLatency::from_millis(10.0));
//! let a = sim.add_node(P(0));
//! let b = sim.add_node(P(0));
//! sim.invoke(a, |_n, ctx| ctx.send(b, 1));
//! sim.run_until(SimTime::from_secs(1.0));
//! assert_eq!(sim.node(a).0.max(sim.node(b).0), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod churn;
pub mod dist;
pub mod engine;
pub mod fault;
pub mod json;
pub mod metrics;
pub mod net;
pub mod payload;
pub mod report;
pub mod rng;
pub mod sched;
mod shard;
pub mod stress;
pub mod sweep;
pub mod time;
pub mod topology;
pub mod trace;

/// One-stop import for simulation authors.
pub mod prelude {
    pub use crate::arena::{SlotArena, SlotIdx};
    pub use crate::churn::ChurnModel;
    pub use crate::dist::{Exp, LogNormal, Pareto, Sample, Weibull, Zipf};
    pub use crate::engine::{
        Context, Driver, EngineEvent, HeapSim, NoDriver, Node, NodeId, SchedulerFor, Simulation,
        EXTERNAL,
    };
    pub use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultStats, Faulty, LinkSet};
    pub use crate::json::Json;
    pub use crate::metrics::{
        gini, top_k_share, Counter, Histogram, LogHistogram, Metric, MetricsSnapshot, Summary,
        TimeSeries,
    };
    pub use crate::net::{
        ConstantLatency, LanNet, Lossy, NetworkModel, Region, RegionNet, UniformLatency,
    };
    pub use crate::payload::Interned;
    pub use crate::report::{fmt_f, fmt_pct, fmt_si, Table};
    pub use crate::rng::{derive_seed, rng_from_seed, SimRng};
    pub use crate::sched::{BinaryHeapScheduler, SchedStats, Scheduler, TimingWheel};
    pub use crate::sweep::sweep;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::Graph;
    pub use crate::trace::{EventRecord, EventTag, Trace};
}
