//! Network models: how long a message takes from `src` to `dst`.
//!
//! Models are composable — wrap an inner model in [`Lossy`] to add random
//! drops. The workhorse for planet-scale experiments is [`RegionNet`],
//! which combines a measured inter-continental RTT matrix with per-region
//! bandwidth (the same approach as the SimBlock blockchain simulator).

use rand::Rng;

use crate::engine::NodeId;
use crate::fault::FaultStats;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Decides delivery delay (or loss) for each message.
pub trait NetworkModel {
    /// Returns the one-way delay for `bytes` bytes from `src` to `dst`
    /// sent at `now`, or `None` if the message is lost.
    ///
    /// Models may keep state across calls (e.g. per-sender transmit
    /// queues, as in [`LanNet`]).
    fn delay(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<SimDuration>;

    /// Optionally schedules a second, duplicate delivery of the message.
    ///
    /// The engine calls this once per message whose [`delay`] returned
    /// `Some`; a `Some(d)` here delivers an extra copy after `d`. The
    /// default implementation never duplicates and — by contract —
    /// consumes no RNG, so plain models are unaffected by the extra call.
    /// Overridden by [`Faulty`](crate::fault::Faulty) during scripted
    /// duplication windows.
    ///
    /// [`delay`]: NetworkModel::delay
    fn duplicate(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<SimDuration> {
        let _ = (src, dst, bytes, now, rng);
        None
    }

    /// Fault-injection statistics, when this model records them.
    ///
    /// `None` for plain models (the default). [`Faulty`](crate::fault::Faulty)
    /// returns its counters here, which is how
    /// [`Simulation::metrics_snapshot`](crate::engine::Simulation::metrics_snapshot)
    /// surfaces `faults_active`, `msgs_dropped_partition`, and friends
    /// without downcasting the boxed model. Wrappers ([`Lossy`]) forward to
    /// their inner model.
    fn fault_stats(&self) -> Option<FaultStats> {
        None
    }

    /// A lower bound on every delay [`delay`](NetworkModel::delay) can
    /// ever return (its *lookahead*), or `None` when no bound is known.
    ///
    /// Sharded execution ([`Simulation::set_shards`]) uses this as the
    /// conservative window width: within one lookahead of virtual time,
    /// no message sent by one node can reach another, so shards may
    /// advance that far without synchronizing. The bound must hold for
    /// *all* argument combinations and internal states; when in doubt,
    /// return something smaller (it costs parallelism, never
    /// correctness). Models returning `None` — or a zero bound — make
    /// sharded simulations fall back to serial-equivalent stepping.
    ///
    /// [`Simulation::set_shards`]: crate::engine::Simulation::set_shards
    fn lookahead(&self) -> Option<SimDuration> {
        None
    }

    /// Per-link lookahead: a flattened `shards × shards` matrix whose
    /// entry `[j * shards + k]` is a lower bound on the delay of any
    /// message from a node of shard `j` (node ids `≡ j mod shards`,
    /// the dealing used by [`Simulation::set_shards`]) to a node of
    /// shard `k`, or `None` to use the single global
    /// [`lookahead`](NetworkModel::lookahead) for every pair.
    ///
    /// Heterogeneous topologies should override this: with the global
    /// bound, one short link anywhere in the matrix collapses *every*
    /// window to that minimum, even between shards whose nodes only
    /// talk over long-haul links. Entries must hold for all argument
    /// combinations and internal states, like the global bound; a zero
    /// entry is treated as "unknown" and replaced by the global bound,
    /// never as license for a zero-width window.
    ///
    /// [`Simulation::set_shards`]: crate::engine::Simulation::set_shards
    fn shard_lookahead(&self, nodes: usize, shards: usize) -> Option<Vec<SimDuration>> {
        let _ = (nodes, shards);
        None
    }
}

/// Fixed one-way latency, no loss, infinite bandwidth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstantLatency {
    latency: SimDuration,
}

impl ConstantLatency {
    /// Creates a model with the given one-way latency.
    pub fn new(latency: SimDuration) -> Self {
        ConstantLatency { latency }
    }

    /// Convenience constructor from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        ConstantLatency::new(SimDuration::from_millis(ms))
    }
}

impl NetworkModel for ConstantLatency {
    fn delay(
        &mut self,
        _s: NodeId,
        _d: NodeId,
        _b: u64,
        _now: SimTime,
        _r: &mut SimRng,
    ) -> Option<SimDuration> {
        Some(self.latency)
    }

    fn lookahead(&self) -> Option<SimDuration> {
        Some(self.latency)
    }
}

/// Latency drawn uniformly from `[min, max]` per message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniformLatency {
    min: SimDuration,
    max: SimDuration,
}

impl UniformLatency {
    /// Creates a model with latency uniform in `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: SimDuration, max: SimDuration) -> Self {
        assert!(min <= max, "min latency must not exceed max");
        UniformLatency { min, max }
    }

    /// Convenience constructor from milliseconds.
    pub fn from_millis(min_ms: f64, max_ms: f64) -> Self {
        UniformLatency::new(
            SimDuration::from_millis(min_ms),
            SimDuration::from_millis(max_ms),
        )
    }
}

impl NetworkModel for UniformLatency {
    fn delay(
        &mut self,
        _s: NodeId,
        _d: NodeId,
        _b: u64,
        _now: SimTime,
        rng: &mut SimRng,
    ) -> Option<SimDuration> {
        let span = (self.max - self.min).as_nanos();
        let extra = if span == 0 {
            0
        } else {
            rng.gen_range(0..=span)
        };
        Some(self.min + SimDuration::from_nanos(extra))
    }

    fn lookahead(&self) -> Option<SimDuration> {
        Some(self.min)
    }
}

/// Wraps another model, dropping each message with probability `p`.
#[derive(Debug)]
pub struct Lossy<M> {
    inner: M,
    p: f64,
}

impl<M: NetworkModel> Lossy<M> {
    /// Creates a lossy wrapper with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(inner: M, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        Lossy { inner, p }
    }
}

impl<M: NetworkModel> NetworkModel for Lossy<M> {
    fn delay(
        &mut self,
        s: NodeId,
        d: NodeId,
        b: u64,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<SimDuration> {
        if rng.gen::<f64>() < self.p {
            None
        } else {
            self.inner.delay(s, d, b, now, rng)
        }
    }

    fn duplicate(
        &mut self,
        s: NodeId,
        d: NodeId,
        b: u64,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<SimDuration> {
        self.inner.duplicate(s, d, b, now, rng)
    }

    fn fault_stats(&self) -> Option<FaultStats> {
        self.inner.fault_stats()
    }

    fn lookahead(&self) -> Option<SimDuration> {
        // Dropping messages never shortens a delivered one.
        self.inner.lookahead()
    }

    fn shard_lookahead(&self, nodes: usize, shards: usize) -> Option<Vec<SimDuration>> {
        self.inner.shard_lookahead(nodes, shards)
    }
}

/// A switched LAN/datacenter network with per-sender transmit queues.
///
/// Each node has a NIC of `bandwidth_bps`; concurrent sends from the
/// same node serialize behind each other, so a primary broadcasting a
/// large batch to `n` replicas pays O(n) transmit time — the bottleneck
/// that makes PBFT throughput fall with the replica count.
#[derive(Clone, Debug)]
pub struct LanNet {
    latency: SimDuration,
    bandwidth_bps: f64,
    busy_until: Vec<SimTime>,
}

impl LanNet {
    /// Creates a LAN model with the given propagation latency and
    /// per-node NIC bandwidth in bits/s.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not positive.
    pub fn new(latency: SimDuration, bandwidth_bps: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        LanNet {
            latency,
            bandwidth_bps,
            busy_until: Vec::new(),
        }
    }

    /// A typical datacenter network: 0.5 ms latency, 1 Gbit/s NICs.
    pub fn datacenter() -> Self {
        LanNet::new(SimDuration::from_millis(0.5), 1e9)
    }
}

impl NetworkModel for LanNet {
    fn delay(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        now: SimTime,
        _rng: &mut SimRng,
    ) -> Option<SimDuration> {
        let _ = dst;
        if src == crate::engine::EXTERNAL {
            return Some(self.latency);
        }
        if src >= self.busy_until.len() {
            self.busy_until.resize(src + 1, SimTime::ZERO);
        }
        let tx = SimDuration::from_secs(bytes as f64 * 8.0 / self.bandwidth_bps);
        let start = self.busy_until[src].max(now);
        self.busy_until[src] = start + tx;
        Some(start.saturating_since(now) + tx + self.latency)
    }

    fn lookahead(&self) -> Option<SimDuration> {
        // NIC queueing and serialization only ever add to propagation.
        Some(self.latency)
    }
}

/// Geographic region of a node, for planet-scale latency modelling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// North America.
    NorthAmerica,
    /// Europe.
    Europe,
    /// South America.
    SouthAmerica,
    /// Asia-Pacific (excluding Japan).
    AsiaPacific,
    /// Japan.
    Japan,
    /// Australia / Oceania.
    Australia,
}

impl Region {
    /// All regions, in matrix order.
    pub const ALL: [Region; 6] = [
        Region::NorthAmerica,
        Region::Europe,
        Region::SouthAmerica,
        Region::AsiaPacific,
        Region::Japan,
        Region::Australia,
    ];

    /// Approximate distribution of Bitcoin nodes across regions circa
    /// 2019 (as used by the SimBlock simulator).
    pub const BITCOIN_2019_DISTRIBUTION: [f64; 6] = [0.33, 0.50, 0.02, 0.08, 0.04, 0.03];

    fn index(self) -> usize {
        match self {
            Region::NorthAmerica => 0,
            Region::Europe => 1,
            Region::SouthAmerica => 2,
            Region::AsiaPacific => 3,
            Region::Japan => 4,
            Region::Australia => 5,
        }
    }

    /// Samples a region from a probability distribution over
    /// [`Region::ALL`] (weights need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any weight is negative.
    pub fn sample(weights: &[f64; 6], rng: &mut SimRng) -> Region {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative and not all zero"
        );
        let mut u = rng.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return Region::ALL[i];
            }
        }
        Region::Australia
    }
}

/// Measured average one-way latencies between regions, in milliseconds
/// (SimBlock / Bitcoin network measurement values, 2019).
const REGION_LATENCY_MS: [[f64; 6]; 6] = [
    [32.0, 124.0, 184.0, 198.0, 151.0, 189.0],
    [124.0, 11.0, 227.0, 237.0, 252.0, 294.0],
    [184.0, 227.0, 88.0, 325.0, 301.0, 322.0],
    [198.0, 237.0, 325.0, 85.0, 58.0, 198.0],
    [151.0, 252.0, 301.0, 58.0, 12.0, 126.0],
    [189.0, 294.0, 322.0, 126.0, 126.0, 16.0],
];

/// Per-region download bandwidth in Mbit/s (SimBlock 2019 values).
const REGION_DOWNLOAD_MBPS: [f64; 6] = [52.0, 40.0, 18.0, 22.0, 23.0, 16.0];
/// Per-region upload bandwidth in Mbit/s (SimBlock 2019 values).
const REGION_UPLOAD_MBPS: [f64; 6] = [19.0, 15.0, 5.0, 7.0, 9.0, 6.0];

/// Planet-scale model: region latency matrix + per-region bandwidth +
/// multiplicative jitter.
///
/// Delay = `latency(src_region, dst_region) * U(0.9, 1.1)
/// + bytes / min(upload(src), download(dst))`.
///
/// # Examples
///
/// ```
/// use decent_sim::net::{NetworkModel, Region, RegionNet};
/// use decent_sim::rng::rng_from_seed;
///
/// let mut rng = rng_from_seed(1);
/// let mut net = RegionNet::new(vec![Region::Europe, Region::Japan]);
/// let d = net.delay(0, 1, 256, decent_sim::time::SimTime::ZERO, &mut rng).unwrap();
/// assert!(d.as_millis() > 200.0); // EU <-> JP is a long haul
/// ```
#[derive(Clone, Debug)]
pub struct RegionNet {
    regions: Vec<Region>,
    jitter: f64,
    bandwidth_enabled: bool,
}

impl RegionNet {
    /// Creates a region model from per-node region assignments.
    pub fn new(regions: Vec<Region>) -> Self {
        RegionNet {
            regions,
            jitter: 0.1,
            bandwidth_enabled: true,
        }
    }

    /// Samples `n` node regions from `weights` and builds the model.
    pub fn sampled(n: usize, weights: &[f64; 6], rng: &mut SimRng) -> Self {
        RegionNet::new((0..n).map(|_| Region::sample(weights, rng)).collect())
    }

    /// Sets the multiplicative jitter half-width (default 0.1 = ±10%).
    pub fn jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter));
        self.jitter = jitter;
        self
    }

    /// Disables the bandwidth term (latency only).
    pub fn without_bandwidth(mut self) -> Self {
        self.bandwidth_enabled = false;
        self
    }

    /// The region of node `id`.
    ///
    /// Nodes beyond the assignment list default to Europe (useful for
    /// late-joining nodes).
    pub fn region_of(&self, id: NodeId) -> Region {
        self.regions.get(id).copied().unwrap_or(Region::Europe)
    }

    /// Mean one-way latency between two regions.
    pub fn base_latency(a: Region, b: Region) -> SimDuration {
        SimDuration::from_millis(REGION_LATENCY_MS[a.index()][b.index()])
    }
}

impl NetworkModel for RegionNet {
    fn delay(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        _now: SimTime,
        rng: &mut SimRng,
    ) -> Option<SimDuration> {
        let (ra, rb) = (self.region_of(src), self.region_of(dst));
        let base = REGION_LATENCY_MS[ra.index()][rb.index()];
        let jitter = 1.0 + self.jitter * (2.0 * rng.gen::<f64>() - 1.0);
        let mut total_ms = base * jitter;
        if self.bandwidth_enabled {
            let mbps = REGION_UPLOAD_MBPS[ra.index()].min(REGION_DOWNLOAD_MBPS[rb.index()]);
            total_ms += (bytes as f64 * 8.0) / (mbps * 1e6) * 1e3;
        }
        Some(SimDuration::from_millis(total_ms))
    }

    fn lookahead(&self) -> Option<SimDuration> {
        // Cheapest matrix entry at the far low end of the jitter band;
        // the bandwidth term only adds.
        let min_ms = REGION_LATENCY_MS
            .iter()
            .flatten()
            .fold(f64::INFINITY, |a, &b| a.min(b));
        Some(SimDuration::from_millis(min_ms * (1.0 - self.jitter)))
    }

    fn shard_lookahead(&self, nodes: usize, shards: usize) -> Option<Vec<SimDuration>> {
        // Restrict the matrix minimum to the regions actually present
        // in each shard pair: two shards whose nodes sit only in, say,
        // North and South America get the NA↔SA floor (≥ 184 ms), not
        // the whole-matrix floor (11 ms intra-Europe). Nodes beyond the
        // assignment list default to Europe, exactly as `region_of`.
        let mut present = vec![[false; 6]; shards];
        for id in 0..nodes {
            present[id % shards][self.region_of(id).index()] = true;
        }
        let mut mat = Vec::with_capacity(shards * shards);
        for pj in &present {
            for pk in &present {
                let mut min_ms = f64::INFINITY;
                for (a, &ja) in pj.iter().enumerate() {
                    if !ja {
                        continue;
                    }
                    for (b, &kb) in pk.iter().enumerate() {
                        if kb {
                            min_ms = min_ms.min(REGION_LATENCY_MS[a][b]);
                        }
                    }
                }
                // Empty shards never originate messages; a zero entry
                // defers to the global bound (the executor's "unknown").
                mat.push(if min_ms.is_finite() {
                    SimDuration::from_millis(min_ms * (1.0 - self.jitter))
                } else {
                    SimDuration::ZERO
                });
            }
        }
        Some(mat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn constant_latency() {
        let mut m = ConstantLatency::from_millis(25.0);
        let mut rng = rng_from_seed(1);
        assert_eq!(
            m.delay(0, 1, 100, SimTime::ZERO, &mut rng),
            Some(SimDuration::from_millis(25.0))
        );
    }

    #[test]
    fn uniform_latency_within_bounds() {
        let mut m = UniformLatency::from_millis(10.0, 20.0);
        let mut rng = rng_from_seed(2);
        for _ in 0..1000 {
            let d = m
                .delay(0, 1, 0, SimTime::ZERO, &mut rng)
                .unwrap()
                .as_millis();
            assert!((10.0..=20.0).contains(&d), "{d}");
        }
    }

    #[test]
    fn lossy_drops_expected_fraction() {
        let mut m = Lossy::new(ConstantLatency::from_millis(1.0), 0.3);
        let mut rng = rng_from_seed(3);
        let drops = (0..10_000)
            .filter(|_| m.delay(0, 1, 0, SimTime::ZERO, &mut rng).is_none())
            .count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn region_matrix_diagonal_is_cheap() {
        // Intra-region latency is well below the row average everywhere
        // (Asia-Pacific spans a wide area, so its diagonal is not the row
        // minimum in the measured data — only "much cheaper than average"
        // holds universally).
        for (i, row) in REGION_LATENCY_MS.iter().enumerate() {
            let mean = row.iter().sum::<f64>() / row.len() as f64;
            assert!(row[i] < mean * 0.6, "row {i}: diag {} mean {mean}", row[i]);
        }
    }

    #[test]
    fn region_net_bandwidth_term_scales_with_size() {
        let mut net = RegionNet::new(vec![Region::Europe, Region::Europe]);
        let mut rng = rng_from_seed(4);
        let small: f64 = (0..200)
            .map(|_| {
                net.delay(0, 1, 1_000, SimTime::ZERO, &mut rng)
                    .unwrap()
                    .as_millis()
            })
            .sum::<f64>()
            / 200.0;
        let big: f64 = (0..200)
            .map(|_| {
                net.delay(0, 1, 1_000_000, SimTime::ZERO, &mut rng)
                    .unwrap()
                    .as_millis()
            })
            .sum::<f64>()
            / 200.0;
        // 1 MB over 15 Mbps upload is roughly 530 ms of serialization.
        assert!(big - small > 400.0, "big {big} small {small}");
    }

    #[test]
    fn region_sampling_follows_weights() {
        let mut rng = rng_from_seed(5);
        let mut eu = 0;
        for _ in 0..10_000 {
            if Region::sample(&Region::BITCOIN_2019_DISTRIBUTION, &mut rng) == Region::Europe {
                eu += 1;
            }
        }
        let share = eu as f64 / 10_000.0;
        assert!((share - 0.5).abs() < 0.03, "EU share {share}");
    }

    #[test]
    fn region_of_defaults_beyond_assignment() {
        let net = RegionNet::new(vec![Region::Japan]);
        assert_eq!(net.region_of(0), Region::Japan);
        assert_eq!(net.region_of(99), Region::Europe);
    }
}
