//! Pluggable event schedulers: the priority queue at the heart of the
//! discrete-event engine.
//!
//! Every event in a simulation passes through one [`Scheduler`]: the engine
//! pushes `(time, seq, payload)` triples and pops them back in strictly
//! ascending `(time, seq)` order. `seq` is the engine's monotone insertion
//! counter, so equal-timestamp events dequeue in FIFO order — the tie-break
//! contract every implementation must honour *exactly*, because the paper
//! reproductions pin bit-for-bit deterministic traces.
//!
//! Two implementations are provided:
//!
//! - [`BinaryHeapScheduler`] — the classic `O(log n)` binary heap. Simple,
//!   allocation-light, and the reference implementation for correctness.
//! - [`TimingWheel`] — a hierarchical timing wheel (the default): `O(1)`
//!   amortized insert/pop for the near-future events that dominate
//!   simulation workloads, with an internal freelist so steady-state
//!   operation performs no per-event allocation. Far-future events overflow
//!   into a small binary heap and are cascaded back in as time advances.
//!
//! Both dequeue identical sequences for identical inputs (property-tested
//! in this module's tests and in the workspace-level proptests), so
//! swapping one for the other never changes a simulation result.
//!
//! # Examples
//!
//! ```
//! use decent_sim::sched::{BinaryHeapScheduler, Scheduler, TimingWheel};
//! use decent_sim::time::SimTime;
//!
//! let mut wheel: TimingWheel<&str> = TimingWheel::new();
//! let mut heap: BinaryHeapScheduler<&str> = BinaryHeapScheduler::new();
//! for sched in [&mut wheel as &mut dyn Scheduler<&str>, &mut heap] {
//!     sched.schedule(SimTime::from_secs(2.0), 0, "late");
//!     sched.schedule(SimTime::from_secs(1.0), 1, "early");
//!     sched.schedule(SimTime::from_secs(1.0), 2, "early-tie");
//! }
//! // Identical dequeue order: time first, then insertion order.
//! for sched in [&mut wheel as &mut dyn Scheduler<&str>, &mut heap] {
//!     assert_eq!(sched.pop().unwrap().2, "early");
//!     assert_eq!(sched.pop().unwrap().2, "early-tie");
//!     assert_eq!(sched.pop().unwrap().2, "late");
//!     assert!(sched.pop().is_none());
//! }
//! ```

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Operation counters maintained by a [`Scheduler`].
///
/// Purely observational: tracking these is a couple of integer updates
/// per operation and never changes dequeue order. They surface through
/// [`crate::engine::Simulation::metrics_snapshot`] so every run report
/// can state how hard the event queue was driven.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events ever enqueued.
    pub scheduled: u64,
    /// Events ever dequeued.
    pub popped: u64,
    /// Largest number of simultaneously pending events.
    pub peak_len: u64,
    /// Implementation-specific reorganizations (timing-wheel cascades;
    /// 0 for the binary heap).
    pub cascades: u64,
    /// Peak size of the far-future overflow heap (timing wheel only).
    pub overflow_peak: u64,
}

/// A priority queue of timestamped events, dequeued in `(time, seq)` order.
///
/// # Contract
///
/// - [`pop`](Scheduler::pop) returns events in strictly ascending
///   `(time, seq)` order; `seq` values are unique, so the order is total.
/// - Events scheduled at or before the current dequeue frontier (time less
///   than or equal to the last popped time) must still be delivered, in
///   `(time, seq)` order relative to the not-yet-popped events.
/// - [`next_time`](Scheduler::next_time) takes `&mut self` so lazy
///   implementations may reorganize internal state, but it must not drop
///   or reorder events.
pub trait Scheduler<T> {
    /// Creates an empty scheduler.
    fn new() -> Self
    where
        Self: Sized;

    /// Enqueues `item` at `time` with tie-break counter `seq`.
    fn schedule(&mut self, time: SimTime, seq: u64, item: T);

    /// Removes and returns the earliest event, or `None` if empty.
    fn pop(&mut self) -> Option<(SimTime, u64, T)>;

    /// Borrows the earliest event without removing it, or `None` if
    /// empty (or if the implementation cannot peek — the default).
    ///
    /// The engine's batched delivery path uses this to decide whether
    /// the next event targets the same node as the one just dispatched;
    /// an implementation returning `None` merely disables batching,
    /// never changes results.
    fn peek(&mut self) -> Option<(SimTime, u64, &T)> {
        None
    }

    /// The timestamp of the earliest pending event, or `None` if empty.
    fn next_time(&mut self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// True when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime operation counters (zeroes for implementations that do
    /// not track them).
    fn op_stats(&self) -> SchedStats {
        SchedStats::default()
    }
}

// ---------------------------------------------------------------------------
// Binary heap reference implementation
// ---------------------------------------------------------------------------

struct HeapEntry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The classic binary-heap scheduler: `O(log n)` push and pop.
///
/// This is the reference implementation; [`TimingWheel`] is checked against
/// it. Kept selectable because its worst case is robust to pathological
/// far-future/past scheduling patterns.
pub struct BinaryHeapScheduler<T> {
    heap: BinaryHeap<Reverse<HeapEntry<T>>>,
    stats: SchedStats,
}

impl<T> Scheduler<T> for BinaryHeapScheduler<T> {
    fn new() -> Self {
        BinaryHeapScheduler {
            heap: BinaryHeap::new(),
            stats: SchedStats::default(),
        }
    }

    fn schedule(&mut self, time: SimTime, seq: u64, item: T) {
        self.heap.push(Reverse(HeapEntry { time, seq, item }));
        self.stats.scheduled += 1;
        self.stats.peak_len = self.stats.peak_len.max(self.heap.len() as u64);
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let out = self.heap.pop().map(|Reverse(e)| (e.time, e.seq, e.item));
        if out.is_some() {
            self.stats.popped += 1;
        }
        out
    }

    fn peek(&mut self) -> Option<(SimTime, u64, &T)> {
        self.heap.peek().map(|Reverse(e)| (e.time, e.seq, &e.item))
    }

    fn next_time(&mut self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn op_stats(&self) -> SchedStats {
        self.stats
    }
}

impl<T> std::fmt::Debug for BinaryHeapScheduler<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinaryHeapScheduler")
            .field("len", &self.heap.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Hierarchical timing wheel
// ---------------------------------------------------------------------------

/// Slots per wheel level (a power of two so slot math is masking).
const SLOTS: usize = 64;
/// log2(SLOTS).
const SLOT_BITS: u32 = 6;
/// Number of cascaded wheel levels. Level `k` spans `64^(k+1)` ticks, so
/// four levels cover `2^24` ticks before events overflow to the heap.
const LEVELS: usize = 4;
/// Sentinel for "no slab node" in the intrusive lists and the freelist.
const NIL: u32 = u32::MAX;

struct WheelNode<T> {
    /// Event timestamp in raw nanoseconds.
    time: u64,
    /// Engine tie-break counter.
    seq: u64,
    /// Next node in the slot's intrusive list, or in the freelist.
    next: u32,
    /// `None` only while the node sits on the freelist.
    item: Option<T>,
}

/// A hierarchical timing wheel with a sorted near-term lane.
///
/// Time is bucketed into ticks of `2^tick_shift` nanoseconds (default
/// `2^16` ≈ 65 µs). Level 0 holds the next 64 ticks, one slot per tick;
/// level `k` holds the next `64^(k+1)` ticks at `64^k`-tick granularity.
/// When the wheel clock enters a higher-level slot, that slot's events
/// *cascade* down into the finer levels. Events beyond the top level's
/// horizon (`2^24` ticks ≈ 18 simulated minutes at the default tick) wait
/// in an overflow binary heap and are pulled in as the clock approaches.
///
/// Dequeueing drains one level-0 slot at a time into the *near lane*, a
/// small vector sorted by `(time, seq)` — this is what restores the exact
/// FIFO tie-break order within a tick, so the wheel's dequeue sequence is
/// bit-for-bit identical to [`BinaryHeapScheduler`]'s.
///
/// All events live in a slab with an internal freelist, so steady-state
/// scheduling allocates nothing.
pub struct TimingWheel<T> {
    slab: Vec<WheelNode<T>>,
    /// Freelist head into `slab`.
    free: u32,
    /// Wheel clock, in ticks. Every event in the wheel levels has a tick
    /// strictly greater than `current`; events at or before it go to the
    /// near lane on insert.
    current: u64,
    tick_shift: u32,
    /// Per-level slot-occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// Heads of per-slot intrusive lists into `slab`.
    slots: [[u32; SLOTS]; LEVELS],
    /// The drained current tick, sorted ascending by `(time, seq)`;
    /// `lane[lane_pos..]` are pending.
    lane: Vec<u32>,
    lane_pos: usize,
    /// Events beyond the wheel horizon: `(time, seq, slab index)`.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
    len: usize,
    stats: SchedStats,
}

impl<T> TimingWheel<T> {
    /// Default tick granularity: `2^16` ns ≈ 65.5 µs.
    pub const DEFAULT_TICK_SHIFT: u32 = 16;

    /// Creates a wheel with a custom tick of `2^tick_shift` nanoseconds.
    ///
    /// Smaller ticks sharpen level-0 resolution (fewer same-slot sorts) at
    /// the cost of a nearer overflow horizon; the default suits the
    /// millisecond-scale latencies of the workspace's network models.
    ///
    /// # Panics
    ///
    /// Panics if `tick_shift` is 40 or more (the wheel horizon would
    /// overflow the 64-bit nanosecond clock).
    pub fn with_tick_shift(tick_shift: u32) -> Self {
        assert!(
            tick_shift < 40,
            "tick_shift {tick_shift} leaves no headroom above the wheel horizon"
        );
        TimingWheel {
            slab: Vec::new(),
            free: NIL,
            current: 0,
            tick_shift,
            occupied: [0; LEVELS],
            slots: [[NIL; SLOTS]; LEVELS],
            lane: Vec::new(),
            lane_pos: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            stats: SchedStats::default(),
        }
    }

    fn tick_of(&self, time: u64) -> u64 {
        time >> self.tick_shift
    }

    fn alloc(&mut self, time: u64, seq: u64, item: T) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.slab[idx as usize];
            self.free = node.next;
            node.time = time;
            node.seq = seq;
            node.next = NIL;
            node.item = Some(item);
            idx
        } else {
            let idx = u32::try_from(self.slab.len()).expect("more than 2^32 pending events");
            self.slab.push(WheelNode {
                time,
                seq,
                next: NIL,
                item: Some(item),
            });
            idx
        }
    }

    fn release(&mut self, idx: u32) -> (u64, u64, T) {
        let node = &mut self.slab[idx as usize];
        let item = node.item.take().expect("node already freed");
        let out = (node.time, node.seq, item);
        node.next = self.free;
        self.free = idx;
        out
    }

    /// Files a freshly scheduled node into the lane, a wheel slot, or the
    /// overflow heap according to its distance from the wheel clock.
    fn place(&mut self, idx: u32) {
        let node = &self.slab[idx as usize];
        let (time, seq) = (node.time, node.seq);
        let tick = self.tick_of(time);
        if tick <= self.current {
            // Due now (or in the already-drained current tick): keep the
            // near lane sorted so tie-break order survives late inserts.
            let key = (time, seq);
            let slab = &self.slab;
            let at = self.lane[self.lane_pos..].partition_point(|&j| {
                let n = &slab[j as usize];
                (n.time, n.seq) < key
            }) + self.lane_pos;
            self.lane.insert(at, idx);
            return;
        }
        self.place_future(idx, tick);
    }

    /// Re-files a node during a cascade or an overflow pull. Unlike
    /// [`place`](Self::place), events due at the current tick go into their
    /// level-0 slot, not the lane: the slot may already hold other events
    /// for that tick, and the upcoming slot drain must see them all at once
    /// to sort them into one FIFO run.
    fn place_wheel(&mut self, idx: u32) {
        let tick = self.tick_of(self.slab[idx as usize].time);
        if tick <= self.current {
            debug_assert_eq!(tick, self.current, "cascade surfaced a past event");
            let slot = (tick & (SLOTS as u64 - 1)) as usize;
            self.slab[idx as usize].next = self.slots[0][slot];
            self.slots[0][slot] = idx;
            self.occupied[0] |= 1 << slot;
            return;
        }
        self.place_future(idx, tick);
    }

    /// Files a node with `tick > current` into the wheel level matching its
    /// distance, or the overflow heap beyond the horizon.
    fn place_future(&mut self, idx: u32, tick: u64) {
        let delta = tick - self.current;
        for level in 0..LEVELS {
            if delta < 1u64 << (SLOT_BITS * (level as u32 + 1)) {
                let slot = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                self.slab[idx as usize].next = self.slots[level][slot];
                self.slots[level][slot] = idx;
                self.occupied[level] |= 1 << slot;
                return;
            }
        }
        let node = &self.slab[idx as usize];
        self.overflow.push(Reverse((node.time, node.seq, idx)));
        self.stats.overflow_peak = self.stats.overflow_peak.max(self.overflow.len() as u64);
    }

    /// Unlinks and returns every node in `slots[level][slot]`.
    fn take_slot(&mut self, level: usize, slot: usize) -> u32 {
        let head = self.slots[level][slot];
        self.slots[level][slot] = NIL;
        self.occupied[level] &= !(1u64 << slot);
        head
    }

    /// Ensures the near lane holds the next pending event; returns false
    /// when the scheduler is empty.
    fn refill(&mut self) -> bool {
        loop {
            if self.lane_pos < self.lane.len() {
                return true;
            }
            self.lane.clear();
            self.lane_pos = 0;
            if self.len == 0 {
                return false;
            }
            // Next occupied level-0 slot in the current 64-tick window,
            // including `current`'s own slot — cascades and overflow pulls
            // park events due at the current tick there.
            let window = self.current & !(SLOTS as u64 - 1);
            let pos = (self.current & (SLOTS as u64 - 1)) as u32;
            let mask = self.occupied[0] & (u64::MAX << pos);
            if mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                self.current = window + slot as u64;
                let mut head = self.take_slot(0, slot);
                while head != NIL {
                    self.lane.push(head);
                    head = self.slab[head as usize].next;
                }
                let slab = &self.slab;
                // decent-lint: allow(D009) reason="(time, seq) is injective: seq is unique per scheduled event"
                self.lane.sort_unstable_by_key(|&j| {
                    let n = &slab[j as usize];
                    (n.time, n.seq)
                });
                continue;
            }
            // Level 0 exhausted: advance to the next window and cascade.
            self.current = window + SLOTS as u64;
            self.cascade();
            if self.occupied.iter().all(|&b| b == 0) {
                // Wheels empty — jump the clock to the overflow frontier.
                let Some(&Reverse((time, _, _))) = self.overflow.peek() else {
                    debug_assert_eq!(self.len, 0);
                    return false;
                };
                let tick = self.tick_of(time);
                if tick > self.current {
                    self.current = tick;
                }
                self.pull_overflow();
            }
        }
    }

    /// Drains higher-level slots the clock has just entered back into the
    /// finer levels, then adopts overflow events inside the new horizon.
    ///
    /// Must be called exactly when `current` crosses a level-0 window
    /// boundary (i.e. is a multiple of 64 ticks).
    fn cascade(&mut self) {
        debug_assert_eq!(self.current % SLOTS as u64, 0);
        self.stats.cascades += 1;
        // Level k enters a new slot when current is a multiple of 64^k.
        // Drain top-down so cascaded events land in already-drained
        // lower-level slots only via `place`.
        for level in (1..LEVELS).rev() {
            if !self
                .current
                .is_multiple_of(1u64 << (SLOT_BITS * level as u32))
            {
                continue;
            }
            let slot = ((self.current >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            let mut head = self.take_slot(level, slot);
            while head != NIL {
                let next = self.slab[head as usize].next;
                self.place_wheel(head);
                head = next;
            }
        }
        self.pull_overflow();
    }

    /// Moves overflow events that now fit under the wheel horizon into the
    /// wheel levels.
    fn pull_overflow(&mut self) {
        let horizon = 1u64 << (SLOT_BITS * LEVELS as u32);
        while let Some(&Reverse((time, _, idx))) = self.overflow.peek() {
            if self.tick_of(time).saturating_sub(self.current) >= horizon {
                break;
            }
            self.overflow.pop();
            self.place_wheel(idx);
        }
    }
}

impl<T> Scheduler<T> for TimingWheel<T> {
    fn new() -> Self {
        TimingWheel::with_tick_shift(Self::DEFAULT_TICK_SHIFT)
    }

    fn schedule(&mut self, time: SimTime, seq: u64, item: T) {
        let idx = self.alloc(time.as_nanos(), seq, item);
        self.place(idx);
        self.len += 1;
        self.stats.scheduled += 1;
        self.stats.peak_len = self.stats.peak_len.max(self.len as u64);
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if !self.refill() {
            return None;
        }
        let idx = self.lane[self.lane_pos];
        self.lane_pos += 1;
        self.len -= 1;
        self.stats.popped += 1;
        let (time, seq, item) = self.release(idx);
        Some((SimTime::from_nanos(time), seq, item))
    }

    fn peek(&mut self) -> Option<(SimTime, u64, &T)> {
        if !self.refill() {
            return None;
        }
        let node = &self.slab[self.lane[self.lane_pos] as usize];
        Some((
            SimTime::from_nanos(node.time),
            node.seq,
            node.item.as_ref().expect("lane node on freelist"),
        ))
    }

    fn next_time(&mut self) -> Option<SimTime> {
        if !self.refill() {
            return None;
        }
        let idx = self.lane[self.lane_pos];
        Some(SimTime::from_nanos(self.slab[idx as usize].time))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn op_stats(&self) -> SchedStats {
        self.stats
    }
}

impl<T> std::fmt::Debug for TimingWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingWheel")
            .field("len", &self.len)
            .field("current_tick", &self.current)
            .field("tick_shift", &self.tick_shift)
            .field("lane_pending", &(self.lane.len() - self.lane_pos))
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use rand::Rng;

    fn drain<T, S: Scheduler<T>>(s: &mut S) -> Vec<(SimTime, u64)> {
        let mut out = Vec::new();
        while let Some((t, q, _)) = s.pop() {
            out.push((t, q));
        }
        out
    }

    #[test]
    fn empty_schedulers_report_empty() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        let mut h: BinaryHeapScheduler<u32> = BinaryHeapScheduler::new();
        assert!(w.is_empty() && h.is_empty());
        assert_eq!(w.next_time(), None);
        assert_eq!(h.next_time(), None);
        assert_eq!(
            w.pop(),
            None.map(|(t, q, i): (SimTime, u64, u32)| (t, q, i))
        );
        assert!(h.pop().is_none());
    }

    #[test]
    fn fifo_at_equal_timestamps() {
        let t = SimTime::from_secs(0.005);
        let mut w: TimingWheel<u32> = TimingWheel::new();
        for seq in 0..100u64 {
            w.schedule(t, seq, seq as u32);
        }
        let order: Vec<u64> = drain(&mut w).into_iter().map(|(_, q)| q).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn same_tick_different_nanos_sort_by_time() {
        // Two distinct nanosecond stamps inside one wheel tick must still
        // come out time-ordered even when inserted in reverse.
        let mut w: TimingWheel<&str> = TimingWheel::new();
        w.schedule(SimTime::from_nanos(100), 0, "later-seq-first");
        w.schedule(SimTime::from_nanos(50), 1, "earlier-time");
        assert_eq!(w.pop().unwrap().2, "earlier-time");
        assert_eq!(w.pop().unwrap().2, "later-seq-first");
    }

    #[test]
    fn far_future_events_cascade_back_in_order() {
        let mut w: TimingWheel<u64> = TimingWheel::with_tick_shift(4);
        // Horizon at shift 4 is 2^24 ticks = 2^28 ns; spread events well
        // past it to exercise overflow, every level, and cascading.
        let times = [
            1u64 << 36,
            (1 << 36) + 1,
            1 << 30,
            1 << 20,
            1 << 10,
            3,
            (1 << 30) + 7,
            (1 << 20) + 7,
        ];
        for (seq, &t) in times.iter().enumerate() {
            w.schedule(SimTime::from_nanos(t), seq as u64, t);
        }
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| w.pop()).map(|(_, _, t)| t).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn late_inserts_behind_the_clock_still_deliver() {
        let mut w: TimingWheel<&str> = TimingWheel::new();
        w.schedule(SimTime::from_secs(10.0), 0, "far");
        // Peeking advances the wheel clock to the far event...
        assert_eq!(w.next_time(), Some(SimTime::from_secs(10.0)));
        // ...then an earlier event arrives (engine: deadline stop, then a
        // driver schedules sooner work).
        w.schedule(SimTime::from_secs(1.0), 1, "near");
        assert_eq!(w.pop().unwrap().2, "near");
        assert_eq!(w.pop().unwrap().2, "far");
        assert!(w.pop().is_none());
    }

    #[test]
    fn freelist_reuses_slab_nodes() {
        let mut w: TimingWheel<u64> = TimingWheel::new();
        for round in 0..100u64 {
            for seq in 0..16 {
                w.schedule(SimTime::from_nanos(round * 1000), round * 16 + seq, seq);
            }
            while w.pop().is_some() {}
        }
        assert!(
            w.slab.len() <= 16,
            "slab grew to {} despite freelist",
            w.slab.len()
        );
    }

    #[test]
    fn op_stats_count_operations() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        let mut h: BinaryHeapScheduler<u32> = BinaryHeapScheduler::new();
        for s in [&mut w as &mut dyn Scheduler<u32>, &mut h] {
            for seq in 0..10u64 {
                s.schedule(SimTime::from_secs(seq as f64 * 0.001), seq, 0);
            }
            for _ in 0..4 {
                s.pop();
            }
            let st = s.op_stats();
            assert_eq!(st.scheduled, 10);
            assert_eq!(st.popped, 4);
            assert_eq!(st.peak_len, 10);
        }
        // Popping an empty scheduler counts nothing.
        let mut e: BinaryHeapScheduler<u32> = BinaryHeapScheduler::new();
        assert!(e.pop().is_none());
        assert_eq!(e.op_stats(), SchedStats::default());
    }

    #[test]
    fn wheel_op_stats_track_cascades_and_overflow() {
        let mut w: TimingWheel<u32> = TimingWheel::with_tick_shift(4);
        // Far beyond the horizon: must hit the overflow heap.
        w.schedule(SimTime::from_nanos(1 << 36), 0, 0);
        w.schedule(SimTime::from_nanos(1 << 37), 1, 1);
        assert_eq!(w.op_stats().overflow_peak, 2);
        while w.pop().is_some() {}
        assert!(w.op_stats().cascades > 0 || w.op_stats().popped == 2);
    }

    #[test]
    fn randomized_interleavings_match_heap() {
        // The module-level equivalence check; the workspace proptests run
        // a broader version against the engine itself.
        for seed in 0..20u64 {
            let mut rng = rng_from_seed(seed);
            let mut w: TimingWheel<u64> = TimingWheel::with_tick_shift(8);
            let mut h: BinaryHeapScheduler<u64> = BinaryHeapScheduler::new();
            let mut seq = 0u64;
            let mut frontier = 0u64; // last popped time, engine-style
            for _ in 0..2000 {
                if rng.gen::<f64>() < 0.6 || w.is_empty() {
                    // Schedule relative to the dequeue frontier, with
                    // heavy duplicate-timestamp pressure.
                    let delta = match rng.gen_range(0u32..4) {
                        0 => 0,
                        1 => rng.gen_range(0u64..1 << 10),
                        2 => rng.gen_range(0u64..1 << 22),
                        _ => rng.gen_range(0u64..1 << 36),
                    };
                    let t = SimTime::from_nanos(frontier + delta);
                    w.schedule(t, seq, seq);
                    h.schedule(t, seq, seq);
                    seq += 1;
                } else {
                    assert_eq!(w.next_time(), h.next_time(), "seed {seed}");
                    let a = w.pop();
                    let b = h.pop();
                    assert_eq!(a, b, "seed {seed}");
                    frontier = a.expect("non-empty").0.as_nanos();
                }
            }
            assert_eq!(drain(&mut w), drain(&mut h), "seed {seed}");
        }
    }
}
