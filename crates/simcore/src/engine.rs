//! The deterministic discrete-event engine.
//!
//! A simulation is a set of [`Node`]s exchanging messages through a
//! [`NetworkModel`]. Events (message deliveries,
//! timers, node start/stop) are processed in `(time, seq)` order, so a
//! given seed always yields the exact same trace.
//!
//! # Determinism model
//!
//! Every stochastic draw is tied to a *stream* that is independent of
//! execution strategy:
//!
//! - each node owns a handler stream (used by [`Context::rng`], churn
//!   and lifecycle draws) and a network stream (used by the network
//!   model for that node's outgoing messages), both derived from the
//!   simulation seed and the node id;
//! - the driver stream ([`Simulation::rng`]) serves code running
//!   outside node handlers.
//!
//! Event sequence numbers are *origin-packed*: `seq = origin << 32 |
//! counter`, where `origin` is the node that created the event (or the
//! driver) and `counter` increments in that origin's own processing
//! order. Together these make the full `(time, seq)` event schedule a
//! pure function of the seed — independent of scheduler implementation
//! and of how many shards execute it ([`Simulation::set_shards`]).
//!
//! # Examples
//!
//! ```
//! use decent_sim::engine::{Context, Node, NodeId, Simulation};
//! use decent_sim::net::ConstantLatency;
//! use decent_sim::time::{SimDuration, SimTime};
//!
//! struct Echo {
//!     heard: usize,
//! }
//!
//! impl Node for Echo {
//!     type Msg = &'static str;
//!     fn on_message(&mut self, from: NodeId, _msg: &'static str, ctx: &mut Context<'_, Self::Msg>) {
//!         self.heard += 1;
//!         if self.heard == 1 {
//!             ctx.send(from, "pong");
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42, ConstantLatency::from_millis(10.0));
//! let a = sim.add_node(Echo { heard: 0 });
//! let b = sim.add_node(Echo { heard: 0 });
//! sim.invoke(a, |_n, ctx| ctx.send(b, "ping"));
//! sim.run_until(SimTime::from_secs(1.0));
//! assert_eq!(sim.node(a).heard, 1); // got the pong back
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::arena::NodeStore;
use crate::metrics::{LogHistogram, Metric, MetricsSnapshot};
use crate::net::NetworkModel;
use crate::rng::{derive_seed, rng_from_seed, SimRng};
use crate::sched::{BinaryHeapScheduler, Scheduler, TimingWheel};
use crate::time::{SimDuration, SimTime};
use crate::trace::{EventTag, Trace};

/// Index of a node in the simulation.
pub type NodeId = usize;

/// Pseudo-sender for messages injected from outside the simulation
/// (e.g. by a [`Driver`] acting as a client population).
pub const EXTERNAL: NodeId = usize::MAX;

/// Origin marker for events created outside any node handler (driver
/// calls, injections, node additions).
pub(crate) const DRIVER_ORIGIN: u32 = u32::MAX;

/// Packs an event origin and its per-origin counter into the engine's
/// sequence number. The packing preserves per-origin FIFO order and is
/// identical under serial and sharded execution, which is what makes
/// the `(time, seq)` schedule execution-strategy-independent.
pub(crate) fn pack_seq(origin: u32, ctr: u32) -> u64 {
    ((origin as u64) << 32) | ctr as u64
}

/// A protocol participant.
///
/// Handlers receive a [`Context`] for scheduling sends and timers; all
/// effects are deferred and applied by the engine after the handler
/// returns, so handlers never re-enter each other.
pub trait Node: Sized {
    /// The message type exchanged by this protocol.
    type Msg: Clone;

    /// Called when the node comes online (initially and after churn).
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message is delivered to this node.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a timer set via [`Context::set_timer`] fires.
    ///
    /// Timers that were pending when the node went offline are discarded.
    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, Self::Msg>) {
        let _ = (tag, ctx);
    }

    /// Called when the node goes offline (churn or explicit stop).
    fn on_stop(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }
}

/// Deferred effect produced by a node handler.
pub(crate) enum Action<M> {
    Send { dst: NodeId, msg: M, bytes: u64 },
    Timer { delay: SimDuration, tag: u64 },
    GoOffline,
}

/// Handler-side view of the simulation.
///
/// Provides the current time, the node's own id, the node's RNG stream,
/// and methods to schedule sends and timers.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) id: NodeId,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) actions: &'a mut Vec<Action<M>>,
}

impl<M> std::fmt::Debug for Context<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl<M> Context<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends a small message (default size 256 bytes) to `dst`.
    pub fn send(&mut self, dst: NodeId, msg: M) {
        self.send_sized(dst, msg, 256);
    }

    /// Sends a message of `bytes` bytes to `dst`.
    ///
    /// Delivery time and loss are decided by the simulation's network
    /// model; messages to offline nodes are counted and dropped.
    pub fn send_sized(&mut self, dst: NodeId, msg: M, bytes: u64) {
        self.actions.push(Action::Send { dst, msg, bytes });
    }

    /// Schedules [`Node::on_timer`] with `tag` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.actions.push(Action::Timer { delay, tag });
    }

    /// Takes this node offline after the current handler completes.
    pub fn go_offline(&mut self) {
        self.actions.push(Action::GoOffline);
    }
}

pub(crate) enum EventKind<M> {
    Deliver { src: NodeId, msg: M },
    Timer { tag: u64, epoch: u32 },
    Start,
    Stop,
}

/// The engine's event payload as stored in a [`Scheduler`]: a target node
/// plus what should happen to it. Opaque outside the engine — it appears
/// in scheduler type parameters (e.g. `TimingWheel<EngineEvent<M>>`) but
/// its contents are engine-internal.
pub struct EngineEvent<M> {
    pub(crate) node: NodeId,
    pub(crate) kind: EventKind<M>,
}

impl<M> EngineEvent<M> {
    pub(crate) fn tag(&self) -> EventTag {
        match self.kind {
            EventKind::Deliver { .. } => EventTag::Deliver,
            EventKind::Timer { .. } => EventTag::Timer,
            EventKind::Start => EventTag::Start,
            EventKind::Stop => EventTag::Stop,
        }
    }
}

impl<M> std::fmt::Debug for EngineEvent<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineEvent")
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}

/// Network-level counters maintained by the engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network model.
    pub sent: u64,
    /// Messages delivered to an online node.
    pub delivered: u64,
    /// Messages dropped because the destination was offline.
    pub dropped_offline: u64,
    /// Messages dropped by the network model (loss).
    pub dropped_net: u64,
    /// Duplicate copies scheduled by the network model (fault injection).
    pub duplicated: u64,
    /// Total bytes handed to the network model.
    pub bytes_sent: u64,
}

/// Experiment-side hook receiver.
///
/// Drivers generate workload and take measurements from outside the node
/// set: schedule a hook with [`Simulation::schedule_hook`] and react to it
/// here with full mutable access to the simulation.
///
/// The `S` parameter names the simulation's scheduler and defaults to the
/// engine default ([`TimingWheel`]); drivers that should work with any
/// scheduler can stay generic over `S: SchedulerFor<N>`.
pub trait Driver<N: Node, S = TimingWheel<EngineEvent<<N as Node>::Msg>>> {
    /// Called when a hook scheduled with the given tag fires.
    fn on_hook(&mut self, tag: u64, sim: &mut Simulation<N, S>);
}

/// A driver that ignores all hooks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoDriver;

impl<N: Node, S: SchedulerFor<N>> Driver<N, S> for NoDriver {
    fn on_hook(&mut self, _tag: u64, _sim: &mut Simulation<N, S>) {}
}

/// Shorthand bound for "a scheduler usable by a simulation over `N`".
///
/// Blanket-implemented for every `Scheduler<EngineEvent<N::Msg>>`, so
/// generic helpers can write `S: SchedulerFor<N>` instead of spelling out
/// the event payload type.
pub trait SchedulerFor<N: Node>: Scheduler<EngineEvent<<N as Node>::Msg>> {}

impl<N: Node, S: Scheduler<EngineEvent<<N as Node>::Msg>>> SchedulerFor<N> for S {}

/// A [`Simulation`] backed by the reference [`BinaryHeapScheduler`].
///
/// Produces bit-for-bit the same traces as the default wheel-backed
/// simulation; used by the equivalence tests and available for workloads
/// whose scheduling pattern defeats the wheel.
pub type HeapSim<N> = Simulation<N, BinaryHeapScheduler<EngineEvent<<N as Node>::Msg>>>;

/// A monomorphized windowed (sharded) executor, installed by
/// [`Simulation::set_shards`].
type WindowedFn<N, S> = fn(&mut Simulation<N, S>, SimTime, bool);

/// A deterministic discrete-event simulation over nodes of type `N`.
///
/// Generic over its event [`Scheduler`] `S`, defaulting to the
/// hierarchical [`TimingWheel`]; `Simulation::new` always builds the
/// default, [`Simulation::with_scheduler`] builds any `S`. All schedulers
/// dequeue in identical `(time, seq)` order, so the choice affects
/// performance only, never results. Likewise,
/// [`set_shards`](Simulation::set_shards) changes only how events are
/// executed (partitioned across worker threads under conservative time
/// windows), never what they compute.
pub struct Simulation<N: Node, S = TimingWheel<EngineEvent<<N as Node>::Msg>>> {
    /// Struct-of-arrays per-node storage: protocol state, hot engine
    /// metadata (online/epoch/seq counters), RNG streams and churn
    /// models each in their own dense array (see [`crate::arena`]).
    pub(crate) store: NodeStore<N>,
    /// Per-node network-model RNG streams, kept outside the store so the
    /// commit phase of sharded execution can route messages while worker
    /// threads still hold the node rows.
    pub(crate) net_rngs: Vec<SimRng>,
    /// One event queue per shard; events for node `n` live in queue
    /// `n % shards`. Serial execution uses a single queue.
    pub(crate) queues: Vec<S>,
    pub(crate) shards: usize,
    /// Monomorphized windowed executor, set by [`Simulation::set_shards`]
    /// (where the `Send` bounds it needs are available).
    windowed: Option<WindowedFn<N, S>>,
    /// Driver hooks, kept out of the event queues so sharded execution
    /// can advance node events in parallel and still hand hooks to the
    /// driver serially, in deterministic `(time, seq)` order.
    hooks: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    pub(crate) now: SimTime,
    seed: u64,
    driver_ctr: u32,
    pub(crate) net: Box<dyn NetworkModel>,
    rng: SimRng,
    pub(crate) stats: NetStats,
    pub(crate) events_processed: u64,
    /// Handler activations: outer iterations of the event loop, where
    /// one activation may drain several consecutive same-node events
    /// (batched delivery). Equal to `events_processed` minus hooks when
    /// no batching occurs; strictly smaller on batchable workloads.
    /// Deliberately *not* part of [`metrics_snapshot`](Self::metrics_snapshot)
    /// — it is a cost counter for the bench harness, not an observable.
    pub(crate) activations: u64,
    /// Conservative windows executed by the sharded path (zero on
    /// serial runs). Like `activations`, a deterministic cost counter
    /// for the bench harness — the per-link lookahead's whole point is
    /// fewer, wider windows — and deliberately *not* part of
    /// [`metrics_snapshot`](Self::metrics_snapshot), so window policy
    /// can change without touching observable output.
    pub(crate) windows: u64,
    /// Events dequeued but discarded without reaching a handler: stale
    /// timers, deliveries to offline nodes, and redundant start/stop.
    pub(crate) events_cancelled: u64,
    /// Events ever pushed (queues and hooks), engine-tracked so the
    /// count is identical across schedulers and shard counts.
    pub(crate) scheduled: u64,
    /// Events currently pending across all queues (hooks excluded).
    pub(crate) pending: u64,
    /// High-water mark of `pending`, reconstructed exactly in canonical
    /// event order under sharded execution.
    pub(crate) peak_pending: u64,
    /// Distribution of per-message sizes handed to the network model.
    pub(crate) msg_bytes: LogHistogram,
    scratch: Vec<Action<N::Msg>>,
    pub(crate) trace: Option<Trace>,
}

impl<N: Node> Simulation<N> {
    /// Creates an empty simulation with the given seed and network model,
    /// backed by the default scheduler.
    pub fn new(seed: u64, net: impl NetworkModel + 'static) -> Self {
        Self::with_scheduler(seed, net)
    }
}

impl<N: Node, S: SchedulerFor<N>> Simulation<N, S> {
    /// Creates an empty simulation backed by scheduler `S`.
    ///
    /// ```
    /// use decent_sim::engine::{HeapSim, Node, NodeId, Context};
    /// use decent_sim::net::ConstantLatency;
    ///
    /// struct Quiet;
    /// impl Node for Quiet {
    ///     type Msg = ();
    ///     fn on_message(&mut self, _: NodeId, _: (), _: &mut Context<'_, ()>) {}
    /// }
    ///
    /// let sim: HeapSim<Quiet> = HeapSim::with_scheduler(42, ConstantLatency::from_millis(1.0));
    /// assert!(sim.is_empty());
    /// ```
    pub fn with_scheduler(seed: u64, net: impl NetworkModel + 'static) -> Self {
        Simulation {
            store: NodeStore::new(),
            net_rngs: Vec::new(),
            queues: vec![S::new()],
            shards: 1,
            windowed: None,
            hooks: BinaryHeap::new(),
            now: SimTime::ZERO,
            seed,
            driver_ctr: 0,
            net: Box::new(net),
            rng: rng_from_seed(seed),
            stats: NetStats::default(),
            events_processed: 0,
            activations: 0,
            windows: 0,
            events_cancelled: 0,
            scheduled: 0,
            pending: 0,
            peak_pending: 0,
            msg_bytes: LogHistogram::new(),
            scratch: Vec::new(),
            trace: None,
        }
    }

    /// Partitions execution across `shards` worker threads.
    ///
    /// Nodes are assigned to shards by `id % shards` and advanced under
    /// conservative time windows sized by the network model's
    /// [`lookahead`](NetworkModel::lookahead); cross-shard messages merge
    /// through a deterministic `(time, seq)` queue at window boundaries.
    /// Results are **byte-identical** to serial execution for any shard
    /// count: the event schedule and every RNG stream are independent of
    /// the partitioning by construction. Models without a positive
    /// lookahead fall back to serial-equivalent stepping.
    ///
    /// May be called at any point; pending events are re-routed. Passing
    /// `0` or `1` restores serial execution.
    pub fn set_shards(&mut self, shards: usize)
    where
        N: Send,
        N::Msg: Send,
        S: Send,
    {
        let shards = shards.max(1);
        if shards == self.shards {
            return;
        }
        let mut all: Vec<(SimTime, u64, EngineEvent<N::Msg>)> =
            Vec::with_capacity(self.pending as usize);
        for q in &mut self.queues {
            while let Some(e) = q.pop() {
                all.push(e);
            }
        }
        self.shards = shards;
        self.queues = (0..shards).map(|_| S::new()).collect();
        for (t, s, ev) in all {
            self.queues[ev.node % shards].schedule(t, s, ev);
        }
        self.windowed = if shards > 1 {
            Some(crate::shard::windowed_advance::<N, S> as fn(&mut Simulation<N, S>, SimTime, bool))
        } else {
            None
        };
    }

    /// The number of execution shards (1 = serial).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Starts tracing dispatched events, retaining the most recent
    /// `capacity` records (counters are unbounded). See
    /// [`Trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Adds a node and schedules its start at the current time.
    pub fn add_node(&mut self, node: N) -> NodeId {
        self.add_node_at(node, self.now)
    }

    /// Adds a node and schedules its start at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn add_node_at(&mut self, node: N, at: SimTime) -> NodeId {
        assert!(at >= self.now, "cannot start a node in the past");
        let id = self.store.len();
        assert!(
            (id as u64) < DRIVER_ORIGIN as u64,
            "node id space exhausted"
        );
        self.store
            .push(node, rng_from_seed(derive_seed(self.seed, 2 * id as u64)));
        self.net_rngs
            .push(rng_from_seed(derive_seed(self.seed, 2 * id as u64 + 1)));
        let seq = self.next_driver_seq();
        self.push_at(
            at,
            seq,
            EngineEvent {
                node: id,
                kind: EventKind::Start,
            },
        );
        id
    }

    /// Attaches an alternating online/offline churn process to `id`.
    ///
    /// If the node is already online, its current session ends after a
    /// freshly sampled session length; otherwise the process starts at
    /// the node's next start event.
    pub fn set_churn(&mut self, id: NodeId, model: crate::churn::ChurnModel) {
        let session = self.store.meta[id]
            .online
            .then(|| model.sample_session(&mut self.store.rngs[id]));
        self.store.churn[id] = Some(model);
        if let Some(session) = session {
            let seq = self.next_driver_seq();
            self.push_at(
                self.now + session,
                seq,
                EngineEvent {
                    node: id,
                    kind: EventKind::Stop,
                },
            );
        }
    }

    /// Schedules the node to stop (go offline) at `at`.
    pub fn schedule_stop(&mut self, id: NodeId, at: SimTime) {
        let seq = self.next_driver_seq();
        self.push_at(
            at,
            seq,
            EngineEvent {
                node: id,
                kind: EventKind::Stop,
            },
        );
    }

    /// Schedules the node to start (come online) at `at`.
    pub fn schedule_start(&mut self, id: NodeId, at: SimTime) {
        let seq = self.next_driver_seq();
        self.push_at(
            at,
            seq,
            EngineEvent {
                node: id,
                kind: EventKind::Start,
            },
        );
    }

    /// Schedules a driver hook with `tag` at `at`.
    ///
    /// Hooks fire *before* any node event carrying the same timestamp,
    /// and in scheduling order among themselves.
    pub fn schedule_hook(&mut self, at: SimTime, tag: u64) {
        let seq = self.next_driver_seq();
        self.scheduled += 1;
        self.hooks.push(Reverse((at, seq, tag)));
    }

    /// Injects a message from [`EXTERNAL`] to `dst`, delivered after `delay`.
    pub fn inject(&mut self, dst: NodeId, msg: N::Msg, delay: SimDuration) {
        let seq = self.next_driver_seq();
        self.push_at(
            self.now + delay,
            seq,
            EngineEvent {
                node: dst,
                kind: EventKind::Deliver { src: EXTERNAL, msg },
            },
        );
    }

    /// Runs `f` against node `id` with a live [`Context`], applying any
    /// scheduled effects afterwards. The node need not be online.
    ///
    /// This is how drivers and experiment harnesses trigger protocol
    /// actions (e.g. "start a lookup now").
    pub fn invoke<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut N, &mut Context<'_, N::Msg>) -> R,
    ) -> R {
        let mut actions = std::mem::take(&mut self.scratch);
        let out = {
            let mut ctx = Context {
                now: self.now,
                id,
                rng: &mut self.store.rngs[id],
                actions: &mut actions,
            };
            f(&mut self.store.nodes[id], &mut ctx)
        };
        self.apply_actions(id, &mut actions);
        self.scratch = actions;
        out
    }

    /// Immutable access to a node's state.
    pub fn node(&self, id: NodeId) -> &N {
        &self.store.nodes[id]
    }

    /// Mutable access to a node's state (no context; for measurement only).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.store.nodes[id]
    }

    /// Number of nodes ever added.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Returns true if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Whether node `id` is currently online.
    pub fn is_online(&self, id: NodeId) -> bool {
        self.store.meta[id].online
    }

    /// Ids of all currently online nodes.
    pub fn online_nodes(&self) -> Vec<NodeId> {
        (0..self.store.len())
            .filter(|&i| self.store.meta[i].online)
            .collect()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Events dequeued but discarded without reaching a handler (stale
    /// timers, deliveries to offline nodes, redundant starts/stops).
    pub fn events_cancelled(&self) -> u64 {
        self.events_cancelled
    }

    /// Handler activations so far: outer event-loop iterations, each of
    /// which may drain several consecutive events bound for the same
    /// node (batched delivery). A deterministic cost counter for the
    /// bench harness; not part of the metrics snapshot.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Conservative windows executed by the sharded path so far (zero
    /// on serial runs). A deterministic cost counter for the bench
    /// harness: wider lookahead windows mean fewer windows per run and
    /// more events per window. Not part of the metrics snapshot.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// A [`MetricsSnapshot`] of the engine's counters: event-loop
    /// activity, network traffic, and the per-message size
    /// distribution. Snapshots from independent simulations merge with
    /// [`MetricsSnapshot::merge`], which is how multi-simulation
    /// experiments report one combined engine section.
    ///
    /// Everything in the snapshot is a deterministic function of the
    /// simulation (no wall-clock, no scheduler- or shard-dependent
    /// implementation detail), so serialized snapshots are byte-stable
    /// across runs, machines, schedulers, and shard counts.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.set_counter("events_scheduled", self.scheduled);
        m.set_counter("events_fired", self.events_processed);
        m.set_counter("events_cancelled", self.events_cancelled);
        m.set_peak("peak_queue_depth", self.peak_pending);
        m.set_counter("messages_sent", self.stats.sent);
        m.set_counter("messages_delivered", self.stats.delivered);
        m.set_counter("messages_dropped_offline", self.stats.dropped_offline);
        m.set_counter("messages_dropped_net", self.stats.dropped_net);
        m.set_counter("bytes_sent", self.stats.bytes_sent);
        m.set("message_bytes", Metric::Dist(self.msg_bytes.clone()));
        // Fault-injection metrics exist only when the network model is a
        // [`Faulty`](crate::fault::Faulty) wrapper, so snapshots of
        // fault-free simulations are byte-identical to earlier releases.
        if let Some(fs) = self.net.fault_stats() {
            m.set_counter("faults_activated", fs.activated);
            m.set_peak("faults_active", fs.peak_active);
            m.set_counter("msgs_dropped_partition", fs.dropped_partition);
            m.set_counter("msgs_dropped_degraded", fs.dropped_degraded);
            m.set_counter("msgs_delayed_degraded", fs.delayed_degraded);
            m.set_counter("msgs_duplicated", self.stats.duplicated);
            m.set(
                "partition_duration_ms",
                Metric::Dist(fs.partition_duration_ms),
            );
        }
        m
    }

    /// The driver RNG stream (for harness code outside node handlers).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Runs until the event queue is empty or `deadline` is reached,
    /// whichever comes first, without a driver.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.run_with_driver(deadline, &mut NoDriver);
    }

    /// Runs until the queue is empty or `deadline` is reached, dispatching
    /// hook events to `driver`.
    pub fn run_with_driver(&mut self, deadline: SimTime, driver: &mut impl Driver<N, S>) {
        loop {
            match self.hooks.peek() {
                Some(&Reverse((t, _, _))) if t <= deadline => {
                    // All node events strictly before the hook, then the hook.
                    self.advance_events(t, false);
                    let Reverse((t, _seq, tag)) = self.hooks.pop().expect("peeked");
                    if self.now < t {
                        self.now = t;
                    }
                    self.events_processed += 1;
                    if let Some(trace) = &mut self.trace {
                        trace.record(t, 0, EventTag::Hook);
                    }
                    driver.on_hook(tag, self);
                }
                _ => {
                    self.advance_events(deadline, true);
                    return;
                }
            }
        }
    }

    /// Processes a single event (or hook) if one exists at or before
    /// `deadline`.
    ///
    /// Returns false when the queue is exhausted or the next event lies
    /// beyond the deadline (in which case time advances to the deadline).
    /// Always serial: single-stepping a sharded simulation is valid and
    /// produces the same schedule, one event at a time.
    pub fn step(&mut self, deadline: SimTime, driver: &mut impl Driver<N, S>) -> bool {
        let hook_time = self.hooks.peek().map(|&Reverse((t, _, _))| t);
        let event_time = self.next_event_time();
        let hook_first = match (hook_time, event_time) {
            (Some(h), Some(e)) => h <= e,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => {
                if self.now < deadline && deadline != SimTime::MAX {
                    self.now = deadline;
                }
                return false;
            }
        };
        let head = if hook_first { hook_time } else { event_time }.expect("chosen head");
        if head > deadline {
            self.now = deadline;
            return false;
        }
        if hook_first {
            let Reverse((t, _seq, tag)) = self.hooks.pop().expect("peeked");
            if self.now < t {
                self.now = t;
            }
            self.events_processed += 1;
            if let Some(trace) = &mut self.trace {
                trace.record(t, 0, EventTag::Hook);
            }
            driver.on_hook(tag, self);
        } else {
            let (time, _seq, ev) = self.pop_next_event().expect("peeked");
            debug_assert!(time >= self.now, "time went backwards");
            self.now = time;
            self.events_processed += 1;
            self.activations += 1;
            self.pending -= 1;
            self.dispatch(ev);
        }
        true
    }

    /// Advances node events up to `limit` using the configured execution
    /// strategy (`inclusive` controls whether events *at* `limit` fire).
    fn advance_events(&mut self, limit: SimTime, inclusive: bool) {
        match self.windowed {
            Some(f) => f(self, limit, inclusive),
            None => self.advance_serial(limit, inclusive),
        }
    }

    /// Serial event loop: merged `(time, seq)`-ordered pops across all
    /// queues. This is both the `shards == 1` main path and the fallback
    /// for sharded simulations whose network model has no usable
    /// lookahead (degenerate windows must not deadlock or reorder).
    ///
    /// With a single queue, consecutive events bound for the same node
    /// are drained in one *activation* (batched delivery): the node's
    /// row stays hot in cache across the whole run of its due events.
    /// Each batched event is still the exact queue head at the moment it
    /// is popped — a handler can schedule a same-time event that sorts
    /// *before* an already-queued one, so the peek-then-pop discipline
    /// (never pop ahead) is what keeps the order byte-identical to the
    /// unbatched loop.
    pub(crate) fn advance_serial(&mut self, limit: SimTime, inclusive: bool) {
        loop {
            let Some(head) = self.next_event_time() else {
                if self.now < limit && inclusive && limit != SimTime::MAX {
                    self.now = limit;
                }
                return;
            };
            if head > limit || (head == limit && !inclusive) {
                if self.now < limit && inclusive && limit != SimTime::MAX {
                    self.now = limit;
                }
                return;
            }
            let (time, _seq, ev) = self.pop_next_event().expect("peeked");
            debug_assert!(time >= self.now, "time went backwards");
            self.now = time;
            self.events_processed += 1;
            self.activations += 1;
            self.pending -= 1;
            let node = ev.node;
            self.dispatch(ev);
            if self.shards == 1 {
                // Same activation: drain queue-head events for the same
                // node while they remain within the advance bound.
                loop {
                    match self.queues[0].peek() {
                        Some((t, _s, next))
                            if next.node == node && !(t > limit || (t == limit && !inclusive)) => {}
                        _ => break,
                    }
                    let (time, _seq, ev) = self.queues[0].pop().expect("peeked");
                    debug_assert!(time >= self.now, "time went backwards");
                    self.now = time;
                    self.events_processed += 1;
                    self.pending -= 1;
                    self.dispatch(ev);
                }
            }
        }
    }

    /// Earliest pending node-event time across all queues.
    fn next_event_time(&mut self) -> Option<SimTime> {
        self.queues.iter_mut().filter_map(|q| q.next_time()).min()
    }

    /// Pops the globally earliest `(time, seq)` event. With one queue
    /// this is a plain pop; with several, same-time heads are compared by
    /// seq (losers are re-scheduled, which the [`Scheduler`] contract
    /// permits at the dequeue frontier).
    fn pop_next_event(&mut self) -> Option<(SimTime, u64, EngineEvent<N::Msg>)> {
        if self.shards == 1 {
            return self.queues[0].pop();
        }
        let mut best: Option<(SimTime, u64, usize, EngineEvent<N::Msg>)> = None;
        for qi in 0..self.queues.len() {
            let Some(t) = self.queues[qi].next_time() else {
                continue;
            };
            if let Some((bt, _, _, _)) = &best {
                if t > *bt {
                    continue;
                }
            }
            let (t, s, ev) = self.queues[qi].pop().expect("peeked");
            match best.take() {
                Some((bt, bs, bqi, bev)) => {
                    if (t, s) < (bt, bs) {
                        self.queues[bqi].schedule(bt, bs, bev);
                        best = Some((t, s, qi, ev));
                    } else {
                        self.queues[qi].schedule(t, s, ev);
                        best = Some((bt, bs, bqi, bev));
                    }
                }
                None => best = Some((t, s, qi, ev)),
            }
        }
        best.map(|(t, s, _, ev)| (t, s, ev))
    }

    fn dispatch(&mut self, ev: EngineEvent<N::Msg>) {
        if let Some(trace) = &mut self.trace {
            trace.record(self.now, ev.node, ev.tag());
        }
        match ev.kind {
            EventKind::Deliver { src, msg } => {
                if !self.store.meta[ev.node].online {
                    self.stats.dropped_offline += 1;
                    self.events_cancelled += 1;
                    return;
                }
                self.stats.delivered += 1;
                self.with_node(ev.node, |node, ctx| node.on_message(src, msg, ctx));
            }
            EventKind::Timer { tag, epoch } => {
                let meta = &self.store.meta[ev.node];
                if !meta.online || meta.timer_epoch != epoch {
                    self.events_cancelled += 1;
                    return; // stale timer from before an offline period
                }
                self.with_node(ev.node, |node, ctx| node.on_timer(tag, ctx));
            }
            EventKind::Start => {
                if self.store.meta[ev.node].online {
                    self.events_cancelled += 1;
                    return;
                }
                self.store.meta[ev.node].online = true;
                self.with_node(ev.node, |node, ctx| node.on_start(ctx));
                let session = self.store.churn[ev.node]
                    .as_ref()
                    .map(|c| c.sample_session(&mut self.store.rngs[ev.node]));
                if let Some(session) = session {
                    let seq = self.store.meta[ev.node].next_seq(ev.node);
                    self.push_at(
                        self.now + session,
                        seq,
                        EngineEvent {
                            node: ev.node,
                            kind: EventKind::Stop,
                        },
                    );
                }
            }
            EventKind::Stop => {
                if !self.store.meta[ev.node].online {
                    self.events_cancelled += 1;
                    return;
                }
                self.with_node(ev.node, |node, ctx| node.on_stop(ctx));
                self.take_offline(ev.node);
                let off = self.store.churn[ev.node]
                    .as_ref()
                    .map(|c| c.sample_offtime(&mut self.store.rngs[ev.node]));
                if let Some(off) = off {
                    let seq = self.store.meta[ev.node].next_seq(ev.node);
                    self.push_at(
                        self.now + off,
                        seq,
                        EngineEvent {
                            node: ev.node,
                            kind: EventKind::Start,
                        },
                    );
                }
            }
        }
    }

    fn take_offline(&mut self, id: NodeId) {
        let meta = &mut self.store.meta[id];
        meta.online = false;
        meta.timer_epoch = meta.timer_epoch.wrapping_add(1);
    }

    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut N, &mut Context<'_, N::Msg>)) {
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Context {
                now: self.now,
                id,
                rng: &mut self.store.rngs[id],
                actions: &mut actions,
            };
            f(&mut self.store.nodes[id], &mut ctx);
        }
        self.apply_actions(id, &mut actions);
        self.scratch = actions;
    }

    fn apply_actions(&mut self, id: NodeId, actions: &mut Vec<Action<N::Msg>>) {
        let mut offline = false;
        for action in actions.drain(..) {
            match action {
                Action::Send { dst, msg, bytes } => {
                    self.stats.sent += 1;
                    self.stats.bytes_sent += bytes;
                    self.msg_bytes.record(bytes);
                    let (seq_deliver, seq_dup) = self.store.meta[id].reserve_send_seqs(id);
                    self.route_send(id, dst, msg, bytes, self.now, seq_deliver, seq_dup);
                }
                Action::Timer { delay, tag } => {
                    let meta = &mut self.store.meta[id];
                    let epoch = meta.timer_epoch;
                    let seq = meta.next_seq(id);
                    self.push_at(
                        self.now + delay,
                        seq,
                        EngineEvent {
                            node: id,
                            kind: EventKind::Timer { tag, epoch },
                        },
                    );
                }
                Action::GoOffline => offline = true,
            }
        }
        if offline && self.store.meta[id].online {
            self.take_offline(id);
            let off = self.store.churn[id]
                .as_ref()
                .map(|c| c.sample_offtime(&mut self.store.rngs[id]));
            if let Some(off) = off {
                let seq = self.store.meta[id].next_seq(id);
                self.push_at(
                    self.now + off,
                    seq,
                    EngineEvent {
                        node: id,
                        kind: EventKind::Start,
                    },
                );
            }
        }
    }

    /// Routes one send through the network model, drawing from the
    /// sender's network stream. Used identically by the serial path and
    /// the sharded commit phase, which is what pins their equivalence.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn route_send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        msg: N::Msg,
        bytes: u64,
        at: SimTime,
        seq_deliver: u64,
        seq_dup: u64,
    ) {
        match self.net.delay(src, dst, bytes, at, &mut self.net_rngs[src]) {
            Some(d) => {
                // Fault-injected duplication: a no-op (and no RNG draw)
                // for every plain network model.
                if let Some(d2) = self
                    .net
                    .duplicate(src, dst, bytes, at, &mut self.net_rngs[src])
                {
                    self.stats.duplicated += 1;
                    self.push_at(
                        at + d2,
                        seq_dup,
                        EngineEvent {
                            node: dst,
                            kind: EventKind::Deliver {
                                src,
                                msg: msg.clone(),
                            },
                        },
                    );
                }
                self.push_at(
                    at + d,
                    seq_deliver,
                    EngineEvent {
                        node: dst,
                        kind: EventKind::Deliver { src, msg },
                    },
                );
            }
            None => self.stats.dropped_net += 1,
        }
    }

    pub(crate) fn next_driver_seq(&mut self) -> u64 {
        let c = self.driver_ctr;
        self.driver_ctr += 1;
        pack_seq(DRIVER_ORIGIN, c)
    }

    pub(crate) fn push_at(&mut self, time: SimTime, seq: u64, ev: EngineEvent<N::Msg>) {
        self.scheduled += 1;
        self.pending += 1;
        if self.pending > self.peak_pending {
            self.peak_pending = self.pending;
        }
        let qi = ev.node % self.shards;
        self.queues[qi].schedule(time, seq, ev);
    }
}

impl<N: Node, S: SchedulerFor<N>> std::fmt::Debug for Simulation<N, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("nodes", &self.store.len())
            .field("shards", &self.shards)
            .field("pending", &self.pending)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnModel;
    use crate::net::ConstantLatency;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    #[derive(Default)]
    struct Peer {
        pings: Vec<u32>,
        pongs: Vec<u32>,
        timers: Vec<u64>,
        starts: u32,
        stops: u32,
    }

    impl Node for Peer {
        type Msg = Msg;

        fn on_start(&mut self, _ctx: &mut Context<'_, Msg>) {
            self.starts += 1;
        }

        fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            match msg {
                Msg::Ping(n) => {
                    self.pings.push(n);
                    if from != EXTERNAL {
                        ctx.send(from, Msg::Pong(n));
                    }
                }
                Msg::Pong(n) => self.pongs.push(n),
            }
        }

        fn on_timer(&mut self, tag: u64, _ctx: &mut Context<'_, Msg>) {
            self.timers.push(tag);
        }

        fn on_stop(&mut self, _ctx: &mut Context<'_, Msg>) {
            self.stops += 1;
        }
    }

    fn two_peers() -> (Simulation<Peer>, NodeId, NodeId) {
        let mut sim = Simulation::new(1, ConstantLatency::from_millis(10.0));
        let a = sim.add_node(Peer::default());
        let b = sim.add_node(Peer::default());
        (sim, a, b)
    }

    #[test]
    fn request_response_roundtrip() {
        let (mut sim, a, b) = two_peers();
        sim.invoke(a, |_n, ctx| ctx.send(b, Msg::Ping(7)));
        sim.run_until(SimTime::from_secs(1.0));
        assert_eq!(sim.node(b).pings, vec![7]);
        assert_eq!(sim.node(a).pongs, vec![7]);
        // Two one-way trips of 10 ms each.
        assert_eq!(sim.stats().delivered, 2);
    }

    #[test]
    fn latency_is_applied() {
        let (mut sim, a, b) = two_peers();
        sim.invoke(a, |_n, ctx| ctx.send(b, Msg::Ping(1)));
        let mut d = NoDriver;
        // start events for a and b
        assert!(sim.step(SimTime::MAX, &mut d));
        assert!(sim.step(SimTime::MAX, &mut d));
        // delivery at exactly 10 ms
        assert!(sim.step(SimTime::MAX, &mut d));
        assert_eq!(sim.now(), SimTime::from_secs(0.010));
    }

    #[test]
    fn timers_fire_in_order() {
        let (mut sim, a, _b) = two_peers();
        sim.invoke(a, |_n, ctx| {
            ctx.set_timer(SimDuration::from_secs(2.0), 2);
            ctx.set_timer(SimDuration::from_secs(1.0), 1);
            ctx.set_timer(SimDuration::from_secs(3.0), 3);
        });
        sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(sim.node(a).timers, vec![1, 2, 3]);
    }

    #[test]
    fn messages_to_offline_nodes_are_dropped() {
        let (mut sim, a, b) = two_peers();
        sim.run_until(SimTime::from_secs(0.001)); // process starts
        sim.schedule_stop(b, SimTime::from_secs(0.002));
        sim.run_until(SimTime::from_secs(0.01));
        sim.invoke(a, |_n, ctx| ctx.send(b, Msg::Ping(9)));
        sim.run_until(SimTime::from_secs(1.0));
        assert!(sim.node(b).pings.is_empty());
        assert_eq!(sim.stats().dropped_offline, 1);
    }

    #[test]
    fn timers_do_not_survive_offline_periods() {
        let (mut sim, a, _b) = two_peers();
        sim.run_until(SimTime::from_secs(0.001));
        sim.invoke(a, |_n, ctx| ctx.set_timer(SimDuration::from_secs(5.0), 42));
        sim.schedule_stop(a, SimTime::from_secs(1.0));
        sim.schedule_start(a, SimTime::from_secs(2.0));
        sim.run_until(SimTime::from_secs(10.0));
        assert!(sim.node(a).timers.is_empty(), "stale timer fired");
        assert_eq!(sim.node(a).starts, 2);
        assert_eq!(sim.node(a).stops, 1);
    }

    #[test]
    fn go_offline_action_takes_effect() {
        let (mut sim, a, b) = two_peers();
        sim.run_until(SimTime::from_secs(0.001));
        sim.invoke(a, |_n, ctx| ctx.go_offline());
        assert!(!sim.is_online(a));
        assert!(sim.is_online(b));
        assert_eq!(sim.online_nodes(), vec![b]);
    }

    #[test]
    fn churn_alternates_sessions() {
        let mut sim = Simulation::new(5, ConstantLatency::from_millis(1.0));
        let a = sim.add_node(Peer::default());
        sim.set_churn(
            a,
            ChurnModel::exponential(SimDuration::from_secs(10.0), SimDuration::from_secs(10.0)),
        );
        sim.run_until(SimTime::from_secs(500.0));
        let n = sim.node(a);
        assert!(n.starts >= 10, "starts {}", n.starts);
        assert!(n.stops >= 10, "stops {}", n.stops);
        assert!((n.starts as i64 - n.stops as i64).abs() <= 1);
    }

    #[test]
    fn injection_from_external() {
        let (mut sim, _a, b) = two_peers();
        sim.inject(b, Msg::Ping(3), SimDuration::from_millis(5.0));
        sim.run_until(SimTime::from_secs(1.0));
        assert_eq!(sim.node(b).pings, vec![3]);
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed| {
            let mut sim = Simulation::new(seed, ConstantLatency::from_millis(1.0));
            let ids: Vec<_> = (0..10).map(|_| sim.add_node(Peer::default())).collect();
            for (i, &id) in ids.iter().enumerate() {
                sim.set_churn(
                    id,
                    ChurnModel::exponential(
                        SimDuration::from_secs(5.0 + i as f64),
                        SimDuration::from_secs(3.0),
                    ),
                );
            }
            for w in 0..200u32 {
                let dst = ids[(w as usize * 7) % ids.len()];
                sim.inject(dst, Msg::Ping(w), SimDuration::from_millis(w as f64 * 13.0));
            }
            sim.run_until(SimTime::from_secs(120.0));
            (
                sim.events_processed(),
                sim.stats().clone(),
                sim.node(ids[0]).pings.clone(),
            )
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77).0, 0);
    }

    #[test]
    fn hooks_reach_driver() {
        struct Count(u64, Vec<u64>);
        impl Driver<Peer> for Count {
            fn on_hook(&mut self, tag: u64, sim: &mut Simulation<Peer>) {
                self.0 += 1;
                self.1.push(tag);
                if tag < 3 {
                    sim.schedule_hook(sim.now() + SimDuration::from_secs(1.0), tag + 1);
                }
            }
        }
        let (mut sim, _a, _b) = two_peers();
        sim.schedule_hook(SimTime::from_secs(1.0), 0);
        let mut d = Count(0, Vec::new());
        sim.run_with_driver(SimTime::from_secs(60.0), &mut d);
        assert_eq!(d.1, vec![0, 1, 2, 3]);
    }

    #[test]
    fn hooks_fire_before_same_time_events() {
        struct Saw(Vec<(u64, u64)>);
        impl Driver<Peer> for Saw {
            fn on_hook(&mut self, tag: u64, sim: &mut Simulation<Peer>) {
                self.0.push((tag, sim.stats().delivered));
            }
        }
        let (mut sim, _a, b) = two_peers();
        // Delivery and hook at exactly t = 5 ms: hook must see the
        // pre-delivery state.
        sim.inject(b, Msg::Ping(1), SimDuration::from_millis(5.0));
        sim.schedule_hook(SimTime::from_secs(0.005), 7);
        sim.run_until(SimTime::from_secs(1.0));
        assert_eq!(sim.node(b).pings, vec![1]);
        let mut sim2 = {
            let (mut s, _a, b) = two_peers();
            s.inject(b, Msg::Ping(1), SimDuration::from_millis(5.0));
            s.schedule_hook(SimTime::from_secs(0.005), 7);
            s
        };
        let mut d = Saw(Vec::new());
        sim2.run_with_driver(SimTime::from_secs(1.0), &mut d);
        assert_eq!(d.0, vec![(7, 0)], "hook fired after same-time delivery");
    }

    #[test]
    fn trace_records_dispatches() {
        let (mut sim, a, b) = two_peers();
        sim.enable_trace(16);
        sim.invoke(a, |_n, ctx| ctx.send(b, Msg::Ping(1)));
        sim.run_until(SimTime::from_secs(1.0));
        let trace = sim.trace().expect("enabled");
        use crate::trace::EventTag;
        assert_eq!(trace.count(EventTag::Start), 2);
        assert_eq!(trace.count(EventTag::Deliver), 2); // ping + pong
        assert!(trace.records().count() <= 16);
    }

    #[test]
    fn heap_and_wheel_schedulers_replay_identically() {
        fn run<S: SchedulerFor<Peer>>() -> (u64, NetStats, Vec<u32>, Vec<u64>) {
            let mut sim: Simulation<Peer, S> =
                Simulation::with_scheduler(9, ConstantLatency::from_millis(3.0));
            let ids: Vec<_> = (0..8).map(|_| sim.add_node(Peer::default())).collect();
            for (i, &id) in ids.iter().enumerate() {
                sim.set_churn(
                    id,
                    ChurnModel::exponential(
                        SimDuration::from_secs(4.0 + i as f64),
                        SimDuration::from_secs(2.0),
                    ),
                );
            }
            for w in 0..300u32 {
                let dst = ids[(w as usize * 5) % ids.len()];
                sim.inject(dst, Msg::Ping(w), SimDuration::from_millis(w as f64 * 7.0));
            }
            sim.invoke(ids[0], |_n, ctx| {
                ctx.set_timer(SimDuration::from_secs(1.0), 11);
                ctx.set_timer(SimDuration::from_secs(1.0), 12);
            });
            sim.run_until(SimTime::from_secs(60.0));
            (
                sim.events_processed(),
                sim.stats().clone(),
                sim.node(ids[1]).pings.clone(),
                sim.node(ids[0]).timers.clone(),
            )
        }
        assert_eq!(
            run::<TimingWheel<EngineEvent<Msg>>>(),
            run::<BinaryHeapScheduler<EngineEvent<Msg>>>()
        );
    }

    #[test]
    fn metrics_snapshot_reflects_engine_activity() {
        let (mut sim, a, b) = two_peers();
        sim.run_until(SimTime::from_secs(0.001)); // starts
        sim.schedule_stop(b, SimTime::from_secs(0.002));
        sim.run_until(SimTime::from_secs(0.01));
        sim.invoke(a, |_n, ctx| {
            ctx.send_sized(b, Msg::Ping(9), 1024); // dropped: b offline
            ctx.set_timer(SimDuration::from_secs(1.0), 1);
        });
        sim.run_until(SimTime::from_secs(2.0));
        let m = sim.metrics_snapshot();
        assert_eq!(m.counter("events_scheduled"), sim.events_processed());
        assert_eq!(m.counter("events_fired"), sim.events_processed());
        assert_eq!(m.counter("messages_sent"), 1);
        assert_eq!(m.counter("messages_dropped_offline"), 1);
        assert_eq!(m.counter("events_cancelled"), 1);
        assert_eq!(m.counter("bytes_sent"), 1024);
        assert!(m.counter("peak_queue_depth") >= 1);
        match m.get("message_bytes") {
            Some(crate::metrics::Metric::Dist(h)) => {
                assert_eq!(h.count(), 1);
                assert_eq!(h.max(), 1024);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Snapshots are a pure function of the simulation state.
        assert_eq!(sim.metrics_snapshot(), m);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let (mut sim, _a, _b) = two_peers();
        sim.run_until(SimTime::from_secs(42.0));
        assert_eq!(sim.now(), SimTime::from_secs(42.0));
    }

    #[test]
    fn seq_packing_orders_by_origin_then_counter() {
        assert!(pack_seq(0, 1) < pack_seq(0, 2));
        assert!(pack_seq(0, u32::MAX) < pack_seq(1, 0));
        assert!(pack_seq(5, 0) < pack_seq(DRIVER_ORIGIN, 0));
    }
}
