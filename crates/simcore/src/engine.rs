//! The deterministic discrete-event engine.
//!
//! A simulation is a set of [`Node`]s exchanging messages through a
//! [`NetworkModel`]. Events (message deliveries,
//! timers, node start/stop, driver hooks) are processed in `(time, seq)`
//! order where `seq` is a monotone tie-breaker, so a given seed always
//! yields the exact same trace.
//!
//! # Examples
//!
//! ```
//! use decent_sim::engine::{Context, Node, NodeId, Simulation};
//! use decent_sim::net::ConstantLatency;
//! use decent_sim::time::{SimDuration, SimTime};
//!
//! struct Echo {
//!     heard: usize,
//! }
//!
//! impl Node for Echo {
//!     type Msg = &'static str;
//!     fn on_message(&mut self, from: NodeId, _msg: &'static str, ctx: &mut Context<'_, Self::Msg>) {
//!         self.heard += 1;
//!         if self.heard == 1 {
//!             ctx.send(from, "pong");
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42, ConstantLatency::from_millis(10.0));
//! let a = sim.add_node(Echo { heard: 0 });
//! let b = sim.add_node(Echo { heard: 0 });
//! sim.invoke(a, |_n, ctx| ctx.send(b, "ping"));
//! sim.run_until(SimTime::from_secs(1.0));
//! assert_eq!(sim.node(a).heard, 1); // got the pong back
//! ```

use crate::metrics::{LogHistogram, Metric, MetricsSnapshot};
use crate::net::NetworkModel;
use crate::rng::{rng_from_seed, SimRng};
use crate::sched::{BinaryHeapScheduler, Scheduler, TimingWheel};
use crate::time::{SimDuration, SimTime};
use crate::trace::{EventTag, Trace};

/// Index of a node in the simulation.
pub type NodeId = usize;

/// Pseudo-sender for messages injected from outside the simulation
/// (e.g. by a [`Driver`] acting as a client population).
pub const EXTERNAL: NodeId = usize::MAX;

/// A protocol participant.
///
/// Handlers receive a [`Context`] for scheduling sends and timers; all
/// effects are deferred and applied by the engine after the handler
/// returns, so handlers never re-enter each other.
pub trait Node: Sized {
    /// The message type exchanged by this protocol.
    type Msg: Clone;

    /// Called when the node comes online (initially and after churn).
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message is delivered to this node.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a timer set via [`Context::set_timer`] fires.
    ///
    /// Timers that were pending when the node went offline are discarded.
    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, Self::Msg>) {
        let _ = (tag, ctx);
    }

    /// Called when the node goes offline (churn or explicit stop).
    fn on_stop(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }
}

/// Deferred effect produced by a node handler.
enum Action<M> {
    Send { dst: NodeId, msg: M, bytes: u64 },
    Timer { delay: SimDuration, tag: u64 },
    GoOffline,
}

/// Handler-side view of the simulation.
///
/// Provides the current time, the node's own id, the RNG stream, and
/// methods to schedule sends and timers.
pub struct Context<'a, M> {
    now: SimTime,
    id: NodeId,
    rng: &'a mut SimRng,
    actions: &'a mut Vec<Action<M>>,
}

impl<M> std::fmt::Debug for Context<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl<M> Context<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends a small message (default size 256 bytes) to `dst`.
    pub fn send(&mut self, dst: NodeId, msg: M) {
        self.send_sized(dst, msg, 256);
    }

    /// Sends a message of `bytes` bytes to `dst`.
    ///
    /// Delivery time and loss are decided by the simulation's network
    /// model; messages to offline nodes are counted and dropped.
    pub fn send_sized(&mut self, dst: NodeId, msg: M, bytes: u64) {
        self.actions.push(Action::Send { dst, msg, bytes });
    }

    /// Schedules [`Node::on_timer`] with `tag` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.actions.push(Action::Timer { delay, tag });
    }

    /// Takes this node offline after the current handler completes.
    pub fn go_offline(&mut self) {
        self.actions.push(Action::GoOffline);
    }
}

enum EventKind<M> {
    Deliver { src: NodeId, msg: M },
    Timer { tag: u64, epoch: u32 },
    Start,
    Stop,
    Hook { tag: u64 },
}

/// The engine's event payload as stored in a [`Scheduler`]: a target node
/// plus what should happen to it. Opaque outside the engine — it appears
/// in scheduler type parameters (e.g. `TimingWheel<EngineEvent<M>>`) but
/// its contents are engine-internal.
pub struct EngineEvent<M> {
    node: NodeId,
    kind: EventKind<M>,
}

impl<M> std::fmt::Debug for EngineEvent<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineEvent")
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}

/// Network-level counters maintained by the engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network model.
    pub sent: u64,
    /// Messages delivered to an online node.
    pub delivered: u64,
    /// Messages dropped because the destination was offline.
    pub dropped_offline: u64,
    /// Messages dropped by the network model (loss).
    pub dropped_net: u64,
    /// Duplicate copies scheduled by the network model (fault injection).
    pub duplicated: u64,
    /// Total bytes handed to the network model.
    pub bytes_sent: u64,
}

/// Experiment-side hook receiver.
///
/// Drivers generate workload and take measurements from outside the node
/// set: schedule a hook with [`Simulation::schedule_hook`] and react to it
/// here with full mutable access to the simulation.
///
/// The `S` parameter names the simulation's scheduler and defaults to the
/// engine default ([`TimingWheel`]); drivers that should work with any
/// scheduler can stay generic over `S: SchedulerFor<N>`.
pub trait Driver<N: Node, S = TimingWheel<EngineEvent<<N as Node>::Msg>>> {
    /// Called when a hook scheduled with the given tag fires.
    fn on_hook(&mut self, tag: u64, sim: &mut Simulation<N, S>);
}

/// A driver that ignores all hooks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoDriver;

impl<N: Node, S: SchedulerFor<N>> Driver<N, S> for NoDriver {
    fn on_hook(&mut self, _tag: u64, _sim: &mut Simulation<N, S>) {}
}

struct Slot<N> {
    node: N,
    online: bool,
    /// Timers from before the last offline period are invalidated by
    /// bumping this epoch on every stop.
    timer_epoch: u32,
    churn: Option<crate::churn::ChurnModel>,
}

/// Shorthand bound for "a scheduler usable by a simulation over `N`".
///
/// Blanket-implemented for every `Scheduler<EngineEvent<N::Msg>>`, so
/// generic helpers can write `S: SchedulerFor<N>` instead of spelling out
/// the event payload type.
pub trait SchedulerFor<N: Node>: Scheduler<EngineEvent<<N as Node>::Msg>> {}

impl<N: Node, S: Scheduler<EngineEvent<<N as Node>::Msg>>> SchedulerFor<N> for S {}

/// A [`Simulation`] backed by the reference [`BinaryHeapScheduler`].
///
/// Produces bit-for-bit the same traces as the default wheel-backed
/// simulation; used by the equivalence tests and available for workloads
/// whose scheduling pattern defeats the wheel.
pub type HeapSim<N> = Simulation<N, BinaryHeapScheduler<EngineEvent<<N as Node>::Msg>>>;

/// A deterministic discrete-event simulation over nodes of type `N`.
///
/// Generic over its event [`Scheduler`] `S`, defaulting to the
/// hierarchical [`TimingWheel`]; `Simulation::new` always builds the
/// default, [`Simulation::with_scheduler`] builds any `S`. All schedulers
/// dequeue in identical `(time, seq)` order, so the choice affects
/// performance only, never results.
pub struct Simulation<N: Node, S = TimingWheel<EngineEvent<<N as Node>::Msg>>> {
    slots: Vec<Slot<N>>,
    queue: S,
    now: SimTime,
    seq: u64,
    net: Box<dyn NetworkModel>,
    rng: SimRng,
    stats: NetStats,
    events_processed: u64,
    /// Events dequeued but discarded without reaching a handler: stale
    /// timers, deliveries to offline nodes, and redundant start/stop.
    events_cancelled: u64,
    /// Distribution of per-message sizes handed to the network model.
    msg_bytes: LogHistogram,
    scratch: Vec<Action<N::Msg>>,
    trace: Option<Trace>,
}

impl<N: Node> Simulation<N> {
    /// Creates an empty simulation with the given seed and network model,
    /// backed by the default scheduler.
    pub fn new(seed: u64, net: impl NetworkModel + 'static) -> Self {
        Self::with_scheduler(seed, net)
    }
}

impl<N: Node, S: SchedulerFor<N>> Simulation<N, S> {
    /// Creates an empty simulation backed by scheduler `S`.
    ///
    /// ```
    /// use decent_sim::engine::{HeapSim, Node, NodeId, Context};
    /// use decent_sim::net::ConstantLatency;
    ///
    /// struct Quiet;
    /// impl Node for Quiet {
    ///     type Msg = ();
    ///     fn on_message(&mut self, _: NodeId, _: (), _: &mut Context<'_, ()>) {}
    /// }
    ///
    /// let sim: HeapSim<Quiet> = HeapSim::with_scheduler(42, ConstantLatency::from_millis(1.0));
    /// assert!(sim.is_empty());
    /// ```
    pub fn with_scheduler(seed: u64, net: impl NetworkModel + 'static) -> Self {
        Simulation {
            slots: Vec::new(),
            queue: S::new(),
            now: SimTime::ZERO,
            seq: 0,
            net: Box::new(net),
            rng: rng_from_seed(seed),
            stats: NetStats::default(),
            events_processed: 0,
            events_cancelled: 0,
            msg_bytes: LogHistogram::new(),
            scratch: Vec::new(),
            trace: None,
        }
    }

    /// Starts tracing dispatched events, retaining the most recent
    /// `capacity` records (counters are unbounded). See
    /// [`Trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Adds a node and schedules its start at the current time.
    pub fn add_node(&mut self, node: N) -> NodeId {
        self.add_node_at(node, self.now)
    }

    /// Adds a node and schedules its start at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn add_node_at(&mut self, node: N, at: SimTime) -> NodeId {
        assert!(at >= self.now, "cannot start a node in the past");
        let id = self.slots.len();
        self.slots.push(Slot {
            node,
            online: false,
            timer_epoch: 0,
            churn: None,
        });
        self.push_event(at, id, EventKind::Start);
        id
    }

    /// Attaches an alternating online/offline churn process to `id`.
    ///
    /// If the node is already online, its current session ends after a
    /// freshly sampled session length; otherwise the process starts at
    /// the node's next start event.
    pub fn set_churn(&mut self, id: NodeId, model: crate::churn::ChurnModel) {
        let session = self.slots[id]
            .online
            .then(|| model.sample_session(&mut self.rng));
        self.slots[id].churn = Some(model);
        if let Some(session) = session {
            self.push_event(self.now + session, id, EventKind::Stop);
        }
    }

    /// Schedules the node to stop (go offline) at `at`.
    pub fn schedule_stop(&mut self, id: NodeId, at: SimTime) {
        self.push_event(at, id, EventKind::Stop);
    }

    /// Schedules the node to start (come online) at `at`.
    pub fn schedule_start(&mut self, id: NodeId, at: SimTime) {
        self.push_event(at, id, EventKind::Start);
    }

    /// Schedules a driver hook with `tag` at `at`.
    pub fn schedule_hook(&mut self, at: SimTime, tag: u64) {
        self.push_event(at, 0, EventKind::Hook { tag });
    }

    /// Injects a message from [`EXTERNAL`] to `dst`, delivered after `delay`.
    pub fn inject(&mut self, dst: NodeId, msg: N::Msg, delay: SimDuration) {
        self.push_event(
            self.now + delay,
            dst,
            EventKind::Deliver { src: EXTERNAL, msg },
        );
    }

    /// Runs `f` against node `id` with a live [`Context`], applying any
    /// scheduled effects afterwards. The node need not be online.
    ///
    /// This is how drivers and experiment harnesses trigger protocol
    /// actions (e.g. "start a lookup now").
    pub fn invoke<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut N, &mut Context<'_, N::Msg>) -> R,
    ) -> R {
        let mut actions = std::mem::take(&mut self.scratch);
        let out = {
            let mut ctx = Context {
                now: self.now,
                id,
                rng: &mut self.rng,
                actions: &mut actions,
            };
            f(&mut self.slots[id].node, &mut ctx)
        };
        self.apply_actions(id, &mut actions);
        self.scratch = actions;
        out
    }

    /// Immutable access to a node's state.
    pub fn node(&self, id: NodeId) -> &N {
        &self.slots[id].node
    }

    /// Mutable access to a node's state (no context; for measurement only).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.slots[id].node
    }

    /// Number of nodes ever added.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns true if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether node `id` is currently online.
    pub fn is_online(&self, id: NodeId) -> bool {
        self.slots[id].online
    }

    /// Ids of all currently online nodes.
    pub fn online_nodes(&self) -> Vec<NodeId> {
        (0..self.slots.len())
            .filter(|&i| self.slots[i].online)
            .collect()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Events dequeued but discarded without reaching a handler (stale
    /// timers, deliveries to offline nodes, redundant starts/stops).
    pub fn events_cancelled(&self) -> u64 {
        self.events_cancelled
    }

    /// A [`MetricsSnapshot`] of the engine's counters: event-loop and
    /// scheduler activity, network traffic, and the per-message size
    /// distribution. Snapshots from independent simulations merge with
    /// [`MetricsSnapshot::merge`], which is how multi-simulation
    /// experiments report one combined engine section.
    ///
    /// Everything in the snapshot is a deterministic function of the
    /// simulation (no wall-clock), so serialized snapshots are
    /// byte-stable across runs and machines.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let sched = self.queue.op_stats();
        let mut m = MetricsSnapshot::new();
        m.set_counter("events_scheduled", self.seq);
        m.set_counter("events_fired", self.events_processed);
        m.set_counter("events_cancelled", self.events_cancelled);
        m.set_peak("peak_queue_depth", sched.peak_len);
        m.set_counter("sched_cascades", sched.cascades);
        m.set_peak("sched_overflow_peak", sched.overflow_peak);
        m.set_counter("messages_sent", self.stats.sent);
        m.set_counter("messages_delivered", self.stats.delivered);
        m.set_counter("messages_dropped_offline", self.stats.dropped_offline);
        m.set_counter("messages_dropped_net", self.stats.dropped_net);
        m.set_counter("bytes_sent", self.stats.bytes_sent);
        m.set("message_bytes", Metric::Dist(self.msg_bytes.clone()));
        // Fault-injection metrics exist only when the network model is a
        // [`Faulty`](crate::fault::Faulty) wrapper, so snapshots of
        // fault-free simulations are byte-identical to earlier releases.
        if let Some(fs) = self.net.fault_stats() {
            m.set_counter("faults_activated", fs.activated);
            m.set_peak("faults_active", fs.peak_active);
            m.set_counter("msgs_dropped_partition", fs.dropped_partition);
            m.set_counter("msgs_dropped_degraded", fs.dropped_degraded);
            m.set_counter("msgs_delayed_degraded", fs.delayed_degraded);
            m.set_counter("msgs_duplicated", self.stats.duplicated);
            m.set(
                "partition_duration_ms",
                Metric::Dist(fs.partition_duration_ms),
            );
        }
        m
    }

    /// The engine RNG (for drivers that need randomness in the same stream).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Runs until the event queue is empty or `deadline` is reached,
    /// whichever comes first, without a driver.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.run_with_driver(deadline, &mut NoDriver);
    }

    /// Runs until the queue is empty or `deadline` is reached, dispatching
    /// hook events to `driver`.
    pub fn run_with_driver(&mut self, deadline: SimTime, driver: &mut impl Driver<N, S>) {
        while self.step(deadline, driver) {}
    }

    /// Processes a single event if one exists at or before `deadline`.
    ///
    /// Returns false when the queue is exhausted or the next event lies
    /// beyond the deadline (in which case time advances to the deadline).
    pub fn step(&mut self, deadline: SimTime, driver: &mut impl Driver<N, S>) -> bool {
        let Some(head_time) = self.queue.next_time() else {
            if self.now < deadline && deadline != SimTime::MAX {
                self.now = deadline;
            }
            return false;
        };
        if head_time > deadline {
            self.now = deadline;
            return false;
        }
        let (time, _seq, ev) = self.queue.pop().expect("peeked");
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        self.events_processed += 1;
        self.dispatch(ev, driver);
        true
    }

    fn dispatch(&mut self, ev: EngineEvent<N::Msg>, driver: &mut impl Driver<N, S>) {
        if let Some(trace) = &mut self.trace {
            let tag = match &ev.kind {
                EventKind::Deliver { .. } => EventTag::Deliver,
                EventKind::Timer { .. } => EventTag::Timer,
                EventKind::Start => EventTag::Start,
                EventKind::Stop => EventTag::Stop,
                EventKind::Hook { .. } => EventTag::Hook,
            };
            trace.record(self.now, ev.node, tag);
        }
        match ev.kind {
            EventKind::Deliver { src, msg } => {
                if !self.slots[ev.node].online {
                    self.stats.dropped_offline += 1;
                    self.events_cancelled += 1;
                    return;
                }
                self.stats.delivered += 1;
                self.with_node(ev.node, |node, ctx| node.on_message(src, msg, ctx));
            }
            EventKind::Timer { tag, epoch } => {
                let slot = &self.slots[ev.node];
                if !slot.online || slot.timer_epoch != epoch {
                    self.events_cancelled += 1;
                    return; // stale timer from before an offline period
                }
                self.with_node(ev.node, |node, ctx| node.on_timer(tag, ctx));
            }
            EventKind::Start => {
                if self.slots[ev.node].online {
                    self.events_cancelled += 1;
                    return;
                }
                self.slots[ev.node].online = true;
                self.with_node(ev.node, |node, ctx| node.on_start(ctx));
                if let Some(churn) = &self.slots[ev.node].churn {
                    let session = churn.sample_session(&mut self.rng);
                    self.push_event(self.now + session, ev.node, EventKind::Stop);
                }
            }
            EventKind::Stop => {
                if !self.slots[ev.node].online {
                    self.events_cancelled += 1;
                    return;
                }
                self.with_node(ev.node, |node, ctx| node.on_stop(ctx));
                self.take_offline(ev.node);
                if let Some(churn) = &self.slots[ev.node].churn {
                    let off = churn.sample_offtime(&mut self.rng);
                    self.push_event(self.now + off, ev.node, EventKind::Start);
                }
            }
            EventKind::Hook { tag } => driver.on_hook(tag, self),
        }
    }

    fn take_offline(&mut self, id: NodeId) {
        let slot = &mut self.slots[id];
        slot.online = false;
        slot.timer_epoch = slot.timer_epoch.wrapping_add(1);
    }

    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut N, &mut Context<'_, N::Msg>)) {
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Context {
                now: self.now,
                id,
                rng: &mut self.rng,
                actions: &mut actions,
            };
            f(&mut self.slots[id].node, &mut ctx);
        }
        self.apply_actions(id, &mut actions);
        self.scratch = actions;
    }

    fn apply_actions(&mut self, id: NodeId, actions: &mut Vec<Action<N::Msg>>) {
        let mut offline = false;
        for action in actions.drain(..) {
            match action {
                Action::Send { dst, msg, bytes } => {
                    self.stats.sent += 1;
                    self.stats.bytes_sent += bytes;
                    self.msg_bytes.record(bytes);
                    match self.net.delay(id, dst, bytes, self.now, &mut self.rng) {
                        Some(d) => {
                            // Fault-injected duplication: a no-op (and no
                            // RNG draw) for every plain network model.
                            if let Some(d2) =
                                self.net.duplicate(id, dst, bytes, self.now, &mut self.rng)
                            {
                                self.stats.duplicated += 1;
                                self.push_event(
                                    self.now + d2,
                                    dst,
                                    EventKind::Deliver {
                                        src: id,
                                        msg: msg.clone(),
                                    },
                                );
                            }
                            self.push_event(self.now + d, dst, EventKind::Deliver { src: id, msg })
                        }
                        None => self.stats.dropped_net += 1,
                    }
                }
                Action::Timer { delay, tag } => {
                    let epoch = self.slots[id].timer_epoch;
                    self.push_event(self.now + delay, id, EventKind::Timer { tag, epoch });
                }
                Action::GoOffline => offline = true,
            }
        }
        if offline && self.slots[id].online {
            self.take_offline(id);
            if let Some(churn) = &self.slots[id].churn {
                let off = churn.sample_offtime(&mut self.rng);
                self.push_event(self.now + off, id, EventKind::Start);
            }
        }
    }

    fn push_event(&mut self, time: SimTime, node: NodeId, kind: EventKind<N::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.schedule(time, seq, EngineEvent { node, kind });
    }
}

impl<N: Node, S: SchedulerFor<N>> std::fmt::Debug for Simulation<N, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("nodes", &self.slots.len())
            .field("pending", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnModel;
    use crate::net::ConstantLatency;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    #[derive(Default)]
    struct Peer {
        pings: Vec<u32>,
        pongs: Vec<u32>,
        timers: Vec<u64>,
        starts: u32,
        stops: u32,
    }

    impl Node for Peer {
        type Msg = Msg;

        fn on_start(&mut self, _ctx: &mut Context<'_, Msg>) {
            self.starts += 1;
        }

        fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            match msg {
                Msg::Ping(n) => {
                    self.pings.push(n);
                    if from != EXTERNAL {
                        ctx.send(from, Msg::Pong(n));
                    }
                }
                Msg::Pong(n) => self.pongs.push(n),
            }
        }

        fn on_timer(&mut self, tag: u64, _ctx: &mut Context<'_, Msg>) {
            self.timers.push(tag);
        }

        fn on_stop(&mut self, _ctx: &mut Context<'_, Msg>) {
            self.stops += 1;
        }
    }

    fn two_peers() -> (Simulation<Peer>, NodeId, NodeId) {
        let mut sim = Simulation::new(1, ConstantLatency::from_millis(10.0));
        let a = sim.add_node(Peer::default());
        let b = sim.add_node(Peer::default());
        (sim, a, b)
    }

    #[test]
    fn request_response_roundtrip() {
        let (mut sim, a, b) = two_peers();
        sim.invoke(a, |_n, ctx| ctx.send(b, Msg::Ping(7)));
        sim.run_until(SimTime::from_secs(1.0));
        assert_eq!(sim.node(b).pings, vec![7]);
        assert_eq!(sim.node(a).pongs, vec![7]);
        // Two one-way trips of 10 ms each.
        assert_eq!(sim.stats().delivered, 2);
    }

    #[test]
    fn latency_is_applied() {
        let (mut sim, a, b) = two_peers();
        sim.invoke(a, |_n, ctx| ctx.send(b, Msg::Ping(1)));
        let mut d = NoDriver;
        // start events for a and b
        assert!(sim.step(SimTime::MAX, &mut d));
        assert!(sim.step(SimTime::MAX, &mut d));
        // delivery at exactly 10 ms
        assert!(sim.step(SimTime::MAX, &mut d));
        assert_eq!(sim.now(), SimTime::from_secs(0.010));
    }

    #[test]
    fn timers_fire_in_order() {
        let (mut sim, a, _b) = two_peers();
        sim.invoke(a, |_n, ctx| {
            ctx.set_timer(SimDuration::from_secs(2.0), 2);
            ctx.set_timer(SimDuration::from_secs(1.0), 1);
            ctx.set_timer(SimDuration::from_secs(3.0), 3);
        });
        sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(sim.node(a).timers, vec![1, 2, 3]);
    }

    #[test]
    fn messages_to_offline_nodes_are_dropped() {
        let (mut sim, a, b) = two_peers();
        sim.run_until(SimTime::from_secs(0.001)); // process starts
        sim.schedule_stop(b, SimTime::from_secs(0.002));
        sim.run_until(SimTime::from_secs(0.01));
        sim.invoke(a, |_n, ctx| ctx.send(b, Msg::Ping(9)));
        sim.run_until(SimTime::from_secs(1.0));
        assert!(sim.node(b).pings.is_empty());
        assert_eq!(sim.stats().dropped_offline, 1);
    }

    #[test]
    fn timers_do_not_survive_offline_periods() {
        let (mut sim, a, _b) = two_peers();
        sim.run_until(SimTime::from_secs(0.001));
        sim.invoke(a, |_n, ctx| ctx.set_timer(SimDuration::from_secs(5.0), 42));
        sim.schedule_stop(a, SimTime::from_secs(1.0));
        sim.schedule_start(a, SimTime::from_secs(2.0));
        sim.run_until(SimTime::from_secs(10.0));
        assert!(sim.node(a).timers.is_empty(), "stale timer fired");
        assert_eq!(sim.node(a).starts, 2);
        assert_eq!(sim.node(a).stops, 1);
    }

    #[test]
    fn go_offline_action_takes_effect() {
        let (mut sim, a, b) = two_peers();
        sim.run_until(SimTime::from_secs(0.001));
        sim.invoke(a, |_n, ctx| ctx.go_offline());
        assert!(!sim.is_online(a));
        assert!(sim.is_online(b));
        assert_eq!(sim.online_nodes(), vec![b]);
    }

    #[test]
    fn churn_alternates_sessions() {
        let mut sim = Simulation::new(5, ConstantLatency::from_millis(1.0));
        let a = sim.add_node(Peer::default());
        sim.set_churn(
            a,
            ChurnModel::exponential(SimDuration::from_secs(10.0), SimDuration::from_secs(10.0)),
        );
        sim.run_until(SimTime::from_secs(500.0));
        let n = sim.node(a);
        assert!(n.starts >= 10, "starts {}", n.starts);
        assert!(n.stops >= 10, "stops {}", n.stops);
        assert!((n.starts as i64 - n.stops as i64).abs() <= 1);
    }

    #[test]
    fn injection_from_external() {
        let (mut sim, _a, b) = two_peers();
        sim.inject(b, Msg::Ping(3), SimDuration::from_millis(5.0));
        sim.run_until(SimTime::from_secs(1.0));
        assert_eq!(sim.node(b).pings, vec![3]);
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed| {
            let mut sim = Simulation::new(seed, ConstantLatency::from_millis(1.0));
            let ids: Vec<_> = (0..10).map(|_| sim.add_node(Peer::default())).collect();
            for (i, &id) in ids.iter().enumerate() {
                sim.set_churn(
                    id,
                    ChurnModel::exponential(
                        SimDuration::from_secs(5.0 + i as f64),
                        SimDuration::from_secs(3.0),
                    ),
                );
            }
            for w in 0..200u32 {
                let dst = ids[(w as usize * 7) % ids.len()];
                sim.inject(dst, Msg::Ping(w), SimDuration::from_millis(w as f64 * 13.0));
            }
            sim.run_until(SimTime::from_secs(120.0));
            (
                sim.events_processed(),
                sim.stats().clone(),
                sim.node(ids[0]).pings.clone(),
            )
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77).0, 0);
    }

    #[test]
    fn hooks_reach_driver() {
        struct Count(u64, Vec<u64>);
        impl Driver<Peer> for Count {
            fn on_hook(&mut self, tag: u64, sim: &mut Simulation<Peer>) {
                self.0 += 1;
                self.1.push(tag);
                if tag < 3 {
                    sim.schedule_hook(sim.now() + SimDuration::from_secs(1.0), tag + 1);
                }
            }
        }
        let (mut sim, _a, _b) = two_peers();
        sim.schedule_hook(SimTime::from_secs(1.0), 0);
        let mut d = Count(0, Vec::new());
        sim.run_with_driver(SimTime::from_secs(60.0), &mut d);
        assert_eq!(d.1, vec![0, 1, 2, 3]);
    }

    #[test]
    fn trace_records_dispatches() {
        let (mut sim, a, b) = two_peers();
        sim.enable_trace(16);
        sim.invoke(a, |_n, ctx| ctx.send(b, Msg::Ping(1)));
        sim.run_until(SimTime::from_secs(1.0));
        let trace = sim.trace().expect("enabled");
        use crate::trace::EventTag;
        assert_eq!(trace.count(EventTag::Start), 2);
        assert_eq!(trace.count(EventTag::Deliver), 2); // ping + pong
        assert!(trace.records().count() <= 16);
    }

    #[test]
    fn heap_and_wheel_schedulers_replay_identically() {
        fn run<S: SchedulerFor<Peer>>() -> (u64, NetStats, Vec<u32>, Vec<u64>) {
            let mut sim: Simulation<Peer, S> =
                Simulation::with_scheduler(9, ConstantLatency::from_millis(3.0));
            let ids: Vec<_> = (0..8).map(|_| sim.add_node(Peer::default())).collect();
            for (i, &id) in ids.iter().enumerate() {
                sim.set_churn(
                    id,
                    ChurnModel::exponential(
                        SimDuration::from_secs(4.0 + i as f64),
                        SimDuration::from_secs(2.0),
                    ),
                );
            }
            for w in 0..300u32 {
                let dst = ids[(w as usize * 5) % ids.len()];
                sim.inject(dst, Msg::Ping(w), SimDuration::from_millis(w as f64 * 7.0));
            }
            sim.invoke(ids[0], |_n, ctx| {
                ctx.set_timer(SimDuration::from_secs(1.0), 11);
                ctx.set_timer(SimDuration::from_secs(1.0), 12);
            });
            sim.run_until(SimTime::from_secs(60.0));
            (
                sim.events_processed(),
                sim.stats().clone(),
                sim.node(ids[1]).pings.clone(),
                sim.node(ids[0]).timers.clone(),
            )
        }
        assert_eq!(
            run::<TimingWheel<EngineEvent<Msg>>>(),
            run::<BinaryHeapScheduler<EngineEvent<Msg>>>()
        );
    }

    #[test]
    fn metrics_snapshot_reflects_engine_activity() {
        let (mut sim, a, b) = two_peers();
        sim.run_until(SimTime::from_secs(0.001)); // starts
        sim.schedule_stop(b, SimTime::from_secs(0.002));
        sim.run_until(SimTime::from_secs(0.01));
        sim.invoke(a, |_n, ctx| {
            ctx.send_sized(b, Msg::Ping(9), 1024); // dropped: b offline
            ctx.set_timer(SimDuration::from_secs(1.0), 1);
        });
        sim.run_until(SimTime::from_secs(2.0));
        let m = sim.metrics_snapshot();
        assert_eq!(m.counter("events_scheduled"), sim.events_processed());
        assert_eq!(m.counter("events_fired"), sim.events_processed());
        assert_eq!(m.counter("messages_sent"), 1);
        assert_eq!(m.counter("messages_dropped_offline"), 1);
        assert_eq!(m.counter("events_cancelled"), 1);
        assert_eq!(m.counter("bytes_sent"), 1024);
        assert!(m.counter("peak_queue_depth") >= 1);
        match m.get("message_bytes") {
            Some(crate::metrics::Metric::Dist(h)) => {
                assert_eq!(h.count(), 1);
                assert_eq!(h.max(), 1024);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Snapshots are a pure function of the simulation state.
        assert_eq!(sim.metrics_snapshot(), m);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let (mut sim, _a, _b) = two_peers();
        sim.run_until(SimTime::from_secs(42.0));
        assert_eq!(sim.now(), SimTime::from_secs(42.0));
    }
}
