//! Plain-text result tables (markdown and CSV rendering).
//!
//! Every experiment produces one or more [`Table`]s mirroring the
//! rows/series the paper reports.

use std::fmt;

/// A titled table of results.
///
/// # Examples
///
/// ```
/// use decent_sim::report::Table;
///
/// let mut t = Table::new("Throughput", &["system", "tps"]);
/// t.row(["Bitcoin", "5.2"]);
/// t.row(["VISA", "24000"]);
/// assert!(t.to_markdown().contains("| Bitcoin | 5.2 |"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// All data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns true if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavored markdown table with a heading.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders as CSV (headers first, comma-separated, quoting cells that
    /// contain commas or quotes).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

/// Formats a float with three significant-ish decimals, trimming noise.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

/// Formats a count with SI-style suffixes (e.g. `24k`, `1.3M`).
pub fn fmt_si(x: f64) -> String {
    let a = x.abs();
    if a >= 1e18 {
        format!("{:.2}E", x / 1e18)
    } else if a >= 1e15 {
        format!("{:.2}P", x / 1e15)
    } else if a >= 1e12 {
        format!("{:.2}T", x / 1e12)
    } else if a >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else {
        fmt_f(x)
    }
}

/// Formats a ratio as a percentage string.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(["1", "2"]);
        let md = t.to_markdown();
        assert!(md.starts_with("### T"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("", &["x"]);
        t.row(["a,b"]);
        t.row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("", &["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_f(42.42), "42.4");
        assert_eq!(fmt_f(4.5678), "4.568");
        assert_eq!(fmt_f(0.0001), "1.00e-4");
        assert_eq!(fmt_si(24000.0), "24.0k");
        assert_eq!(fmt_si(1_300_000.0), "1.30M");
        assert_eq!(fmt_si(40e18), "40.00E");
        assert_eq!(fmt_si(2.5e12), "2.50T");
        assert_eq!(fmt_pct(0.756), "75.6%");
    }
}
