//! Interleaving stress hook for the sharded executor — the *dynamic*
//! complement to the static shared-state rules (D007/D010).
//!
//! The byte-identity contract (DESIGN.md §4i) says a sharded run's
//! output is a pure function of the seed, independent of how the OS
//! happens to schedule worker threads. The lint rules forbid the
//! constructs that could break that; this module attacks it from the
//! other side: with a nonzero perturbation seed, every shard worker
//! injects deterministic-per-seed but *schedule-shifting* yields and
//! micro-sleeps between event dispatches, forcing window phases to
//! overlap in orders a quiet machine would never produce. A test then
//! asserts the report JSON is byte-identical across perturbation seeds
//! (`tests/shard_stress.rs`) — a poor-man's race detector: any hidden
//! cross-shard ordering dependence shows up as a fingerprint mismatch.
//!
//! The hook is a process-global knob rather than per-`Simulation`
//! state because it must be reachable from inside worker threads
//! without widening the engine API it exists to audit. It is a no-op
//! (one relaxed load) unless a test turns it on, and nothing in the
//! simulation may ever read it back into event state.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::rng::derive_seed;

/// Perturbation seed; 0 disables the hook (the default).
static INTERLEAVE_SEED: AtomicU64 = AtomicU64::new(0);

/// Sets the interleaving perturbation seed for subsequent sharded runs
/// (0 disables). Test-only by convention: perturbation changes *thread
/// timing*, never results — that is exactly the property under test.
pub fn set_interleave_seed(seed: u64) {
    // decent-lint: allow(D007) reason="test-harness knob written before a run; perturbs thread timing only and is never read into sim state"
    INTERLEAVE_SEED.store(seed, Ordering::Relaxed);
}

/// Called by shard workers between event dispatches. With a nonzero
/// seed, derives a per-(shard, tick) decision and injects a yield or a
/// micro-sleep to shift the OS schedule; otherwise returns immediately.
pub(crate) fn perturb(shard: usize, tick: u64) {
    let seed = INTERLEAVE_SEED.load(Ordering::Relaxed);
    if seed == 0 {
        return;
    }
    let x = derive_seed(seed ^ (shard as u64).rotate_left(17), tick);
    match x & 7 {
        // Mostly do nothing, so windows still make progress at
        // realistic speed and the perturbed schedule stays irregular.
        0..=4 => {}
        5 | 6 => std::thread::yield_now(),
        _ => std::thread::sleep(std::time::Duration::from_micros((x >> 3) % 50 + 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hook_is_a_noop_and_enabled_hook_returns() {
        set_interleave_seed(0);
        perturb(0, 0); // must return immediately
        set_interleave_seed(42);
        for tick in 0..64 {
            perturb(1, tick); // must terminate quickly for any decision
        }
        set_interleave_seed(0);
    }
}
